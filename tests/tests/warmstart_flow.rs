//! Integration tests for the §5.1 warm-start flow across crates.

use arch::Arch;
use costmodel::DenseModel;
use mappers::{Budget, Gamma, HillClimb};
use mse::{run_network, samples_to_reach, InitStrategy, ReplayBuffer};
use problem::Problem;

fn vgg_slice() -> Vec<Problem> {
    problem::zoo::vgg16().into_iter().skip(4).take(4).collect()
}

#[test]
fn warm_start_matches_quality_and_reaches_target_sooner() {
    let arch = Arch::accel_b();
    let layers = vgg_slice();
    let run = |strategy| {
        let buf = ReplayBuffer::new();
        run_network(
            &layers,
            &arch,
            &buf,
            strategy,
            Budget::samples(800),
            3,
            |p| Box::new(DenseModel::new(p.clone(), arch.clone())),
            || Box::new(Gamma::new()),
        )
    };
    let cold = run(InitStrategy::Random);
    let warm = run(InitStrategy::BySimilarity);
    // (a) similar final quality on every layer (within 2x either way).
    for (c, w) in cold.iter().zip(&warm) {
        let ratio = w.result.best_score / c.result.best_score;
        assert!((0.5..2.0).contains(&ratio), "{}: quality ratio {ratio:.2}", c.name);
    }
    // (b) on layers 2+, warm-start reaches the common target no later
    // than random init for most layers.
    let mut not_slower = 0;
    for (c, w) in cold.iter().zip(&warm).skip(1) {
        let target = 1.005 * c.result.best_score.max(w.result.best_score);
        let cs = samples_to_reach(&c.result, target).unwrap_or(usize::MAX);
        let ws = samples_to_reach(&w.result, target).unwrap_or(usize::MAX);
        if ws <= cs {
            not_slower += 1;
        }
    }
    assert!(not_slower >= 2, "warm-start slower on {} of 3 layers", 3 - not_slower);
}

#[test]
fn similarity_seed_is_legal_across_operator_types() {
    // The replay buffer must produce legal seeds even when the most
    // similar prior workload is a different operator (Mnasnet interleaves
    // pointwise and depthwise layers).
    let arch = Arch::accel_b();
    let buf = ReplayBuffer::new();
    let pw = Problem::pointwise_conv2d("pw", 2, 48, 16, 14, 14);
    let dw = Problem::depthwise_conv2d("dw", 2, 48, 14, 14, 3, 3);
    let gemm = Problem::gemm("g", 2, 48, 16, 196);
    buf.insert(pw.clone(), mapping::Mapping::trivial(&pw, &arch));
    for target in [&dw, &gemm] {
        let seed = buf
            .seed_for(target, &arch, InitStrategy::BySimilarity)
            .expect("seed produced");
        assert!(seed.is_legal(target, &arch), "illegal seed for {target}");
    }
}

#[test]
fn warm_start_composes_with_other_mappers() {
    // set_seeds is part of the Mapper trait: hill climbing accepts warm
    // starts through the same path as Gamma.
    let arch = Arch::accel_b();
    let layers = vgg_slice();
    let buf = ReplayBuffer::new();
    let out = run_network(
        &layers,
        &arch,
        &buf,
        InitStrategy::PreviousLayer,
        Budget::samples(300),
        1,
        |p| Box::new(DenseModel::new(p.clone(), arch.clone())),
        || Box::new(HillClimb::new()),
    );
    assert_eq!(out.len(), layers.len());
    assert_eq!(buf.len(), layers.len());
    for o in &out {
        assert!(o.result.best.is_some(), "{} found nothing", o.name);
    }
}

#[test]
fn replay_buffer_is_shareable_across_threads() {
    use std::sync::Arc;
    let arch = Arch::accel_b();
    let buf = Arc::new(ReplayBuffer::new());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let buf = Arc::clone(&buf);
        let arch = arch.clone();
        handles.push(std::thread::spawn(move || {
            let p = Problem::conv2d(format!("w{t}"), 2, 8 << t, 8, 7, 7, 3, 3);
            buf.insert(p.clone(), mapping::Mapping::trivial(&p, &arch));
            buf.most_similar(&p).is_some()
        }));
    }
    for h in handles {
        assert!(h.join().expect("no panic"));
    }
    assert_eq!(buf.len(), 4);
}
