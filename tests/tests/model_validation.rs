//! Cross-validation of the analytical cost model against the brute-force
//! reference simulator: on enumerable problems, every per-level read and
//! write count the closed-form multiplicity analysis predicts must equal
//! what actually happens when the loop nest executes.

use arch::Arch;
use costmodel::{CostModel, DenseModel};
use mapping::{Constraints, MapSpace, Mapping};
use problem::Problem;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use refsim::{demote_spatial, simulate};

/// Demotes every spatial factor to temporal (the simulator's scope).
/// Demotion preserves per-level tile extents, so no capacity repair is
/// needed — the mapping stays legal as-is.
fn strip_spatial(m: &Mapping, p: &Problem, a: &Arch) -> Mapping {
    let out = demote_spatial(m);
    assert!(out.is_legal(p, a), "demotion broke legality");
    out
}

fn check_agreement(p: &Problem, a: &Arch, m: &Mapping) {
    let model = DenseModel::new(p.clone(), a.clone());
    let analytical = model.evaluate_detailed(m).expect("legal mapping");
    let simulated = simulate(p, a, m).expect("simulable");
    assert_eq!(analytical.macs as u64, simulated.macs as u64, "MAC counts differ");
    for (li, (an, si)) in analytical.per_level.iter().zip(&simulated.per_level).enumerate() {
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0);
        assert!(
            close(an.reads, si.reads),
            "level {li} reads: analytical {} vs simulated {} for\n{m}",
            an.reads,
            si.reads
        );
        assert!(
            close(an.writes, si.writes),
            "level {li} writes: analytical {} vs simulated {} for\n{m}",
            an.writes,
            si.writes
        );
    }
}

#[test]
fn analytical_model_matches_simulation_on_random_mappings() {
    let problems = vec![
        Problem::conv2d("conv", 2, 4, 4, 5, 5, 3, 3),
        Problem::gemm("gemm", 2, 8, 8, 8),
        Problem::depthwise_conv2d("dw", 2, 6, 5, 5, 3, 3),
        Problem::pointwise_conv2d("pw", 2, 8, 4, 6, 6),
    ];
    for p in &problems {
        for a in [Arch::accel_a(), Arch::accel_b()] {
            let space = MapSpace::new(p.clone(), a.clone());
            let mut rng = SmallRng::seed_from_u64(42);
            for _ in 0..25 {
                let m = strip_spatial(&space.random(&mut rng), p, &a);
                check_agreement(p, &a, &m);
            }
        }
    }
}

#[test]
fn analytical_model_matches_simulation_under_constraints() {
    // Order-constrained mappings hit the stationarity edge cases
    // (reduction innermost/outermost, mixed).
    let p = Problem::gemm("g", 2, 6, 6, 6);
    let a = Arch::accel_b();
    let space = MapSpace::new(p.clone(), a.clone());
    let orders: Vec<Vec<usize>> = vec![
        vec![0, 1, 2, 3],
        vec![3, 2, 1, 0],
        vec![2, 0, 1, 3],
        vec![1, 3, 0, 2],
    ];
    let mut rng = SmallRng::seed_from_u64(7);
    for order in orders {
        let c = Constraints::none(4, 3)
            .fix_order(0, order.clone())
            .fix_order(1, order.clone())
            .fix_order(2, order);
        for _ in 0..10 {
            let m = strip_spatial(&space.random_constrained(&mut rng, &c), &p, &a);
            check_agreement(&p, &a, &m);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn model_matches_simulation_property(
        b in 1u64..3, k in 1u64..9, c in 1u64..9, y in 1u64..6, r in 1u64..4,
        seed in any::<u64>()
    ) {
        let p = Problem::conv2d("p", b, k, c, y, y, r, r);
        let a = Arch::accel_b();
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = strip_spatial(&space.random(&mut rng), &p, &a);
        let model = DenseModel::new(p.clone(), a.clone());
        let an = model.evaluate_detailed(&m).expect("legal");
        let si = simulate(&p, &a, &m).expect("simulable");
        for (x, y) in an.per_level.iter().zip(&si.per_level) {
            prop_assert!((x.reads - y.reads).abs() <= 1e-6 * x.reads.max(1.0));
            prop_assert!((x.writes - y.writes).abs() <= 1e-6 * x.writes.max(1.0));
        }
    }
}
