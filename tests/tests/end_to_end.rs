//! End-to-end integration: the full stack (workload → map space → cost
//! model → mapper → MSE driver) on the paper's Table 1 workloads.

use arch::Arch;
use costmodel::{CostModel, DenseModel};
use mappers::{Budget, Gamma, Mapper, RandomMapper, RandomPruned, SimulatedAnnealing};
use mse::Mse;

#[test]
fn paper_workloads_search_end_to_end() {
    for w in [problem::zoo::resnet_conv3(), problem::zoo::bert_kqv()] {
        for a in [Arch::accel_a(), Arch::accel_b()] {
            let model = DenseModel::new(w.clone(), a.clone());
            let mse = Mse::new(&model);
            let r = mse.run(&Gamma::new(), Budget::samples(400), 1);
            let (best, cost) = r.best.unwrap_or_else(|| panic!("no mapping for {w} on {}", a.name()));
            assert!(best.is_legal(&w, &a));
            assert!(cost.edp().is_finite() && cost.edp() > 0.0);
            // The reported cost is exactly the model's evaluation.
            let re = model.evaluate(&best).expect("legal");
            assert_eq!(re, cost);
        }
    }
}

#[test]
fn search_is_deterministic_across_all_mappers() {
    let w = problem::zoo::resnet_conv4();
    let a = Arch::accel_b();
    let model = DenseModel::new(w, a);
    let mse = Mse::new(&model);
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(RandomMapper::new()),
        Box::new(RandomPruned::new()),
        Box::new(Gamma::new()),
        Box::new(SimulatedAnnealing::new()),
    ];
    for mapper in &mappers {
        let a = mse.run(mapper.as_ref(), Budget::samples(200), 99);
        let b = mse.run(mapper.as_ref(), Budget::samples(200), 99);
        assert_eq!(a.best_score, b.best_score, "{} not deterministic", mapper.name());
        assert_eq!(a.evaluated, b.evaluated);
    }
}

#[test]
fn gamma_dominates_random_on_paper_workload() {
    // The qualitative Fig. 3 ordering must hold at a modest budget. The
    // figure compares convergence curves *averaged over seeds*, so assert
    // the aggregate (geometric-mean EDP over seeds) rather than demanding
    // a pairwise win on nearly every seed — per-seed outcomes are a
    // lottery at this budget, and the pairwise form of this test was a
    // seed-sensitive flake.
    let w = problem::zoo::resnet_conv4();
    let a = Arch::accel_b();
    let model = DenseModel::new(w, a);
    let mse = Mse::new(&model);
    const SEEDS: u64 = 5;
    let (mut gamma_wins, mut log_gamma, mut log_random) = (0u64, 0.0f64, 0.0f64);
    for seed in 0..SEEDS {
        let g = mse.run(&Gamma::new(), Budget::samples(1_000), seed);
        let r = mse.run(&RandomMapper::new(), Budget::samples(1_000), seed);
        assert!(g.best_score.is_finite() && r.best_score.is_finite());
        log_gamma += g.best_score.ln();
        log_random += r.best_score.ln();
        if g.best_score <= r.best_score {
            gamma_wins += 1;
        }
    }
    let n = SEEDS as f64;
    let (gm_gamma, gm_random) = ((log_gamma / n).exp(), (log_random / n).exp());
    assert!(
        gm_gamma < gm_random,
        "gamma geomean EDP {gm_gamma:.3e} not better than random {gm_random:.3e}"
    );
    assert!(gamma_wins * 2 >= SEEDS, "gamma won only {gamma_wins}/{SEEDS}");
}

#[test]
fn good_and_bad_mappings_differ_by_orders_of_magnitude() {
    // §4.4: "performance difference of two mappings for the same problem
    // can be as large as 3 orders of magnitude".
    let w = problem::zoo::resnet_conv4();
    let a = Arch::accel_b();
    let model = DenseModel::new(w.clone(), a.clone());
    let mse = Mse::new(&model);
    let best = mse.run(&Gamma::new(), Budget::samples(2_000), 3).best_score;
    // Worst random sample out of a few hundred.
    let space = mse.space();
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    let worst = (0..300)
        .filter_map(|_| model.evaluate(&space.random(&mut rng)).ok())
        .map(|c| c.edp())
        .fold(0.0f64, f64::max);
    assert!(
        worst / best > 100.0,
        "good/bad spread only {:.1}x (best {best:.3e}, worst {worst:.3e})",
        worst / best
    );
}

#[test]
fn every_operator_kind_is_searchable() {
    let a = Arch::accel_b();
    let workloads = vec![
        problem::Problem::conv2d("conv", 2, 16, 16, 14, 14, 3, 3),
        problem::Problem::pointwise_conv2d("pw", 2, 32, 16, 14, 14),
        problem::Problem::depthwise_conv2d("dw", 2, 32, 14, 14, 3, 3),
        problem::Problem::gemm("gemm", 2, 64, 32, 64),
    ];
    for w in workloads {
        let model = DenseModel::new(w.clone(), a.clone());
        let mse = Mse::new(&model);
        let r = mse.run(&Gamma::new(), Budget::samples(300), 0);
        let (best, _) = r.best.unwrap_or_else(|| panic!("no mapping for {w}"));
        assert!(best.is_legal(&w, &a));
    }
}

#[test]
fn pareto_frontier_contains_distinct_tradeoffs() {
    let w = problem::zoo::resnet_conv3();
    let a = Arch::accel_b();
    let model = DenseModel::new(w, a);
    let mse = Mse::new(&model);
    let r = mse.run(&Gamma::new(), Budget::samples(2_000), 5);
    assert!(!r.pareto.is_empty());
    // The best-EDP solution sits on the frontier.
    let frontier_best = r.pareto.iter().map(|(_, c)| c.edp()).fold(f64::INFINITY, f64::min);
    assert!((frontier_best - r.best_score).abs() <= r.best_score * 1e-12);
    // Frontier sorted by latency must have non-increasing energy.
    let mut pts: Vec<_> =
        r.pareto.iter().map(|(_, c)| (c.latency_cycles, c.energy_uj)).collect();
    pts.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    for w in pts.windows(2) {
        assert!(w[0].1 >= w[1].1, "frontier not monotone: {w:?}");
    }
}
