//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary (small) workloads, mappings, and densities.

use arch::{Arch, SparseCaps};
use costmodel::{CostModel, DenseModel, SparseModel};
use mapping::MapSpace;
use problem::{Density, Problem};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_conv() -> impl Strategy<Value = Problem> {
    (1u64..5, 1u64..65, 1u64..65, 1u64..29, 1u64..4).prop_map(|(b, k, c, y, r)| {
        Problem::conv2d("p", b, k, c, y, y, r, r)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_cost_is_finite_positive_for_random_legal_mappings(
        p in arb_conv(), seed in any::<u64>()
    ) {
        for a in [Arch::accel_a(), Arch::accel_b()] {
            let model = DenseModel::new(p.clone(), a.clone());
            let space = MapSpace::new(p.clone(), a);
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = space.random(&mut rng);
            let c = model.evaluate(&m).expect("random mappings are legal");
            prop_assert!(c.latency_cycles.is_finite() && c.latency_cycles >= 1.0);
            prop_assert!(c.energy_uj.is_finite() && c.energy_uj > 0.0);
        }
    }

    #[test]
    fn latency_never_beats_compute_roofline(p in arb_conv(), seed in any::<u64>()) {
        let a = Arch::accel_b();
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.random(&mut rng);
        let c = model.evaluate(&m).expect("legal");
        let floor = p.total_macs() as f64 / a.total_spatial_lanes() as f64;
        prop_assert!(c.latency_cycles >= floor - 1e-9);
    }

    #[test]
    fn dram_energy_at_least_covers_compulsory_traffic(
        p in arb_conv(), seed in any::<u64>()
    ) {
        // Every operand word must cross DRAM at least once.
        let a = Arch::accel_b();
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.random(&mut rng);
        let b = model.evaluate_detailed(&m).expect("legal");
        let bounds = p.bounds();
        let compulsory_reads: f64 = p
            .tensors()
            .iter()
            .filter(|t| t.kind != problem::TensorKind::Output)
            .map(|t| t.projection.footprint_f64(&bounds))
            .sum();
        let out_size = p.output().projection.footprint_f64(&bounds);
        prop_assert!(b.per_level[0].reads >= compulsory_reads - 1e-6);
        prop_assert!(b.per_level[0].writes >= out_size - 1e-6);
    }

    #[test]
    fn sparse_edp_monotone_in_weight_density(p in arb_conv(), seed in any::<u64>()) {
        let a = Arch::accel_b();
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.random(&mut rng);
        let mut last = f64::INFINITY;
        for dw in [1.0, 0.5, 0.2, 0.1, 0.02] {
            let model = SparseModel::new(
                p.clone(),
                a.clone(),
                SparseCaps::flexible(),
                Density::weight_sparse(dw),
            );
            let edp = model.evaluate(&m).expect("soft capacity").edp();
            prop_assert!(edp <= last * 1.0001, "EDP rose as weights sparsified");
            last = edp;
        }
    }

    #[test]
    fn more_capable_sparse_hardware_never_costs_more(
        p in arb_conv(), seed in any::<u64>()
    ) {
        let a = Arch::accel_b();
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.random(&mut rng);
        let d = Density::weight_sparse(0.2);
        let edp = |caps: SparseCaps| {
            SparseModel::new(p.clone(), a.clone(), caps, d).evaluate(&m).unwrap().edp()
        };
        // Skipping+gating+compression <= gating-only <= no support, except
        // the style-model terms which exist only on sparse hardware. Allow
        // the style work as slack.
        prop_assert!(edp(SparseCaps::gating_only()) <= edp(SparseCaps::none()) * 2.0);
        prop_assert!(edp(SparseCaps::flexible()) <= edp(SparseCaps::gating_only()) * 1.0001);
    }

    #[test]
    fn canonicalized_mappings_cost_identically(p in arb_conv(), seed in any::<u64>()) {
        let a = Arch::accel_b();
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p.clone(), a);
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.random(&mut rng);
        let c = mappers::canonicalize(&m);
        let em = model.evaluate(&m).unwrap().edp();
        let ec = model.evaluate(&c).unwrap().edp();
        prop_assert!((em - ec).abs() <= em * 1e-12);
    }

    #[test]
    fn scaled_warm_seed_is_always_legal(
        from in arb_conv(), to in arb_conv(), seed in any::<u64>()
    ) {
        let a = Arch::accel_b();
        let space = MapSpace::new(from.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = space.random(&mut rng);
        let s = m.scale_to(&from, &to, &a).expect("scaling succeeds on these presets");
        prop_assert!(s.is_legal(&to, &a));
    }
}
