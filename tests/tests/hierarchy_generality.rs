//! The cost model and map space must generalize to hierarchies other than
//! the paper's 3-level presets (Timeloop supports arbitrary depths — "the
//! total possible combination ... increases exponentially with the number
//! of buffer hierarchies", §4.2).

use arch::{Arch, MemLevel};
use costmodel::{CostModel, DenseModel};
use mappers::{Budget, EdpEvaluator, Gamma, Mapper};
use mapping::MapSpace;
use problem::Problem;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn two_level() -> Arch {
    Arch::new(
        "TwoLevel",
        vec![
            MemLevel::new("DRAM", None, 1, 200.0, 16.0),
            MemLevel::new("Scratchpad", Some(32 * 1024), 64, 4.0, 32.0),
        ],
        1.0,
        2,
    )
    .expect("valid")
}

fn four_level() -> Arch {
    Arch::new(
        "FourLevel",
        vec![
            MemLevel::new("DRAM", None, 1, 200.0, 16.0),
            MemLevel::new("L3", Some(256 * 1024), 4, 20.0, 64.0),
            MemLevel::new("L2", Some(16 * 1024), 16, 5.0, 32.0),
            MemLevel::new("L1", Some(256), 4, 0.5, 8.0),
        ],
        1.0,
        2,
    )
    .expect("valid")
}

#[test]
fn random_mappings_legal_and_costable_on_any_depth() {
    let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
    for a in [two_level(), four_level()] {
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            let m = space.random(&mut rng);
            m.validate(&p, &a).unwrap_or_else(|e| panic!("{}: {e}", a.name()));
            let c = model.evaluate(&m).expect("legal mapping must cost");
            assert!(c.edp().is_finite() && c.edp() > 0.0);
        }
    }
}

#[test]
fn deeper_hierarchies_have_larger_map_spaces() {
    let p = Problem::conv2d("t", 16, 128, 128, 28, 28, 3, 3);
    let s2 = MapSpace::new(p.clone(), two_level()).size_log10();
    let s4 = MapSpace::new(p.clone(), four_level()).size_log10();
    assert!(s4 > s2 + 5.0, "4-level {s4:.1} vs 2-level {s2:.1}");
}

#[test]
fn gamma_searches_any_depth() {
    let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
    for a in [two_level(), four_level()] {
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p.clone(), a.clone());
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(1);
        let r = Gamma::new().search(&space, &eval, Budget::samples(500), &mut rng);
        let (best, _) = r.best.unwrap_or_else(|| panic!("{}: no mapping", a.name()));
        assert!(best.is_legal(&p, &a));
        // Search must improve on its own first sample.
        let first = r.history.first().expect("history non-empty").best_score;
        assert!(r.best_score <= first);
    }
}

#[test]
fn more_buffering_between_dram_and_pes_reduces_dram_traffic() {
    // A well-mapped 4-level hierarchy should be able to filter more DRAM
    // traffic than the best 2-level mapping (that is what buffers buy).
    let p = Problem::conv2d("t", 2, 32, 32, 14, 14, 3, 3);
    let dram_traffic = |a: Arch| {
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p.clone(), a);
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(2);
        let r = Gamma::new().search(&space, &eval, Budget::samples(1_500), &mut rng);
        let best = r.best.expect("found").0;
        let b = model.evaluate_detailed(&best).expect("legal");
        b.per_level[0].total()
    };
    let t2 = dram_traffic(two_level());
    let t4 = dram_traffic(four_level());
    assert!(t4 < t2 * 1.5, "4-level DRAM traffic {t4:.3e} vs 2-level {t2:.3e}");
}
