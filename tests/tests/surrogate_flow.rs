//! Integration tests for the gradient-based mapper path (surrogate crate
//! against the rest of the stack).

use arch::Arch;
use costmodel::{CostModel, DenseModel};
use linalg::Pca;
use mappers::{Budget, EdpEvaluator, Mapper};
use mapping::features::features;
use mapping::MapSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use surrogate::{MindMappings, Surrogate, TrainConfig};

fn quick_train(model: &DenseModel, seed: u64) -> Arc<Surrogate> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = TrainConfig { samples_per_workload: 1_500, epochs: 12, ..TrainConfig::default() };
    let (s, report) = Surrogate::train(&[model], &cfg, &mut rng);
    assert!(report.holdout_mse.is_finite());
    Arc::new(s)
}

#[test]
fn mind_mappings_end_to_end_on_paper_workload() {
    let w = problem::zoo::resnet_conv4();
    let a = Arch::accel_b();
    let model = DenseModel::new(w.clone(), a.clone());
    let sur = quick_train(&model, 0);
    let space = MapSpace::new(w.clone(), a.clone());
    let eval = EdpEvaluator::new(&model);
    let mut rng = SmallRng::seed_from_u64(1);
    let r = MindMappings::new(sur).search(&space, &eval, Budget::samples(300), &mut rng);
    let (best, cost) = r.best.expect("found a mapping");
    assert!(best.is_legal(&w, &a));
    assert_eq!(model.evaluate(&best).unwrap(), cost);
    // Meaningful improvement over its first sample.
    let first = r.history.first().unwrap().best_score;
    assert!(r.best_score <= first);
}

#[test]
fn surrogate_trains_across_multiple_workloads() {
    // The paper: the surrogate generalizes across workloads (same arch).
    let a = Arch::accel_b();
    let w1 = problem::Problem::conv2d("a", 2, 16, 16, 14, 14, 3, 3);
    let w2 = problem::Problem::conv2d("b", 2, 32, 8, 14, 14, 3, 3);
    let m1 = DenseModel::new(w1.clone(), a.clone());
    let m2 = DenseModel::new(w2.clone(), a.clone());
    let mut rng = SmallRng::seed_from_u64(2);
    let cfg = TrainConfig { samples_per_workload: 1_000, epochs: 12, ..TrainConfig::default() };
    let (sur, _) = Surrogate::train(&[&m1, &m2], &cfg, &mut rng);
    // Usable for predictions on both workloads.
    let space = MapSpace::new(w2.clone(), a);
    let m = space.random(&mut rng);
    let pred = sur.predict_edp_log(&w2, &features(&m));
    let truth = m2.evaluate(&m).unwrap().edp().log10();
    assert!((pred - truth).abs() < 1.5, "pred {pred:.2} vs truth {truth:.2}");
}

#[test]
fn pca_over_mapper_samples_is_well_formed() {
    // The Fig. 4 pipeline: record samples during search, project via PCA.
    let w = problem::Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
    let a = Arch::accel_b();
    let model = DenseModel::new(w.clone(), a.clone());
    let space = MapSpace::new(w, a);
    let eval = EdpEvaluator::new(&model);
    let mut rng = SmallRng::seed_from_u64(3);
    let mapper = mappers::RandomPruned::new().with_sample_recording();
    let r = mapper.search(&space, &eval, Budget::samples(300), &mut rng);
    assert_eq!(r.samples.len(), 300);
    let feats: Vec<Vec<f64>> = r.samples.iter().map(|(f, _)| f.clone()).collect();
    let pca = Pca::fit(&feats, 3);
    for f in feats.iter().take(20) {
        let p = pca.transform(f);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|v| v.is_finite()));
    }
    let ev: f64 = pca.explained_variance_ratio().iter().sum();
    assert!(ev > 0.0 && ev <= 1.0 + 1e-9);
}
