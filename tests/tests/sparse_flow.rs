//! Integration tests for the sparse half of the stack: Sparseloop-like
//! model + Gamma + the §4.5/§5.2 protocols.

use arch::{Arch, SparseCaps};
use costmodel::style::{classify, force_order, order_reduction_innermost, order_reduction_outermost, ProductStyle};
use costmodel::{CostModel, SparseModel};
use mappers::{Budget, EdpEvaluator, Gamma};
use mse::{density_sweep, weight_density_sweep, Mse, SparsityAwareEvaluator};
use problem::{Density, Problem};

fn caps() -> SparseCaps {
    SparseCaps::flexible()
}

#[test]
fn table2_protocol_diagonal_dominates() {
    // Small-scale Table 2: tune at 1.0 and at 0.05, cross-test; each
    // specialist must win (or tie) at its own density.
    let w = problem::zoo::resnet_conv3();
    let arch = Arch::accel_b();
    let densities = [1.0, 0.05];
    let mut tuned = Vec::new();
    for &d in &densities {
        let model = SparseModel::new(w.clone(), arch.clone(), caps(), Density::weight_sparse(d));
        let mse = Mse::new(&model);
        let eval = EdpEvaluator::new(&model);
        let r = mse.run_with_evaluator(&Gamma::new(), &eval, Budget::samples(1_200), 8);
        tuned.push(r.best.expect("found").0);
    }
    for (i, &d) in densities.iter().enumerate() {
        let own = weight_density_sweep(&w, &arch, caps(), &tuned[i], &[d])[0].1;
        let other = weight_density_sweep(&w, &arch, caps(), &tuned[1 - i], &[d])[0].1;
        assert!(
            own <= other * 1.05,
            "specialist for density {d} loses at home: {own:.3e} vs {other:.3e}"
        );
    }
}

#[test]
fn style_survives_search_under_pinned_innermost_order() {
    let w = problem::zoo::bert_kqv();
    let arch = Arch::accel_b();
    let model = SparseModel::new(w.clone(), arch.clone(), caps(), Density::weight_sparse(0.1));
    let mut inner = mapping::Mapping::trivial(&w, &arch);
    force_order(&mut inner, &order_reduction_innermost(&w));
    assert_eq!(classify(&w, &inner), ProductStyle::Inner);
    let mut outer = mapping::Mapping::trivial(&w, &arch);
    force_order(&mut outer, &order_reduction_outermost(&w));
    assert_eq!(classify(&w, &outer), ProductStyle::Outer);
    // The detailed breakdown reports the style it charged.
    assert_eq!(model.evaluate_detailed(&inner).unwrap().style, ProductStyle::Inner);
    assert_eq!(model.evaluate_detailed(&outer).unwrap().style, ProductStyle::Outer);
}

#[test]
fn activation_density_sweep_monotone_for_searched_mapping() {
    let w = problem::zoo::resnet_conv3();
    let arch = Arch::accel_b();
    let model = SparseModel::new(w.clone(), arch.clone(), caps(), Density::input_sparse(0.5));
    let mse = Mse::new(&model);
    let eval = EdpEvaluator::new(&model);
    let best = mse
        .run_with_evaluator(&Gamma::new(), &eval, Budget::samples(600), 2)
        .best
        .expect("found")
        .0;
    let rows = density_sweep(&w, &arch, caps(), &best, &[1.0, 0.8, 0.5, 0.2, 0.1, 0.05]);
    for pair in rows.windows(2) {
        assert!(
            pair[0].1 >= pair[1].1 * 0.999,
            "EDP not monotone in activation density: {pair:?}"
        );
    }
}

#[test]
fn sparsity_aware_evaluator_composes_with_any_mapper() {
    let w = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
    let arch = Arch::accel_b();
    let model = SparseModel::new(w.clone(), arch.clone(), caps(), Density::DENSE);
    let mse = Mse::new(&model);
    let eval = SparsityAwareEvaluator::new(w, arch, caps(), &[1.0, 0.5, 0.1]);
    for mapper in [
        Box::new(mappers::RandomPruned::new()) as Box<dyn mappers::Mapper>,
        Box::new(Gamma::new()),
        Box::new(mappers::SimulatedAnnealing::new()),
    ] {
        let r = mse.run_with_evaluator(mapper.as_ref(), &eval, Budget::samples(300), 0);
        assert!(r.best.is_some(), "{} found nothing", mapper.name());
        assert!(r.best_score.is_finite());
    }
}

#[test]
fn gating_only_accelerator_saves_energy_not_time() {
    let w = problem::zoo::resnet_conv3();
    let arch = Arch::accel_b();
    let m = mapping::Mapping::trivial(&w, &arch);
    let d = Density::weight_sparse(0.1);
    let gate = SparseModel::new(w.clone(), arch.clone(), SparseCaps::gating_only(), d)
        .evaluate(&m)
        .unwrap();
    let none = SparseModel::new(w.clone(), arch.clone(), SparseCaps::none(), d)
        .evaluate(&m)
        .unwrap();
    assert!(gate.energy_uj < none.energy_uj, "gating saved no energy");
    // Without skipping or compression the cycle count cannot drop below
    // the dense compute floor.
    assert!(gate.latency_cycles >= w.total_macs() as f64 / m.used_lanes() as f64 - 1.0);
}
