//! Integration test host package.
