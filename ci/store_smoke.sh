#!/usr/bin/env bash
# CI smoke test for the warm-start store: boot `mapex serve --store`,
# deposit an incumbent through a search, SIGKILL the daemon mid-request
# (crash-only: no shutdown handler runs), then restart on the same store
# and assert the deposit survived, a similar search reports a warm hit,
# and `mapex store verify` is clean — healing any torn tail with
# `mapex store compact` first if the kill landed mid-write.
set -euo pipefail

MAPEX="${MAPEX:-target/release/mapex}"
PROBLEM="GEMM;g;B=2,M=32,K=32,N=32"
NEIGHBOR="GEMM;h;B=2,M=48,K=32,N=32"
OUT="$(mktemp -d)"
STORE="$OUT/warm.store"
trap 'rm -rf "$OUT"; [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true' EXIT

fail() { echo "store_smoke: FAIL: $*" >&2; exit 1; }

boot() {
    "$MAPEX" serve --addr 127.0.0.1:0 --workers 1 --store "$STORE" \
        > "$OUT/serve.log" 2>&1 &
    PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/^listening on //p' "$OUT/serve.log" | head -n1)"
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || fail "daemon died during boot: $(cat "$OUT/serve.log")"
        sleep 0.1
    done
    [ -n "$ADDR" ] || fail "daemon never printed its address"
}

req() { "$MAPEX" request --addr "$ADDR" --timeout 60 "$1"; }

# --- 1. boot with a store, deposit one incumbent -----------------------
boot
echo "store_smoke: daemon at $ADDR (pid $PID)"
FIRST="$(req "{\"id\": 1, \"op\": \"search\", \"problem\": \"$PROBLEM\", \"mapper\": \"gamma\", \"samples\": 300, \"seed\": 7}")"
echo "$FIRST" | grep -q '"ok": true' || fail "first search not ok: $FIRST"
echo "$FIRST" | grep -q '"warm_start": false' || fail "empty store cannot warm-start: $FIRST"
STATS="$(req '{"id": 2, "op": "stats"}')"
echo "$STATS" | grep -q '"store":' || fail "stats has no store block: $STATS"
echo "$STATS" | grep -q '"deposits": 1' || fail "search did not deposit: $STATS"
echo "store_smoke: deposit ok"

# --- 2. SIGKILL mid-request: crash-only, nothing flushes on the way out
req "{\"id\": 3, \"op\": \"search\", \"problem\": \"$PROBLEM\", \"samples\": 100000000, \"deadline_ms\": 30000}" > /dev/null 2>&1 &
INFLIGHT=$!
sleep 0.5
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
wait "$INFLIGHT" 2>/dev/null || true
unset PID
[ -f "$STORE" ] || fail "store file vanished after SIGKILL"
echo "store_smoke: SIGKILL delivered"

# --- 3. verify the store; compact heals a torn tail if the kill hit one
if ! "$MAPEX" store verify --store "$STORE" > "$OUT/verify.json"; then
    echo "store_smoke: torn tail detected, compacting"
    "$MAPEX" store compact --store "$STORE" > /dev/null || fail "compact failed"
    "$MAPEX" store verify --store "$STORE" > "$OUT/verify.json" \
        || fail "store still damaged after compact: $(cat "$OUT/verify.json")"
fi
grep -q "^valid 0$" "$OUT/verify.json" && fail "deposit lost to the crash: $(cat "$OUT/verify.json")"
echo "store_smoke: store verified after crash"

# --- 4. restart on the same store: the prior survives and warm-starts --
boot
echo "store_smoke: restarted at $ADDR (pid $PID)"
STATS="$(req '{"id": 4, "op": "stats"}')"
echo "$STATS" | grep -q '"entries": 0' && fail "restart lost the deposits: $STATS"
WARM="$(req "{\"id\": 5, \"op\": \"search\", \"problem\": \"$NEIGHBOR\", \"mapper\": \"gamma\", \"samples\": 300, \"seed\": 7}")"
echo "$WARM" | grep -q '"ok": true' || fail "post-restart search not ok: $WARM"
echo "$WARM" | grep -q '"warm_start": true' || fail "similar search must warm-start: $WARM"
echo "store_smoke: cross-restart warm hit ok"

# --- 5. store stats CLI agrees, clean shutdown -------------------------
"$MAPEX" store stats --store "$STORE" > "$OUT/stats.txt" || fail "store stats CLI failed"
grep -q "^entries" "$OUT/stats.txt" || fail "store stats CLI printed nothing: $(cat "$OUT/stats.txt")"
kill -TERM "$PID"
DRAIN_DEADLINE=$((SECONDS + 30))
while kill -0 "$PID" 2>/dev/null; do
    [ "$SECONDS" -lt "$DRAIN_DEADLINE" ] || fail "daemon did not drain within 30s"
    sleep 0.2
done
wait "$PID" && RC=0 || RC=$?
[ "$RC" -eq 0 ] || fail "daemon exited $RC after SIGTERM (want 0)"
unset PID
echo "store_smoke: PASS"
