#!/usr/bin/env bash
# CI smoke test for the `mapex serve` fleet: boot one coordinator and two
# workers, shard a checkpointed sweep across them, SIGKILL one worker
# mid-sweep (its shards must be re-dispatched and every layer accounted
# exactly once), then SIGTERM the survivors and assert clean exits. Uses
# only the mapex binary itself (`mapex request`) as the client.
set -euo pipefail

MAPEX="${MAPEX:-target/release/mapex}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"; for P in "${COORD:-}" "${W1:-}" "${W2:-}"; do [ -n "$P" ] && kill -9 "$P" 2>/dev/null || true; done' EXIT

fail() { echo "fleet_smoke: FAIL: $*" >&2; exit 1; }

addr_of() { # addr_of <logfile> <pid>
    local log="$1" pid="$2" addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$log" | head -n1)"
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$pid" 2>/dev/null || fail "daemon died during boot: $(cat "$log")"
        sleep 0.1
    done
    fail "daemon never printed its address: $(cat "$log")"
}

# --- boot: 1 coordinator + 2 workers (fast failure-detection timings) ---
# Daemons are backgrounded in this shell (not a substitution) so `wait`
# can reap their exit codes after the SIGTERM drain.
mkdir -p "$OUT/ckpt"
"$MAPEX" serve --addr 127.0.0.1:0 --coordinator --workers 1 \
    --checkpoint-dir "$OUT/ckpt" --heartbeat-ms 100 --lease-ms 500 --fault-injection \
    > "$OUT/coord.log" 2>&1 &
COORD=$!
ADDR="$(addr_of "$OUT/coord.log" "$COORD")"
echo "fleet_smoke: coordinator at $ADDR (pid $COORD)"

# Workers dawdle 200ms per shard so the SIGKILL lands mid-shard.
"$MAPEX" serve --addr 127.0.0.1:0 --worker "$ADDR" --workers 1 \
    --shard-delay-ms 200 --fault-injection > "$OUT/w1.log" 2>&1 &
W1=$!
"$MAPEX" serve --addr 127.0.0.1:0 --worker "$ADDR" --workers 1 \
    --shard-delay-ms 200 --fault-injection > "$OUT/w2.log" 2>&1 &
W2=$!

req() { "$MAPEX" request --addr "$ADDR" --timeout 120 --max-retries 2 "$1"; }

for _ in $(seq 1 100); do
    HEALTH="$(req '{"id": 0, "op": "health"}')"
    echo "$HEALTH" | grep -q '"workers_connected": 2' && break
    sleep 0.1
done
echo "$HEALTH" | grep -q '"workers_connected": 2' || fail "workers never registered: $HEALTH"
echo "$HEALTH" | grep -q '"role": "coordinator"' || fail "health misreports role: $HEALTH"
echo "fleet_smoke: 2 workers registered"

# --- sharded sweep, then SIGKILL one worker mid-sweep -------------------
LAYERS='"GEMM;l0;B=2,M=16,K=16,N=16", "GEMM;l1;B=2,M=16,K=24,N=16", "GEMM;l2;B=2,M=16,K=32,N=16", "GEMM;l3;B=2,M=24,K=16,N=16", "GEMM;l4;B=2,M=24,K=24,N=16", "GEMM;l5;B=2,M=24,K=32,N=16"'
req "{\"id\": 1, \"op\": \"sweep\", \"layers\": [$LAYERS], \"mapper\": \"random\", \"samples\": 200, \"seed\": 7, \"checkpoint\": \"smoke.ckpt\"}" \
    > "$OUT/sweep.json" &
SWEEP=$!
sleep 0.4
kill -9 "$W2"
echo "fleet_smoke: SIGKILLed worker 2 (pid $W2) mid-sweep"
wait "$SWEEP" || fail "sweep client got no response"

SWEEP_JSON="$(cat "$OUT/sweep.json")"
echo "$SWEEP_JSON" | grep -q '"ok": true' || fail "sweep not ok: $SWEEP_JSON"
echo "$SWEEP_JSON" | grep -q '"layers_total": 6' || fail "wrong layer total: $SWEEP_JSON"
NAMED="$(echo "$SWEEP_JSON" | grep -o '"name": "l[0-9]"' | sort -u | wc -l)"
[ "$NAMED" -eq 6 ] || fail "expected all 6 layers exactly once, saw $NAMED: $SWEEP_JSON"
echo "$SWEEP_JSON" | grep -q '"mapping": "' || fail "layers carry no mappings: $SWEEP_JSON"
echo "fleet_smoke: sweep survived the worker kill, all 6 layers accounted"

# The rolling checkpoint kept exactly one backup — no .bak accumulation.
[ -f "$OUT/ckpt/smoke.ckpt" ] || fail "checkpoint file missing"
STRAYS="$(find "$OUT/ckpt" -type f | grep -cv -e 'smoke\.ckpt$' -e 'smoke\.ckpt\.bak$')" || true
[ "$STRAYS" -eq 0 ] || fail "stray files in checkpoint dir: $(ls "$OUT/ckpt")"

HEALTH="$(req '{"id": 2, "op": "health"}')"
echo "$HEALTH" | grep -q '"workers_connected": 1' || fail "dead worker still counted: $HEALTH"
echo "fleet_smoke: coordinator sees 1 surviving worker"

# --- SIGTERM both survivors: graceful drains, exit 0 --------------------
for NAME in coordinator worker; do
    case "$NAME" in coordinator) P="$COORD";; worker) P="$W1";; esac
    kill -TERM "$P"
    DRAIN_DEADLINE=$((SECONDS + 30))
    while kill -0 "$P" 2>/dev/null; do
        [ "$SECONDS" -lt "$DRAIN_DEADLINE" ] || fail "$NAME did not drain within 30s"
        sleep 0.2
    done
    wait "$P" && RC=0 || RC=$?
    [ "$RC" -eq 0 ] || fail "$NAME exited $RC after SIGTERM (want 0)"
    echo "fleet_smoke: $NAME drained cleanly"
done
COORD=""; W1=""; W2=""
echo "fleet_smoke: PASS"
