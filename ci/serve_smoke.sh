#!/usr/bin/env bash
# CI smoke test for `mapex serve`: boot the daemon, drive one fast
# request, one deadline-exceeded request (must come back degraded), one
# overload rejection against a queue of 1, then SIGTERM and assert a
# clean drain (exit 0) within a timeout. Uses only the mapex binary
# itself (`mapex request`) as the client — no extra tooling.
set -euo pipefail

MAPEX="${MAPEX:-target/release/mapex}"
PROBLEM="GEMM;g;B=2,M=32,K=32,N=32"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"; [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true' EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# --- boot (queue size 1 so overload is easy to trigger) ----------------
"$MAPEX" serve --addr 127.0.0.1:0 --workers 1 --queue 1 --fault-injection \
    > "$OUT/serve.log" 2>&1 &
PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^listening on //p' "$OUT/serve.log" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon died during boot: $(cat "$OUT/serve.log")"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "daemon never printed its address"
echo "serve_smoke: daemon at $ADDR (pid $PID)"

req() { "$MAPEX" request --addr "$ADDR" --timeout 60 "$1"; }

# --- 1. fast request ---------------------------------------------------
FAST="$(req "{\"id\": 1, \"op\": \"search\", \"problem\": \"$PROBLEM\", \"samples\": 300}")"
echo "$FAST" | grep -q '"ok": true' || fail "fast request not ok: $FAST"
echo "$FAST" | grep -q '"degraded": false' || fail "fast request degraded: $FAST"
echo "$FAST" | grep -q '"mapping":' || fail "fast request has no mapping: $FAST"
echo "serve_smoke: fast request ok"

# --- 2. deadline-exceeded request must salvage, flagged degraded -------
SLOW="$(req "{\"id\": 2, \"op\": \"search\", \"problem\": \"$PROBLEM\", \"mapper\": \"deadline-ignorer\", \"samples\": 100000000, \"deadline_ms\": 500}")"
echo "$SLOW" | grep -q '"ok": true' || fail "deadline request not ok: $SLOW"
echo "$SLOW" | grep -q '"degraded": true' || fail "deadline request not degraded: $SLOW"
echo "serve_smoke: deadline salvage ok"

# --- 3. overload rejection with queue size 1 ---------------------------
# Saturate the single worker with a long deadline-ignorer, fill the
# 1-slot queue with a second, then a third must be rejected.
req "{\"id\": 3, \"op\": \"search\", \"problem\": \"$PROBLEM\", \"mapper\": \"deadline-ignorer\", \"samples\": 100000000, \"deadline_ms\": 4000}" > "$OUT/busy1.json" &
BUSY1=$!
sleep 0.5
req "{\"id\": 4, \"op\": \"search\", \"problem\": \"$PROBLEM\", \"mapper\": \"deadline-ignorer\", \"samples\": 100000000, \"deadline_ms\": 4000}" > "$OUT/busy2.json" &
BUSY2=$!
sleep 0.5
OVER="$(req "{\"id\": 5, \"op\": \"search\", \"problem\": \"$PROBLEM\", \"samples\": 100}")"
echo "$OVER" | grep -q '"code": "overloaded"' || fail "expected overload rejection: $OVER"
echo "$OVER" | grep -q '"kind": "transient"' || fail "overload must be transient: $OVER"
echo "$OVER" | grep -q '"retry_after_ms"' || fail "overload must carry a retry hint: $OVER"
echo "serve_smoke: overload rejection ok"

# --- 4. SIGTERM: drain in-flight work, answer it, exit 0 ---------------
kill -TERM "$PID"
DRAIN_DEADLINE=$((SECONDS + 30))
while kill -0 "$PID" 2>/dev/null; do
    [ "$SECONDS" -lt "$DRAIN_DEADLINE" ] || fail "daemon did not drain within 30s"
    sleep 0.2
done
wait "$PID" && RC=0 || RC=$?
[ "$RC" -eq 0 ] || fail "daemon exited $RC after SIGTERM (want 0): $(cat "$OUT/serve.log")"
# The two in-flight requests were admitted before the drain: both must
# still have been answered (degraded salvage), exactly once.
wait "$BUSY1" || fail "in-flight client 1 got no response"
wait "$BUSY2" || fail "in-flight client 2 got no response"
grep -q '"ok": true' "$OUT/busy1.json" || fail "in-flight 1 not answered: $(cat "$OUT/busy1.json")"
grep -q '"ok": true' "$OUT/busy2.json" || fail "in-flight 2 not answered: $(cat "$OUT/busy2.json")"
grep -q 'drained' "$OUT/serve.log" || fail "no drain summary in log: $(cat "$OUT/serve.log")"
unset PID
echo "serve_smoke: SIGTERM drain ok"
echo "serve_smoke: PASS"
