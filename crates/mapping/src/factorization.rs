//! Integer factorization utilities underlying tile-size choices.
//!
//! Every legal tiling of a dimension with bound `n` across `k` slots (one
//! per storage level / spatial boundary) is an ordered factorization of `n`
//! into `k` factors. These helpers enumerate, count, and sample such
//! factorizations and provide the prime machinery used by the tile-mutation
//! operators and the map-space size computation (§4.2).

use rand::Rng;

/// Prime factorization of `n` as `(prime, exponent)` pairs, ascending.
///
/// `factorize(1)` is empty. `n` must be ≥ 1.
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    assert!(n >= 1, "factorize(0) is undefined");
    let mut out = Vec::new();
    let mut p = 2u64;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut e = 0;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            out.push((p, e));
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// Flat list of prime factors of `n` with multiplicity (e.g. `12 → [2,2,3]`).
pub fn prime_factors(n: u64) -> Vec<u64> {
    factorize(n)
        .into_iter()
        .flat_map(|(p, e)| std::iter::repeat_n(p, e as usize))
        .collect()
}

/// All divisors of `n`, ascending.
pub fn divisors(n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut i = 1u64;
    while i * i <= n {
        if n.is_multiple_of(i) {
            out.push(i);
            if i != n / i {
                out.push(n / i);
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out
}

/// Number of ordered factorizations of `n` into exactly `k` factors
/// (factors of 1 allowed): `Π_p C(e_p + k - 1, k - 1)`.
pub fn count_ordered_factorizations(n: u64, k: u32) -> f64 {
    if k == 0 {
        return if n == 1 { 1.0 } else { 0.0 };
    }
    factorize(n)
        .into_iter()
        .map(|(_, e)| binomial(e + k - 1, k - 1))
        .product()
}

/// Binomial coefficient `C(n, k)` as `f64` (exact for the small inputs used
/// here).
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc.round()
}

/// Uniformly sample an ordered factorization of `n` into `k` factors, by
/// distributing each prime's exponent over the `k` slots uniformly at
/// random (a uniform "stars and bars" draw per prime).
pub fn random_factorization<R: Rng + ?Sized>(rng: &mut R, n: u64, k: usize) -> Vec<u64> {
    assert!(k >= 1);
    let mut slots = vec![1u64; k];
    for p in prime_factors(n) {
        slots[rng.gen_range(0..k)] *= p;
    }
    slots
}

/// Enumerates all ordered factorizations of `n` into `k` factors. Intended
/// for small `n`/`k` (tests and exhaustive sweeps); the count grows fast.
pub fn ordered_factorizations(n: u64, k: usize) -> Vec<Vec<u64>> {
    fn rec(n: u64, k: usize, acc: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if k == 1 {
            acc.push(n);
            out.push(acc.clone());
            acc.pop();
            return;
        }
        for d in divisors(n) {
            acc.push(d);
            rec(n / d, k - 1, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(n, k, &mut Vec::new(), &mut out);
    out
}

/// Greedily builds an ordered factorization of `n` into `k` factors whose
/// log-sizes approximate `target_logs` (length `k`, arbitrary nonnegative
/// reals): each prime factor (largest first) is assigned to the slot with
/// the largest remaining log-deficit. Used to project continuous tile-size
/// proposals (gradient search, warm-start scaling) onto legal tilings.
pub fn factorization_from_target_logs(n: u64, target_logs: &[f64]) -> Vec<u64> {
    let k = target_logs.len();
    assert!(k >= 1);
    let mut slots = vec![1u64; k];
    let mut primes = prime_factors(n);
    primes.sort_unstable_by(|a, b| b.cmp(a));
    for p in primes {
        // Slot with the largest deficit (target - current); ties → first.
        let (best, _) = (0..k)
            .map(|i| (i, target_logs[i].max(0.0) - (slots[i] as f64).ln()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN targets"))
            .expect("k >= 1");
        slots[best] *= p;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn factorize_known_values() {
        assert_eq!(factorize(1), vec![]);
        assert_eq!(factorize(12), vec![(2, 2), (3, 1)]);
        assert_eq!(factorize(97), vec![(97, 1)]);
        assert_eq!(factorize(1024), vec![(2, 10)]);
    }

    #[test]
    fn divisors_known_values() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(28), vec![1, 2, 4, 7, 14, 28]);
    }

    #[test]
    fn count_matches_enumeration() {
        for n in [1u64, 2, 12, 16, 28, 30] {
            for k in 1..=3usize {
                let c = count_ordered_factorizations(n, k as u32);
                let e = ordered_factorizations(n, k).len() as f64;
                assert_eq!(c, e, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_known() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(3, 0), 1.0);
        assert_eq!(binomial(2, 3), 0.0);
    }

    #[test]
    fn target_logs_projection_is_exact_factorization() {
        let f = factorization_from_target_logs(256, &[4.0f64.ln(), 8.0f64.ln(), 8.0f64.ln()]);
        assert_eq!(f.iter().product::<u64>(), 256);
        // Achievable targets are hit exactly.
        assert_eq!(f.iter().copied().max(), Some(8));
    }

    proptest! {
        #[test]
        fn random_factorization_products(n in 1u64..5000, k in 1usize..5, seed in any::<u64>()) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let f = random_factorization(&mut rng, n, k);
            prop_assert_eq!(f.len(), k);
            prop_assert_eq!(f.iter().product::<u64>(), n);
        }

        #[test]
        fn prime_factors_multiply_back(n in 1u64..100_000) {
            prop_assert_eq!(prime_factors(n).iter().product::<u64>(), n);
        }

        #[test]
        fn target_projection_products(n in 1u64..5000, k in 1usize..5) {
            let targets = vec![1.0; k];
            let f = factorization_from_target_logs(n, &targets);
            prop_assert_eq!(f.iter().product::<u64>(), n);
        }

        #[test]
        fn divisors_divide(n in 1u64..10_000) {
            for d in divisors(n) {
                prop_assert_eq!(n % d, 0);
            }
        }
    }
}
