//! The [`MapSpace`]: everything knowable about the set of legal mappings of
//! one problem on one architecture — sampling, size estimation (§4.2), and
//! reference mappings.

use crate::factorization::{count_ordered_factorizations, prime_factors, random_factorization};
use crate::map::{LevelMapping, Mapping};
use crate::permutation::{factorial, random_permutation};
use arch::Arch;
use problem::Problem;
use rand::Rng;

/// The map space of a (problem, architecture) pair.
#[derive(Debug, Clone)]
pub struct MapSpace {
    problem: Problem,
    arch: Arch,
}

impl MapSpace {
    /// Binds a problem to an architecture.
    pub fn new(problem: Problem, arch: Arch) -> Self {
        MapSpace { problem, arch }
    }

    /// The workload.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The accelerator.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// Samples a uniformly random *legal* mapping: random per-dimension
    /// factorizations over levels, random spatialization within fanouts,
    /// random loop orders, then capacity repair.
    ///
    /// # Panics
    ///
    /// Panics if the problem is fundamentally unmappable (a buffer cannot
    /// hold even unit tiles), which cannot happen for the paper's presets.
    /// User-supplied architectures should be screened with
    /// [`MapSpace::is_mappable`] (or sampled with [`MapSpace::try_random`])
    /// first.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Mapping {
        self.try_random(rng).unwrap_or_else(|| {
            panic!("problem {} unmappable on {}", self.problem.name(), self.arch.name())
        })
    }

    /// Whether the pair admits *any* legal mapping: the trivial mapping's
    /// unit inner tiles are the smallest possible footprint, so if they do
    /// not fit, nothing does. Spec-loaded (user-supplied) architectures go
    /// through this check before any sampling path that would panic.
    pub fn is_mappable(&self) -> bool {
        Mapping::trivial(&self.problem, &self.arch).is_legal(&self.problem, &self.arch)
    }

    /// Fallible [`MapSpace::random`]: returns `None` instead of panicking
    /// when even unit tiles overflow some buffer (possible only with
    /// user-supplied architectures; see [`MapSpace::is_mappable`]).
    pub fn try_random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Mapping> {
        let d = self.problem.num_dims();
        let nl = self.arch.num_levels();
        let mut levels: Vec<LevelMapping> = (0..nl).map(|_| LevelMapping::unit(d)).collect();

        for dim in 0..d {
            let split = random_factorization(rng, self.problem.bound(dim), nl);
            for (li, f) in split.into_iter().enumerate() {
                levels[li].temporal[dim] = f;
            }
        }
        // Spatialize: at each boundary, greedily promote random prime
        // factors from this level's temporal loops into spatial loops.
        for (li, level) in levels.iter_mut().enumerate() {
            let fanout = self.arch.fanout_below(li);
            if fanout <= 1 {
                continue;
            }
            let attempts = 2 * d;
            for _ in 0..attempts {
                let dim = rng.gen_range(0..d);
                let t = level.temporal[dim];
                if t <= 1 {
                    continue;
                }
                let primes = prime_factors(t);
                let p = primes[rng.gen_range(0..primes.len())];
                if level.spatial_product() * p <= fanout && rng.gen_bool(0.7) {
                    level.temporal[dim] /= p;
                    level.spatial[dim] *= p;
                }
            }
            level.order = random_permutation(rng, d);
        }

        let mut m = Mapping::new(levels);
        if !m.repair_capacity(&self.problem, &self.arch) {
            return None;
        }
        debug_assert!(m.is_legal(&self.problem, &self.arch), "{:?}", m.validate(&self.problem, &self.arch));
        Some(m)
    }

    /// Samples a random legal mapping already projected onto a constraint
    /// set (see [`crate::Constraints`]): sample, apply, capacity-repair.
    ///
    /// # Panics
    ///
    /// Panics if the problem is unmappable (as [`MapSpace::random`]).
    pub fn random_constrained<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        constraints: &crate::Constraints,
    ) -> Mapping {
        let mut m = self.random(rng);
        constraints.apply(&mut m);
        assert!(
            m.repair_capacity(&self.problem, &self.arch),
            "problem {} unmappable under constraints",
            self.problem.name()
        );
        debug_assert!(m.is_legal(&self.problem, &self.arch));
        m
    }

    /// log10 of the map-space size, decomposed per the paper's §4.2:
    /// ordered tile factorizations per dimension across levels, `(D!)^L`
    /// loop orders, and `2^(D × #spatial boundaries)` parallelization
    /// choices. For the paper's CONV2D workloads on a 3-level hierarchy
    /// this lands around `10^20`–`10^24`.
    pub fn size_log10(&self) -> f64 {
        let d = self.problem.num_dims();
        let nl = self.arch.num_levels() as u32;
        let mut log = 0.0f64;
        for dim in 0..d {
            log += count_ordered_factorizations(self.problem.bound(dim), nl).log10();
        }
        log += (nl as f64) * (factorial(d) as f64).log10();
        let boundaries = (0..self.arch.num_levels())
            .filter(|&i| self.arch.fanout_below(i) > 1)
            .count();
        log += (d * boundaries) as f64 * 2f64.log10();
        log
    }

    /// An NVDLA-like reference mapping (Fig. 1): weights stationary in the
    /// local buffers, `K` and `C` parallelized across the PE array, spatial
    /// output tiling at the global buffer. Falls back toward
    /// [`Mapping::trivial`] structure for problems without those dims.
    pub fn nvdla_like(&self) -> Mapping {
        let p = &self.problem;
        let d = p.num_dims();
        let mut m = Mapping::trivial(p, &self.arch);
        // Parallelize K (then C) across the PE boundary as far as fanout and
        // the dimensions allow.
        let pe_level = 1.min(self.arch.num_levels() - 1);
        let fanout = self.arch.fanout_below(pe_level);
        let mut budget = fanout;
        for name in [problem::DimName::K, problem::DimName::C] {
            if let Some(dim) = p.dim_index(name) {
                let avail = p.bound(dim) / m.levels()[pe_level].spatial[dim].max(1);
                let mut take = 1u64;
                for prime in prime_factors(avail) {
                    if take * prime <= budget {
                        take *= prime;
                    }
                }
                if take > 1 {
                    m.levels_mut()[0].temporal[dim] /= take;
                    m.levels_mut()[pe_level].spatial[dim] = take;
                    budget /= take;
                }
            }
        }
        for li in 0..self.arch.num_levels() {
            m.levels_mut()[li].order = (0..d).collect();
        }
        let ok = m.repair_capacity(p, &self.arch);
        assert!(ok, "nvdla-like mapping unmappable");
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(Problem::conv2d("t", 4, 16, 16, 14, 14, 3, 3), Arch::accel_b())
    }

    #[test]
    fn random_mappings_are_legal() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let m = s.random(&mut rng);
            m.validate(s.problem(), s.arch()).unwrap();
        }
    }

    #[test]
    fn random_mappings_are_diverse() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(format!("{:?}", s.random(&mut rng)));
        }
        assert!(seen.len() > 40, "only {} distinct mappings", seen.len());
    }

    #[test]
    fn random_sometimes_uses_parallelism() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(3);
        let any_parallel = (0..50).any(|_| s.random(&mut rng).used_lanes() > 1);
        assert!(any_parallel);
    }

    #[test]
    fn try_random_returns_none_when_unmappable() {
        // 1-word inner buffer cannot hold even one word per tensor.
        let arch = Arch::new(
            "tiny",
            vec![
                arch::MemLevel::new("DRAM", None, 1, 200.0, 16.0),
                arch::MemLevel::new("Buf", Some(1), 1, 1.0, 1.0),
            ],
            1.0,
            2,
        )
        .unwrap();
        let s = MapSpace::new(Problem::gemm("g", 1, 8, 8, 8), arch);
        assert!(!s.is_mappable());
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(s.try_random(&mut rng).is_none());
    }

    #[test]
    fn is_mappable_on_presets() {
        assert!(space().is_mappable());
    }

    #[test]
    fn constrained_sampling_respects_constraints() {
        let s = space();
        let c = crate::Constraints::none(7, 3)
            .fix_order(2, (0..7).rev().collect())
            .restrict_spatial(1, vec![1, 2]);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let m = s.random_constrained(&mut rng, &c);
            assert!(c.satisfied_by(&m));
            m.validate(s.problem(), s.arch()).unwrap();
        }
    }

    #[test]
    fn paper_scale_map_space_size() {
        // Paper §4.2: O(10^21)-class for Table 1 CONV workloads on a
        // 3-level hierarchy.
        let s = MapSpace::new(
            problem::zoo::resnet_conv4(),
            Arch::accel_b(),
        );
        let log = s.size_log10();
        assert!(log > 18.0 && log < 28.0, "log10 size = {log}");
    }

    #[test]
    fn nvdla_like_is_legal_and_parallel() {
        let s = space();
        let m = s.nvdla_like();
        m.validate(s.problem(), s.arch()).unwrap();
        assert!(m.used_lanes() > 1);
    }

    #[test]
    fn nvdla_like_for_gemm_is_legal() {
        let s = MapSpace::new(Problem::gemm("g", 4, 64, 32, 64), Arch::accel_a());
        let m = s.nvdla_like();
        m.validate(s.problem(), s.arch()).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_legal_for_arbitrary_small_problems(
            b in 1u64..5, k in 1u64..65, c in 1u64..65, y in 1u64..29, r in 1u64..4, seed in any::<u64>()
        ) {
            let p = Problem::conv2d("p", b, k, c, y, y, r, r);
            for arch in [Arch::accel_a(), Arch::accel_b()] {
                let s = MapSpace::new(p.clone(), arch);
                let mut rng = SmallRng::seed_from_u64(seed);
                let m = s.random(&mut rng);
                prop_assert!(m.is_legal(s.problem(), s.arch()));
            }
        }
    }
}
