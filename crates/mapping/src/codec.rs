//! Compact text codec for mappings (persisting replay buffers / sharing
//! found mappings without a serialization-format dependency).
//!
//! Format (one string, levels outermost-first, `|`-separated):
//! `o:1,0,2;t:4,1,8;s:1,2,1|o:...` — order, temporal factors, spatial
//! factors per level.

use crate::map::{LevelMapping, Mapping};
use std::fmt;

/// Error parsing a mapping spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMappingError(String);

impl fmt::Display for ParseMappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mapping spec: {}", self.0)
    }
}

impl std::error::Error for ParseMappingError {}

/// Serializes a mapping to its spec string.
pub fn to_spec(m: &Mapping) -> String {
    let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    m.levels()
        .iter()
        .map(|l| {
            let order = l.order.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
            format!("o:{};t:{};s:{}", order, join(&l.temporal), join(&l.spatial))
        })
        .collect::<Vec<_>>()
        .join("|")
}

/// Parses a spec string back into a [`Mapping`]. Structural validation
/// against a problem/architecture is the caller's job
/// ([`Mapping::validate`]).
///
/// # Errors
///
/// Returns an error on malformed syntax or inconsistent vector lengths.
pub fn from_spec(spec: &str) -> Result<Mapping, ParseMappingError> {
    let err = |m: &str| ParseMappingError(format!("{m} in `{spec}`"));
    let mut levels = Vec::new();
    for level_str in spec.split('|') {
        let mut order = None;
        let mut temporal = None;
        let mut spatial = None;
        for field in level_str.split(';') {
            let (key, val) = field.split_once(':').ok_or_else(|| err("bad field"))?;
            match key {
                "o" => {
                    order = Some(
                        val.split(',')
                            .map(|x| x.trim().parse::<usize>())
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(|_| err("bad order"))?,
                    )
                }
                "t" | "s" => {
                    let v = val
                        .split(',')
                        .map(|x| x.trim().parse::<u64>())
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|_| err("bad factors"))?;
                    if v.contains(&0) {
                        return Err(err("zero factor"));
                    }
                    if key == "t" {
                        temporal = Some(v);
                    } else {
                        spatial = Some(v);
                    }
                }
                _ => return Err(err("unknown field")),
            }
        }
        let order = order.ok_or_else(|| err("missing order"))?;
        let temporal = temporal.ok_or_else(|| err("missing temporal"))?;
        let spatial = spatial.ok_or_else(|| err("missing spatial"))?;
        if order.len() != temporal.len() || temporal.len() != spatial.len() {
            return Err(err("inconsistent lengths"));
        }
        levels.push(LevelMapping { order, temporal, spatial });
    }
    if levels.is_empty() {
        return Err(err("no levels"));
    }
    Ok(Mapping::new(levels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::MapSpace;
    use arch::Arch;
    use problem::Problem;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trips_random_mappings() {
        let s = MapSpace::new(Problem::conv2d("t", 4, 16, 16, 14, 14, 3, 3), Arch::accel_b());
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            let m = s.random(&mut rng);
            let spec = to_spec(&m);
            let back = from_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(m, back);
        }
    }

    #[test]
    fn spec_shape_is_stable() {
        let p = Problem::gemm("g", 2, 4, 4, 4);
        let m = Mapping::trivial(&p, &Arch::accel_b());
        assert_eq!(
            to_spec(&m),
            "o:0,1,2,3;t:2,4,4,4;s:1,1,1,1|o:0,1,2,3;t:1,1,1,1;s:1,1,1,1|o:0,1,2,3;t:1,1,1,1;s:1,1,1,1"
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "o:0;t:1",              // missing spatial
            "o:0;t:1;s:1,1",        // inconsistent lengths
            "o:0;t:0;s:1",          // zero factor
            "o:x;t:1;s:1",          // bad order
            "q:0;t:1;s:1",          // unknown field
        ] {
            assert!(from_spec(bad).is_err(), "accepted `{bad}`");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn round_trip_property(seed in any::<u64>()) {
            let s = MapSpace::new(
                Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3),
                Arch::accel_a(),
            );
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = s.random(&mut rng);
            prop_assert_eq!(from_spec(&to_spec(&m)).unwrap(), m);
        }
    }
}
