//! Map-space representation for NPU map-space exploration (§2.3, §3.1).
//!
//! A [`Mapping`] fixes the paper's three mapping axes — tile sizes, loop
//! orders, and loop parallelization — for every storage level of an
//! accelerator. [`MapSpace`] binds a workload to an architecture and offers
//! legal-mapping sampling and size estimation; [`features`] provides the
//! continuous embedding used by PCA visualization and the gradient-based
//! mapper.
//!
//! # Example
//!
//! ```
//! use mapping::MapSpace;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let space = MapSpace::new(problem::zoo::resnet_conv4(), arch::Arch::accel_b());
//! let mut rng = SmallRng::seed_from_u64(0);
//! let m = space.random(&mut rng);
//! assert!(m.is_legal(space.problem(), space.arch()));
//! assert!(space.size_log10() > 18.0); // §4.2: ~O(10^21)
//! ```

pub mod codec;
mod constraints;
pub mod factorization;
pub mod features;
mod map;
pub mod permutation;
mod space;

pub use constraints::Constraints;
pub use map::{LevelMapping, Loop, Mapping, MappingError};
pub use space::MapSpace;
