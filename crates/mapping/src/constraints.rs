//! User constraints on the map space, in the spirit of Timeloop's mapper
//! constraints: fixed loop orders per level, temporal tile-factor caps,
//! and restrictions on which dimensions may be spatialized.
//!
//! Constraints are *applied* to candidate mappings (projecting them onto
//! the constrained subspace) rather than rejecting them, so any mapper
//! composes with them unchanged — the same pattern the Table 3 harness
//! uses to pin inner/outer-product styles.

use crate::factorization::prime_factors;
use crate::map::Mapping;

/// A set of constraints for a problem with `num_dims` dimensions on a
/// hierarchy with `num_levels` storage levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraints {
    num_dims: usize,
    num_levels: usize,
    /// Per-level fixed loop order (`None` = unconstrained).
    fixed_order: Vec<Option<Vec<usize>>>,
    /// Per-level, per-dim cap on the temporal factor (`None` = free).
    max_temporal: Vec<Vec<Option<u64>>>,
    /// Per-level whitelist of spatializable dims (`None` = all allowed).
    spatial_allowed: Vec<Option<Vec<usize>>>,
}

impl Constraints {
    /// No constraints.
    pub fn none(num_dims: usize, num_levels: usize) -> Self {
        Constraints {
            num_dims,
            num_levels,
            fixed_order: vec![None; num_levels],
            max_temporal: vec![vec![None; num_dims]; num_levels],
            spatial_allowed: vec![None; num_levels],
        }
    }

    /// Fixes the loop order at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the dimensions or `level`
    /// is out of range.
    pub fn fix_order(mut self, level: usize, order: Vec<usize>) -> Self {
        assert!(level < self.num_levels, "level out of range");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..self.num_dims).collect::<Vec<_>>(), "not a permutation");
        self.fixed_order[level] = Some(order);
        self
    }

    /// Caps the temporal tile factor of `dim` at `level` (e.g. "no K
    /// tiling in the local buffers": cap at 1).
    ///
    /// # Panics
    ///
    /// Panics if `level`/`dim` are out of range or `max == 0`.
    pub fn cap_temporal(mut self, level: usize, dim: usize, max: u64) -> Self {
        assert!(level < self.num_levels && dim < self.num_dims, "index out of range");
        assert!(max >= 1, "cap must be at least 1");
        self.max_temporal[level][dim] = Some(max);
        self
    }

    /// Restricts spatialization at `level` to the given dims (e.g. an
    /// NVDLA-like array that only parallelizes K and C across PEs).
    ///
    /// # Panics
    ///
    /// Panics if `level` or any dim is out of range.
    pub fn restrict_spatial(mut self, level: usize, dims: Vec<usize>) -> Self {
        assert!(level < self.num_levels, "level out of range");
        assert!(dims.iter().all(|&d| d < self.num_dims), "dim out of range");
        self.spatial_allowed[level] = Some(dims);
        self
    }

    /// Whether `m` already satisfies every constraint.
    pub fn satisfied_by(&self, m: &Mapping) -> bool {
        for (l, level) in m.levels().iter().enumerate() {
            if let Some(order) = &self.fixed_order[l] {
                if &level.order != order {
                    return false;
                }
            }
            for dim in 0..self.num_dims {
                if let Some(max) = self.max_temporal[l][dim] {
                    if level.temporal[dim] > max {
                        return false;
                    }
                }
            }
            if let Some(allowed) = &self.spatial_allowed[l] {
                for dim in 0..self.num_dims {
                    if level.spatial[dim] > 1 && !allowed.contains(&dim) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Projects `m` onto the constrained subspace in place:
    ///
    /// * fixed orders overwrite the level's order;
    /// * over-cap temporal factors move their excess prime factors to the
    ///   outermost level;
    /// * disallowed spatial factors are demoted to temporal at the same
    ///   level.
    ///
    /// The per-dimension factor-product invariant is preserved; capacity
    /// may need a follow-up [`Mapping::repair_capacity`].
    pub fn apply(&self, m: &mut Mapping) {
        for l in 0..self.num_levels {
            if let Some(order) = &self.fixed_order[l] {
                m.levels_mut()[l].order = order.clone();
            }
            if let Some(allowed) = &self.spatial_allowed[l] {
                for dim in 0..self.num_dims {
                    if m.levels()[l].spatial[dim] > 1 && !allowed.contains(&dim) {
                        let s = m.levels()[l].spatial[dim];
                        m.levels_mut()[l].spatial[dim] = 1;
                        m.levels_mut()[l].temporal[dim] *= s;
                    }
                }
            }
            for dim in 0..self.num_dims {
                if let Some(max) = self.max_temporal[l][dim] {
                    while m.levels()[l].temporal[dim] > max {
                        let t = m.levels()[l].temporal[dim];
                        let p = *prime_factors(t).first().expect("factor > 1");
                        m.levels_mut()[l].temporal[dim] /= p;
                        m.levels_mut()[0].temporal[dim] *= p;
                        if l == 0 {
                            // Cap at the outermost level itself cannot be
                            // satisfied by migration; clamp to the cap by
                            // pushing primes inward to the next level.
                            let t0 = m.levels()[0].temporal[dim];
                            if t0 > max && self.num_levels > 1 {
                                let p = *prime_factors(t0).first().expect("factor > 1");
                                m.levels_mut()[0].temporal[dim] /= p;
                                m.levels_mut()[1].temporal[dim] *= p;
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(
            self.fixed_order.iter().enumerate().all(|(l, o)| match o {
                Some(o) => &m.levels()[l].order == o,
                None => true,
            }),
            "order projection failed"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::MapSpace;
    use arch::Arch;
    use problem::Problem;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(Problem::conv2d("t", 4, 16, 16, 14, 14, 3, 3), Arch::accel_b())
    }

    #[test]
    fn fixed_order_is_applied_and_satisfied() {
        let s = space();
        let c = Constraints::none(7, 3).fix_order(2, vec![6, 5, 4, 3, 2, 1, 0]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..20 {
            let mut m = s.random(&mut rng);
            c.apply(&mut m);
            assert!(c.satisfied_by(&m));
            assert_eq!(m.levels()[2].order, vec![6, 5, 4, 3, 2, 1, 0]);
            // Other axes untouched by an order-only constraint: still legal.
            assert!(m.is_legal(s.problem(), s.arch()));
        }
    }

    #[test]
    fn temporal_caps_migrate_factors_outward() {
        let s = space();
        // No K tiling inside the local buffer.
        let c = Constraints::none(7, 3).cap_temporal(2, 1, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut m = s.random(&mut rng);
            c.apply(&mut m);
            assert!(c.satisfied_by(&m), "cap violated");
            assert_eq!(m.levels()[2].temporal[1], 1);
            // Factor products intact.
            m.validate_structure(s.problem(), s.arch()).unwrap();
        }
    }

    #[test]
    fn spatial_restrictions_demote_disallowed_dims() {
        let s = space();
        // NVDLA-like: only K (1) and C (2) across the PE array.
        let c = Constraints::none(7, 3).restrict_spatial(1, vec![1, 2]);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let mut m = s.random(&mut rng);
            c.apply(&mut m);
            assert!(c.satisfied_by(&m));
            for dim in [0usize, 3, 4, 5, 6] {
                assert_eq!(m.levels()[1].spatial[dim], 1, "dim {dim} still spatial");
            }
            m.validate_structure(s.problem(), s.arch()).unwrap();
        }
    }

    #[test]
    fn combined_constraints_compose() {
        let s = space();
        let c = Constraints::none(7, 3)
            .fix_order(0, (0..7).collect())
            .cap_temporal(2, 2, 2)
            .restrict_spatial(2, vec![1]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut m = s.random(&mut rng);
        c.apply(&mut m);
        assert!(c.satisfied_by(&m));
        let _ = m.repair_capacity(s.problem(), s.arch());
        assert!(m.is_legal(s.problem(), s.arch()));
    }

    #[test]
    fn satisfied_detects_violations() {
        let s = space();
        let c = Constraints::none(7, 3).cap_temporal(0, 0, 1);
        let m = Mapping::trivial(s.problem(), s.arch()); // B=4 at level 0
        assert!(!c.satisfied_by(&m));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_bad_order() {
        let _ = Constraints::none(7, 3).fix_order(0, vec![0, 0, 1, 2, 3, 4, 5]);
    }
}
