//! Permutation utilities for loop orders.

use rand::Rng;

/// `n!` as `u64`. Accurate for `n <= 20`.
pub fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

/// A uniformly random permutation of `0..n` (Fisher-Yates).
pub fn random_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        p.swap(i, rng.gen_range(0..=i));
    }
    p
}

/// The `index`-th permutation of `0..n` in lexicographic order (Lehmer
/// decoding). Used by the exhaustive order sweep of Fig. 7.
///
/// # Panics
///
/// Panics if `index >= n!`.
pub fn nth_permutation(n: usize, mut index: u64) -> Vec<usize> {
    assert!(index < factorial(n), "index {index} out of range for {n}!");
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for i in (0..n).rev() {
        let f = factorial(i);
        let j = (index / f) as usize;
        index %= f;
        out.push(pool.remove(j));
    }
    out
}

/// Lexicographic rank of a permutation of `0..n` (Lehmer encoding); the
/// inverse of [`nth_permutation`].
pub fn permutation_rank(perm: &[usize]) -> u64 {
    let n = perm.len();
    let mut rank = 0u64;
    for i in 0..n {
        let smaller = perm[i + 1..].iter().filter(|&&x| x < perm[i]).count() as u64;
        rank += smaller * factorial(n - 1 - i);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(7), 5040);
    }

    #[test]
    fn nth_permutation_endpoints() {
        assert_eq!(nth_permutation(3, 0), vec![0, 1, 2]);
        assert_eq!(nth_permutation(3, 5), vec![2, 1, 0]);
    }

    #[test]
    fn all_permutations_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..factorial(5) {
            assert!(seen.insert(nth_permutation(5, i)));
        }
        assert_eq!(seen.len(), 120);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = random_permutation(&mut rng, 9);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn rank_unrank_round_trip(n in 1usize..8, idx in any::<u64>()) {
            let idx = idx % factorial(n);
            let p = nth_permutation(n, idx);
            prop_assert_eq!(permutation_rank(&p), idx);
        }
    }
}
