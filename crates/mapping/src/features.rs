//! Continuous feature vectors for mappings.
//!
//! Used in two places in the paper's methodology:
//!
//! * **Fig. 4** — PCA projection of sampled mappings to visualize how each
//!   mapper navigates the space;
//! * **Mind Mappings** — the gradient-based mapper optimizes a continuous
//!   relaxation of the mapping through a differentiable surrogate, then
//!   projects back to the nearest legal mapping.
//!
//! Layout: for each storage level, for each dimension, three features:
//! `log2(temporal factor)`, `log2(spatial factor)`, and the dimension's
//! normalized position in that level's loop order (0 = outermost).

use crate::factorization::{factorization_from_target_logs, prime_factors};
use crate::map::{LevelMapping, Mapping};
use arch::Arch;
use problem::Problem;

/// Number of features for a problem with `num_dims` dims on `num_levels`
/// storage levels.
pub fn feature_len(num_dims: usize, num_levels: usize) -> usize {
    num_dims * num_levels * 3
}

/// Extracts the feature vector of a mapping. Inverse (up to projection):
/// [`mapping_from_features`].
pub fn features(mapping: &Mapping) -> Vec<f64> {
    let d = mapping.num_dims();
    let mut out = Vec::with_capacity(feature_len(d, mapping.num_levels()));
    for level in mapping.levels() {
        let mut pos = vec![0usize; d];
        for (i, &dim) in level.order.iter().enumerate() {
            pos[dim] = i;
        }
        let denom = (d.max(2) - 1) as f64;
        for (dim, &p) in pos.iter().enumerate().take(d) {
            out.push((level.temporal[dim] as f64).log2());
            out.push((level.spatial[dim] as f64).log2());
            out.push(p as f64 / denom);
        }
    }
    out
}

/// Projects a continuous feature vector to the nearest legal mapping:
///
/// 1. per dimension, the per-level `(temporal, spatial)` log2 targets are
///    realized by a greedy prime-assignment factorization of the bound;
/// 2. spatial factors exceeding a level's fanout are demoted to temporal;
/// 3. each level's order is the argsort of the position features;
/// 4. buffer-capacity violations are repaired by migrating factors outward.
///
/// Returns `None` if the problem cannot fit even unit tiles (never the case
/// for the paper's presets).
///
/// # Panics
///
/// Panics if `feats.len() != feature_len(problem.num_dims(), arch.num_levels())`.
pub fn mapping_from_features(problem: &Problem, arch: &Arch, feats: &[f64]) -> Option<Mapping> {
    let d = problem.num_dims();
    let nl = arch.num_levels();
    assert_eq!(feats.len(), feature_len(d, nl), "feature vector length mismatch");
    let at = |li: usize, dim: usize, k: usize| feats[(li * d + dim) * 3 + k];

    let mut levels: Vec<LevelMapping> = (0..nl).map(|_| LevelMapping::unit(d)).collect();
    let ln2 = 2f64.ln();
    for dim in 0..d {
        let mut targets = Vec::with_capacity(2 * nl);
        for li in 0..nl {
            targets.push(at(li, dim, 0).max(0.0) * ln2);
            targets.push(at(li, dim, 1).max(0.0) * ln2);
        }
        let split = factorization_from_target_logs(problem.bound(dim), &targets);
        for li in 0..nl {
            levels[li].temporal[dim] = split[2 * li];
            levels[li].spatial[dim] = split[2 * li + 1];
        }
    }
    for (li, level) in levels.iter_mut().enumerate() {
        let fanout = arch.fanout_below(li);
        while level.spatial_product() > fanout {
            let (dim, f) = level
                .spatial
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, s)| s > 1)
                .max_by_key(|&(_, s)| s)
                .expect("over fanout implies a factor > 1");
            let p = *prime_factors(f).first().expect("factor > 1");
            level.spatial[dim] /= p;
            level.temporal[dim] *= p;
        }
        let mut idx: Vec<usize> = (0..d).collect();
        idx.sort_by(|&a, &b| {
            at(li, a, 2)
                .partial_cmp(&at(li, b, 2))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        level.order = idx;
    }
    let mut m = Mapping::new(levels);
    if !m.repair_capacity(problem, arch) {
        return None;
    }
    debug_assert!(m.is_legal(problem, arch));
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::MapSpace;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(Problem::conv2d("t", 4, 16, 16, 14, 14, 3, 3), Arch::accel_b())
    }

    #[test]
    fn feature_length_matches() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(0);
        let m = s.random(&mut rng);
        assert_eq!(features(&m).len(), feature_len(7, 3));
    }

    #[test]
    fn features_round_trip_exactly_when_legal() {
        // A mapping whose own features decode back to itself (no repair
        // needed): extraction and projection are mutually consistent.
        let s = space();
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let m = s.random(&mut rng);
            let f = features(&m);
            let back = mapping_from_features(s.problem(), s.arch(), &f).unwrap();
            // Tile factors must round-trip exactly; order too.
            for (l0, l1) in m.levels().iter().zip(back.levels()) {
                assert_eq!(l0.temporal, l1.temporal);
                assert_eq!(l0.spatial, l1.spatial);
                assert_eq!(l0.order, l1.order);
            }
        }
    }

    #[test]
    fn projection_of_noise_is_legal() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(3);
        use rand::Rng;
        for _ in 0..50 {
            let f: Vec<f64> = (0..feature_len(7, 3)).map(|_| rng.gen_range(-2.0..6.0)).collect();
            let m = mapping_from_features(s.problem(), s.arch(), &f).unwrap();
            m.validate(s.problem(), s.arch()).unwrap();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn projection_always_legal(seed in any::<u64>()) {
            let s = space();
            let mut rng = SmallRng::seed_from_u64(seed);
            use rand::Rng;
            let f: Vec<f64> = (0..feature_len(7, 3)).map(|_| rng.gen_range(-4.0..8.0)).collect();
            let m = mapping_from_features(s.problem(), s.arch(), &f).unwrap();
            prop_assert!(m.is_legal(s.problem(), s.arch()));
        }
    }
}
