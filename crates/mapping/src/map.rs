//! The [`Mapping`] type: a point in the map space.
//!
//! A mapping assigns, per storage level (outermost first, matching
//! [`arch::Arch::levels`]):
//!
//! * **temporal tile factors** — one factor per problem dimension; the
//!   product of a dimension's factors across all levels (temporal ×
//!   spatial) must equal its loop bound;
//! * **a loop order** — a permutation of the dimensions, outermost first;
//! * **spatial factors** — one factor per dimension, distributing work
//!   across the instances below that level (PEs, then ALUs); their product
//!   must not exceed the level's fanout.
//!
//! These are exactly the paper's three mapping axes (§2.3): tile sizes,
//! loop order, and loop parallelization.

use crate::factorization::{factorization_from_target_logs, prime_factors};
use arch::Arch;
use problem::Problem;
use std::fmt;

/// Mapping decisions at one storage level.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LevelMapping {
    /// Loop order: permutation of dimension indices, outermost first.
    pub order: Vec<usize>,
    /// Temporal tile factor per dimension index.
    pub temporal: Vec<u64>,
    /// Spatial (parallel) factor per dimension index, across the fanout
    /// below this level.
    pub spatial: Vec<u64>,
}

impl LevelMapping {
    /// A no-op level: identity order, all factors 1.
    pub fn unit(num_dims: usize) -> Self {
        LevelMapping {
            order: (0..num_dims).collect(),
            temporal: vec![1; num_dims],
            spatial: vec![1; num_dims],
        }
    }

    /// Product of this level's spatial factors (lanes used below it).
    pub fn spatial_product(&self) -> u64 {
        self.spatial.iter().product()
    }
}

/// One loop of the flattened nest, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loop {
    /// Problem dimension index.
    pub dim: usize,
    /// Loop bound (tile factor). May be 1.
    pub bound: u64,
    /// Whether this is a spatial (parallel-for) loop.
    pub spatial: bool,
    /// Storage level the loop belongs to.
    pub level: usize,
}

/// Why a mapping is illegal for a given problem/architecture.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// Level count differs from the architecture's.
    WrongLevelCount { expected: usize, found: usize },
    /// A per-dimension vector has the wrong length.
    WrongDimCount { level: usize },
    /// A level's order is not a permutation of the dimensions.
    BadPermutation { level: usize },
    /// A dimension's factors do not multiply to its bound.
    FactorProduct { dim: usize, product: u64, bound: u64 },
    /// A level's spatial factors exceed its fanout.
    FanoutExceeded { level: usize, used: u64, fanout: u64 },
    /// A buffer level cannot hold its tiles.
    CapacityExceeded { level: usize, needed_words: f64, capacity_words: u64 },
    /// The cost model produced a physically impossible result for this
    /// mapping and the evaluation guard rejected it (`costmodel::guard`).
    /// The mapping itself may be structurally legal; it is quarantined so
    /// a corrupted score cannot become a search incumbent.
    GuardRejected {
        /// Name of the violated invariant (e.g. `finite-cost`).
        invariant: String,
        /// Storage level the violation was observed at, if level-specific.
        level: Option<usize>,
        /// The physically impossible value the model reported.
        observed: f64,
        /// The bound the invariant required.
        bound: f64,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::WrongLevelCount { expected, found } => {
                write!(f, "mapping has {found} levels, architecture has {expected}")
            }
            MappingError::WrongDimCount { level } => {
                write!(f, "level {level} has wrong per-dimension vector length")
            }
            MappingError::BadPermutation { level } => {
                write!(f, "level {level} order is not a permutation")
            }
            MappingError::FactorProduct { dim, product, bound } => {
                write!(f, "dim {dim} factors multiply to {product}, bound is {bound}")
            }
            MappingError::FanoutExceeded { level, used, fanout } => {
                write!(f, "level {level} uses {used} spatial lanes, fanout is {fanout}")
            }
            MappingError::CapacityExceeded { level, needed_words, capacity_words } => {
                write!(
                    f,
                    "level {level} needs {needed_words:.0} words, capacity is {capacity_words}"
                )
            }
            MappingError::GuardRejected { invariant, level, observed, bound } => {
                write!(f, "cost-model invariant `{invariant}` violated")?;
                if let Some(l) = level {
                    write!(f, " at level {l}")?;
                }
                write!(f, ": observed {observed:.6e}, bound {bound:.6e} (mapping quarantined)")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// A complete mapping: one [`LevelMapping`] per storage level, outermost
/// first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    levels: Vec<LevelMapping>,
}

impl Mapping {
    /// Builds a mapping from per-level decisions. Structural legality is
    /// *not* checked here; call [`Mapping::validate`].
    pub fn new(levels: Vec<LevelMapping>) -> Self {
        Mapping { levels }
    }

    /// The trivially legal mapping: the whole problem iterated temporally at
    /// the outermost level, unit tiles everywhere inside. Always satisfies
    /// capacity (one word per tensor per inner level) but uses one lane.
    pub fn trivial(problem: &Problem, arch: &Arch) -> Self {
        let d = problem.num_dims();
        let mut levels = vec![LevelMapping::unit(d); arch.num_levels()];
        for (i, b) in problem.bounds().into_iter().enumerate() {
            levels[0].temporal[i] = b;
        }
        Mapping { levels }
    }

    /// Per-level decisions, outermost first.
    pub fn levels(&self) -> &[LevelMapping] {
        &self.levels
    }

    /// Mutable access for search operators. Invariants are re-checked by
    /// [`Mapping::validate`] after mutation.
    pub fn levels_mut(&mut self) -> &mut [LevelMapping] {
        &mut self.levels
    }

    /// Number of storage levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of problem dimensions this mapping is for.
    pub fn num_dims(&self) -> usize {
        self.levels.first().map_or(0, |l| l.temporal.len())
    }

    /// Per-dimension extent of the data tile resident at `level`: the
    /// product of all temporal *and* spatial factors at this level and
    /// every inner level. A level's own temporal loops iterate over its
    /// resident tile, so they contribute to its footprint; its spatial
    /// loops distribute the tile across its children, so they contribute
    /// here but not to the children's footprints. Level 0 (DRAM) covers
    /// the whole problem.
    pub fn tile_extents(&self, level: usize) -> Vec<u64> {
        let d = self.num_dims();
        let mut ext = vec![1u64; d];
        for l in &self.levels[level..] {
            for (dim, e) in ext.iter_mut().enumerate().take(d) {
                *e *= l.temporal[dim] * l.spatial[dim];
            }
        }
        ext
    }

    /// Total spatial lanes used (product of all spatial factors).
    pub fn used_lanes(&self) -> u64 {
        self.levels.iter().map(|l| l.spatial_product()).product()
    }

    /// The flattened loop nest, outermost first. Each level contributes its
    /// temporal loops (in its declared order) followed by its spatial loops.
    pub fn nest(&self) -> Vec<Loop> {
        let mut out = Vec::new();
        self.nest_into(&mut out);
        out
    }

    /// Appends the flattened loop nest to `out` (same order as
    /// [`Mapping::nest`]). Batch evaluators use this to pack many nests into
    /// one arena instead of allocating a `Vec` per mapping.
    pub fn nest_into(&self, out: &mut Vec<Loop>) {
        for (li, l) in self.levels.iter().enumerate() {
            for &dim in &l.order {
                out.push(Loop { dim, bound: l.temporal[dim], spatial: false, level: li });
            }
            for (dim, &s) in l.spatial.iter().enumerate() {
                if s > 1 {
                    out.push(Loop { dim, bound: s, spatial: true, level: li });
                }
            }
        }
    }

    /// Dense per-tensor footprints (words) of the tiles resident at `level`.
    pub fn footprints(&self, problem: &Problem, level: usize) -> Vec<f64> {
        let ext = self.tile_extents(level);
        problem.tensors().iter().map(|t| t.projection.footprint_f64(&ext)).collect()
    }

    /// Checks all legality constraints (§3.1: "we ensure that all candidate
    /// mappings are legal").
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: structure, permutation,
    /// per-dimension factor products, fanouts, then buffer capacities
    /// (innermost level checked first).
    pub fn validate(&self, problem: &Problem, arch: &Arch) -> Result<(), MappingError> {
        self.validate_structure(problem, arch)?;
        // Innermost-first: the tightest buffers fail fastest.
        for li in (0..self.levels.len()).rev() {
            if let Some(cap) = arch.level(li).capacity_words {
                let needed: f64 = self.footprints(problem, li).iter().sum();
                if needed > cap as f64 {
                    return Err(MappingError::CapacityExceeded {
                        level: li,
                        needed_words: needed,
                        capacity_words: cap,
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks every constraint *except* buffer capacities: level/dim vector
    /// shapes, order permutations, per-dimension factor products, and
    /// spatial fanouts. The sparse cost model uses this and applies its own
    /// compressed-footprint capacity rule.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural constraint.
    pub fn validate_structure(&self, problem: &Problem, arch: &Arch) -> Result<(), MappingError> {
        let d = problem.num_dims();
        if self.levels.len() != arch.num_levels() {
            return Err(MappingError::WrongLevelCount {
                expected: arch.num_levels(),
                found: self.levels.len(),
            });
        }
        for (li, l) in self.levels.iter().enumerate() {
            if l.order.len() != d || l.temporal.len() != d || l.spatial.len() != d {
                return Err(MappingError::WrongDimCount { level: li });
            }
            // Bitmask permutation check: dims are bounded (≤ 64) and this
            // runs on every evaluation, so avoid a per-call allocation.
            let mut seen = 0u64;
            for &o in &l.order {
                if o >= d || seen & (1 << o) != 0 {
                    return Err(MappingError::BadPermutation { level: li });
                }
                seen |= 1 << o;
            }
        }
        for dim in 0..d {
            let product: u64 = self
                .levels
                .iter()
                .map(|l| l.temporal[dim] * l.spatial[dim])
                .product();
            if product != problem.bound(dim) {
                return Err(MappingError::FactorProduct {
                    dim,
                    product,
                    bound: problem.bound(dim),
                });
            }
        }
        for (li, l) in self.levels.iter().enumerate() {
            let used = l.spatial_product();
            let fanout = arch.fanout_below(li);
            if used > fanout {
                return Err(MappingError::FanoutExceeded { level: li, used, fanout });
            }
        }
        Ok(())
    }

    /// Whether the mapping is legal (shorthand for `validate(..).is_ok()`).
    pub fn is_legal(&self, problem: &Problem, arch: &Arch) -> bool {
        self.validate(problem, arch).is_ok()
    }

    /// Repairs capacity violations in place by migrating prime factors from
    /// inner temporal/spatial factors to the outermost level's temporal
    /// loops (shrinking inner tiles) until every buffer fits.
    ///
    /// Returns `false` if the mapping cannot be repaired (the buffer cannot
    /// even hold unit tiles).
    #[must_use]
    pub fn repair_capacity(&mut self, problem: &Problem, arch: &Arch) -> bool {
        let d = problem.num_dims();
        for li in (1..self.levels.len()).rev() {
            let Some(cap) = arch.level(li).capacity_words else { continue };
            loop {
                let needed: f64 = self.footprints(problem, li).iter().sum();
                if needed <= cap as f64 {
                    break;
                }
                // Pick the (inner position, dim) with the largest factor to
                // shrink: any temporal or spatial factor at level li or
                // inside it contributes to the li tile.
                let mut best: Option<(usize, bool, usize, u64)> = None; // (level, is_spatial, dim, factor)
                for lj in li..self.levels.len() {
                    for dim in 0..d {
                        let t = self.levels[lj].temporal[dim];
                        if t > 1 && best.is_none_or(|b| t > b.3) {
                            best = Some((lj, false, dim, t));
                        }
                        let s = self.levels[lj].spatial[dim];
                        if s > 1 && best.is_none_or(|b| s > b.3) {
                            best = Some((lj, true, dim, s));
                        }
                    }
                }
                let Some((lj, is_spatial, dim, f)) = best else { return false };
                let Some(&p) = prime_factors(f).first() else { return false };
                if is_spatial {
                    self.levels[lj].spatial[dim] /= p;
                } else {
                    self.levels[lj].temporal[dim] /= p;
                }
                self.levels[0].temporal[dim] *= p;
            }
        }
        true
    }

    /// Warm-start tile scaling (§5.1.2 step 2): keep this mapping's loop
    /// orders and parallelization *pattern*, and re-derive tile factors for
    /// a new problem by scaling each dimension's per-level log-split to the
    /// new bound. Dimensions of `to` not present in `from` put their whole
    /// bound at the outermost level.
    ///
    /// The result is capacity-repaired for `arch` and checked legal;
    /// returns `None` when even unit tiles do not fit — or when `self` is
    /// not actually a mapping of `from` on `arch` (untrusted sources like a
    /// warm-start store can hand over arbitrary shapes; those must be
    /// refused, never indexed out of bounds or rescaled into an illegal
    /// result).
    pub fn scale_to(&self, from: &Problem, to: &Problem, arch: &Arch) -> Option<Mapping> {
        let nl = self.levels.len();
        let d_from = from.num_dims();
        if nl != arch.num_levels()
            || self.levels.iter().any(|l| {
                l.order.len() != d_from
                    || l.temporal.len() != d_from
                    || l.spatial.len() != d_from
                    || l.order.iter().any(|&o| o >= d_from)
            })
        {
            return None;
        }
        let d_to = to.num_dims();
        let mut levels: Vec<LevelMapping> = (0..nl).map(|_| LevelMapping::unit(d_to)).collect();

        // Orders: map dims by name where possible; unmatched dims keep their
        // canonical position appended at the end (innermost).
        for (li, level) in levels.iter_mut().enumerate().take(nl) {
            let mut order: Vec<usize> = Vec::with_capacity(d_to);
            for &od in &self.levels[li].order {
                let name = from.dims()[od].name;
                if let Some(nd) = to.dim_index(name) {
                    order.push(nd);
                }
            }
            for nd in 0..d_to {
                if !order.contains(&nd) {
                    order.push(nd);
                }
            }
            level.order = order;
        }

        for nd in 0..d_to {
            let bound = to.bound(nd);
            let name = to.dims()[nd].name;
            match from.dim_index(name) {
                Some(od) => {
                    let old_bound = from.bound(od) as f64;
                    let scale = if old_bound > 1.0 {
                        (bound as f64).ln() / old_bound.ln()
                    } else {
                        0.0
                    };
                    // 2*nl slots: temporal then spatial per level.
                    let mut targets = Vec::with_capacity(2 * nl);
                    for l in &self.levels {
                        targets.push((l.temporal[od] as f64).ln() * scale);
                        targets.push((l.spatial[od] as f64).ln() * scale);
                    }
                    if scale == 0.0 {
                        targets[0] = (bound as f64).ln();
                    }
                    let split = factorization_from_target_logs(bound, &targets);
                    for li in 0..nl {
                        levels[li].temporal[nd] = split[2 * li];
                        levels[li].spatial[nd] = split[2 * li + 1];
                    }
                }
                None => levels[0].temporal[nd] = bound,
            }
        }

        let mut m = Mapping::new(levels);
        // Spatial products may exceed fanout after rounding; demote extras.
        for li in 0..nl {
            let fanout = arch.fanout_below(li);
            while m.levels[li].spatial_product() > fanout {
                // `product > fanout >= 1` implies some factor > 1, but a
                // malformed input must degrade to `None`, not a panic.
                let (dim, f) = m.levels[li]
                    .spatial
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, s)| s > 1)
                    .max_by_key(|&(_, s)| s)?;
                let &p = prime_factors(f).first()?;
                m.levels[li].spatial[dim] /= p;
                m.levels[li].temporal[dim] *= p;
            }
        }
        if !m.repair_capacity(to, arch) {
            return None;
        }
        // Hostile inputs (zero factors, absurd bounds) can survive the
        // repairs above; a rescale that is not legal is a `None`, not a
        // seed and never a panic.
        if !m.is_legal(to, arch) {
            return None;
        }
        Some(m)
    }
}

impl fmt::Display for Mapping {
    /// Pretty-prints the loop nest like the paper's Fig. 1 (outermost
    /// first, `par-for` for spatial loops, unit loops elided).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut indent = 0usize;
        for (li, _) in self.levels.iter().enumerate() {
            writeln!(f, "{:indent$}--- L{li} ---", "")?;
            for l in self.nest().iter().filter(|l| l.level == li && l.bound > 1) {
                let kw = if l.spatial { "par-for" } else { "for" };
                writeln!(f, "{:indent$}{kw} d{} in 0..{}", "", l.dim, l.bound)?;
                indent += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Problem, Arch) {
        (Problem::conv2d("t", 4, 8, 8, 7, 7, 3, 3), Arch::accel_b())
    }

    #[test]
    fn trivial_is_legal() {
        let (p, a) = setup();
        let m = Mapping::trivial(&p, &a);
        m.validate(&p, &a).unwrap();
        assert_eq!(m.used_lanes(), 1);
        assert_eq!(m.tile_extents(1), vec![1; 7]);
    }

    #[test]
    fn tile_extents_accumulate_inner_levels() {
        let (p, a) = setup();
        let mut m = Mapping::trivial(&p, &a);
        // Move K=8 split: 2 at DRAM, 2 spatial at L1 boundary, 2 temporal at L2.
        m.levels_mut()[0].temporal[1] = 2;
        m.levels_mut()[1].spatial[1] = 2;
        m.levels_mut()[2].temporal[1] = 2;
        m.validate(&p, &a).unwrap();
        // Tile at GlobalBuffer (level 1) covers its spatial split and inner.
        assert_eq!(m.tile_extents(1)[1], 4);
        // Tile at LocalBuffer (level 2) covers only the inner temporal.
        assert_eq!(m.tile_extents(2)[1], 2);
        assert_eq!(m.used_lanes(), 2);
    }

    #[test]
    fn factor_product_violation_detected() {
        let (p, a) = setup();
        let mut m = Mapping::trivial(&p, &a);
        m.levels_mut()[0].temporal[1] = 4; // K now multiplies to 4, bound 8
        assert!(matches!(
            m.validate(&p, &a),
            Err(MappingError::FactorProduct { dim: 1, product: 4, bound: 8 })
        ));
    }

    #[test]
    fn fanout_violation_detected() {
        let (p, a) = setup();
        let mut m = Mapping::trivial(&p, &a);
        m.levels_mut()[0].temporal[1] = 1;
        m.levels_mut()[2].spatial[1] = 8; // 8 > 4 ALUs
        assert!(matches!(
            m.validate(&p, &a),
            Err(MappingError::FanoutExceeded { level: 2, used: 8, fanout: 4 })
        ));
    }

    #[test]
    fn capacity_violation_detected_and_repaired() {
        let (p, a) = setup();
        let mut m = Mapping::trivial(&p, &a);
        // Put everything inside the 128-word local buffer: way over.
        for dim in 0..7 {
            m.levels_mut()[2].temporal[dim] = p.bound(dim);
            m.levels_mut()[0].temporal[dim] = 1;
        }
        assert!(matches!(
            m.validate(&p, &a),
            Err(MappingError::CapacityExceeded { level: 2, .. })
        ));
        assert!(m.repair_capacity(&p, &a));
        m.validate(&p, &a).unwrap();
    }

    #[test]
    fn nest_orders_levels_outermost_first() {
        let (p, a) = setup();
        let m = Mapping::trivial(&p, &a);
        let nest = m.nest();
        assert!(nest.windows(2).all(|w| w[0].level <= w[1].level));
        assert_eq!(nest.iter().filter(|l| l.spatial).count(), 0);
    }

    #[test]
    fn scale_to_same_problem_round_trips_shape() {
        let (p, a) = setup();
        let mut m = Mapping::trivial(&p, &a);
        m.levels_mut()[0].temporal[1] = 2;
        m.levels_mut()[1].temporal[1] = 4;
        m.levels_mut()[1].spatial[3] = 7;
        m.levels_mut()[0].temporal[3] = 1;
        m.validate(&p, &a).unwrap();
        let s = m.scale_to(&p, &p, &a).unwrap();
        s.validate(&p, &a).unwrap();
        assert_eq!(s.levels()[1].spatial[3], 7);
        assert_eq!(s.levels()[1].temporal[1], 4);
    }

    #[test]
    fn scale_to_larger_problem_is_legal() {
        let a = Arch::accel_b();
        let from = Problem::conv2d("f", 4, 8, 8, 7, 7, 3, 3);
        let to = Problem::conv2d("t", 4, 16, 8, 14, 14, 3, 3);
        let mut m = Mapping::trivial(&from, &a);
        m.levels_mut()[0].temporal[1] = 4;
        m.levels_mut()[1].spatial[1] = 2;
        m.validate(&from, &a).unwrap();
        let s = m.scale_to(&from, &to, &a).unwrap();
        s.validate(&to, &a).unwrap();
    }

    #[test]
    fn scale_to_different_operator_is_legal() {
        let a = Arch::accel_b();
        let conv = Problem::conv2d("f", 4, 8, 8, 7, 7, 3, 3);
        let gemm = Problem::gemm("g", 4, 64, 8, 32);
        let m = Mapping::trivial(&conv, &a);
        let s = m.scale_to(&conv, &gemm, &a).unwrap();
        s.validate(&gemm, &a).unwrap();
    }

    #[test]
    fn display_prints_nonunit_loops() {
        let (p, a) = setup();
        let m = Mapping::trivial(&p, &a);
        let s = m.to_string();
        assert!(s.contains("for d0 in 0..4"));
        assert!(s.contains("--- L2 ---"));
    }

    #[test]
    fn error_display_messages() {
        let e = MappingError::FanoutExceeded { level: 1, used: 300, fanout: 256 };
        assert!(e.to_string().contains("fanout"));
        let e = MappingError::CapacityExceeded { level: 2, needed_words: 1e4, capacity_words: 128 };
        assert!(e.to_string().contains("capacity"));
        let e = MappingError::GuardRejected {
            invariant: "finite-cost".into(),
            level: Some(1),
            observed: f64::NAN,
            bound: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("finite-cost") && s.contains("level 1") && s.contains("quarantined"));
    }
}
