//! Minimal `--key value` argument parsing (no external dependency).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: Option<String>,
    /// Positional tokens after the subcommand (e.g. file paths).
    pub positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// Tokens starting with `--` take the following token as their value
    /// unless it also starts with `--` (then they are boolean flags).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Args {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match it.next_if(|v| !v.starts_with("--")) {
                    Some(v) => {
                        out.options.insert(key.to_string(), v);
                    }
                    None => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positionals.push(tok);
            }
        }
        out
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option with default.
    ///
    /// # Errors
    ///
    /// Returns an error string if the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
            None => Ok(default),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("search --samples 500 --warm-start --arch accel-b");
        assert_eq!(a.command.as_deref(), Some("search"));
        assert_eq!(a.get("samples"), Some("500"));
        assert_eq!(a.get_or("arch", "x"), "accel-b");
        assert!(a.flag("warm-start"));
        assert!(!a.flag("nope"));
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let a = parse("search --samples abc");
        assert!(a.get_num::<usize>("samples", 1).is_err());
        assert_eq!(a.get_num::<usize>("seed", 7), Ok(7));
    }

    #[test]
    fn collects_positionals_after_the_command() {
        let a = parse("validate specs/arch.toml specs/conv.toml --strict");
        assert_eq!(a.command.as_deref(), Some("validate"));
        assert_eq!(a.positionals, vec!["specs/arch.toml", "specs/conv.toml"]);
        assert!(a.flag("strict"));
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let a = parse("sweep --warm-start");
        assert!(a.flag("warm-start"));
        assert_eq!(a.get("warm-start"), None);
    }
}
