//! `mapex` — command-line map-space exploration.
//!
//! ```sh
//! mapex search   --problem "CONV2D;c3;B=16,K=128,C=128,Y=28,X=28,R=3,S=3" --arch accel-b --mapper gamma --samples 2000
//! mapex evaluate --problem "GEMM;g;B=16,M=1024,K=1024,N=512" --arch accel-a --mapping @best.map
//! mapex sweep    --model vgg16 --arch accel-b --samples 1000 --warm-start --buffer vgg.replay
//! mapex sweep    --model vgg16 --arch accel-b --samples 1000 --resume vgg.ckpt
//! mapex size     --problem "CONV2D;c4;B=16,K=256,C=256,Y=14,X=14,R=3,S=3" --arch accel-b
//! mapex validate examples/specs/edge_npu.toml examples/specs/resnet_conv3.toml
//! mapex zoo
//! ```

mod args;

use args::Args;
use costmodel::{
    CostModel, DenseModel, GuardAudit, GuardConfig, GuardPolicy, GuardedModel, SparseModel,
};
use mappers::{
    Budget, CrossEntropy, Dosa, EdpEvaluator, Exhaustive, Gamma, HillClimb, Mapper, RandomMapper,
    RandomPruned, Reinforce, RunStatus, SimulatedAnnealing, StandardGa,
};
use mse::{
    run_network_checkpointed_parallel, run_network_parallel, CheckpointError, EvalConfig,
    InitStrategy, Mse, ReplayBuffer, RunPolicy,
};
use problem::{Density, Problem};
use std::process::ExitCode;

const USAGE: &str = "\
mapex <command> [options]

commands:
  search    find an optimized mapping for one workload
  evaluate  cost one mapping on one workload
  sweep     map every layer of a zoo model (optionally warm-started)
  size      report the map-space size
  validate  strictly check arch/problem spec files (.toml) without running;
            `-` reads a spec from stdin (pre-submit hook for serve)
  zoo       list built-in models and workloads
  serve     run the mapping service: a JSON-lines-over-TCP daemon with
            admission control, per-request deadlines, and graceful drain
  request   send one JSON request line to a running daemon and print the
            response line
  store     inspect or maintain a warm-start store file:
            stats | compact | verify (verify exits nonzero on damage)
  chaos     run seeded fault-injection campaigns against the store /
            serve / fleet stacks and check invariant oracles; failures
            are shrunk to a minimal JSON reproducer (exit 3)
  bench-throughput
            measure evaluation throughput (serial vs parallel vs cached)
            and write BENCH_throughput.json
  bench-quality
            measure sample efficiency (evaluations needed to reach within
            10% of the best-known EDP) per mapper and write
            BENCH_quality.json

common options:
  --problem SPEC         workload spec, e.g. \"CONV2D;c3;B=16,K=128,C=128,Y=28,X=28,R=3,S=3\"
  --arch NAME            accel-a | accel-b          (default accel-b)
  --mapper NAME          gamma | random | random-pruned | standard-ga |
                         annealing | hill-climb | cem | dosa | reinforce |
                         exhaustive                 (default gamma)
  --samples N            sample budget               (default 2000)
  --seconds S            wall-clock budget (overrides --samples)
  --timeout S            hard wall-clock cap on top of the budget; a mapper
                         that ignores it is stopped by the watchdog
  --retries N            retry a failed search with perturbed seeds (default 2)
  --guard MODE           reject | warn | off: check physical invariants on
                         every cost-model evaluation and quarantine
                         violations                  (default reject)
  --seed N               RNG seed                    (default 0)
  --threads N            evaluation worker threads; 0 = one per core
                         (default 0; results are bit-identical at any count)
  --cache N              evaluation-cache capacity in entries; 0 disables
                         (default 65536)
  --weight-density D     sparse weights (enables the sparse model)
  --input-density D      sparse activations (enables the sparse model)
  --mapping SPEC|@file   mapping spec (evaluate)
  --explain-bound        evaluate: also print the admissible lower-bound
                         breakdown (per-floor terms) next to the true cost
  --out FILE             write the best mapping spec (search)
  --model NAME           zoo model (sweep): vgg16 | resnet50 | mobilenet_v2 | mnasnet | bert_large
  --buffer FILE          replay-buffer file to load/save (sweep)
  --warm-start           seed each layer from the replay buffer (sweep)
  --checkpoint FILE      write a JSON checkpoint after every layer (sweep)
  --resume FILE          resume an interrupted sweep from FILE, skipping
                         completed layers (implies --checkpoint FILE)
  --quick                bench-throughput: smaller budget and case matrix
  --min-ratio R          bench-throughput: exit nonzero if parallel/serial
                         throughput falls below R on any case (CI smoke)
  --min-batched-ratio R  bench-throughput: exit nonzero if batched costing
                         throughput falls below R x the serial end-to-end
                         gamma baseline on any micro case
  --min-cached-ratio R   bench-throughput: exit nonzero if the cached
                         stack's throughput falls below R x serial on any
                         gamma case (the cache must never be a net loss)
  --check                bench-quality: exit nonzero unless dosa reaches
                         within 10% of gamma's best on the small GEMM with
                         at most half of gamma's evaluations

serve/request options:
  --addr HOST:PORT       serve: listen address (default 127.0.0.1:7070;
                         port 0 picks a free port, printed on stdout)
                         request: daemon address (required)
  --workers N            serve: request workers (default 2; 0 = half cores)
  --queue N              serve: admission-queue bound (default 64); above
                         it requests get a structured overload response
  --deadline-ms N        serve: default per-request deadline (default
                         30000; 0 = none). Requests may override with
                         their own \"deadline_ms\" field
  --max-models N         serve: distinct model caches kept warm (default 32)
  --fault-injection      serve: accept the `panic-injector` test mapper
                         (for exercising panic isolation; never production)
  --coordinator          serve: act as fleet coordinator — shard sweep and
                         island-search requests across registered workers
  --worker ADDR          serve: act as a fleet worker executing shards for
                         the coordinator at ADDR (reconnects with backoff)
  --heartbeat-ms N       serve: worker heartbeat interval (default 500)
  --lease-ms N           serve: coordinator lease — a worker silent longer
                         than this loses its shards to re-dispatch
                         (default 2500)
  --steal-after-ms N     serve: re-issue a straggling shard to an idle
                         worker after this long; first answer wins
                         (default 3000)
  --shard-slots N        serve: concurrent shards per worker (default 2)
  --shard-delay-ms N     serve: delay each worker shard by N ms (straggler
                         injection; requires --fault-injection)
  --checkpoint-dir DIR   serve: directory for named sweep checkpoints —
                         enables \"checkpoint\"/\"resume\" in sweep requests
  --store FILE           serve: durable warm-start store — completed
                         searches and sweep layers deposit incumbents;
                         similar requests are seeded from validated priors
                         and \"mapper\": \"auto\" picks the arm a UCB bandit
                         learned for similar problems. Also the store file
                         for the `store` command
  --max-retries N        request: retry transient failures — overloaded /
                         draining responses, connect errors, empty replies —
                         with decorrelated-jitter backoff honoring the
                         daemon's retry_after_ms hint as a floor (default 0)
  --retry-budget-ms N    request: cumulative cap on time spent sleeping
                         between retries; once spent, the next transient
                         failure is final (default 0 = no cap)

chaos options:
  --seed N               chaos: campaign seed; same seed → same fault
                         plans, same oracle verdicts, same digest (default 1)
  --campaign N           chaos: number of seeded fault plans to run
                         (default 200)
  --scenario NAME        chaos: store | serve | fleet; default is a
                         deterministic store-heavy mix of all three
  --out FILE             chaos: write the shrunk reproducer JSON here on
                         failure (default: print to stderr)
  --replay FILE          chaos: re-run one fault plan from a reproducer
                         JSON file instead of a seeded campaign

exit codes:
  0  success
  1  bad input or I/O error
  2  usage error
  3  search produced no legal mapping (after retries)
  4  checkpoint is corrupt or belongs to a different sweep
";

/// CLI failure, carrying the process exit code it maps to.
enum CliError {
    /// Malformed specs, bad option values, I/O failures (exit 1).
    Input(String),
    /// The search ran but found nothing usable (exit 3).
    NoResult(String),
    /// Checkpoint corrupt or from a different sweep (exit 4).
    Checkpoint(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Input(_) => 1,
            CliError::NoResult(_) => 3,
            CliError::Checkpoint(_) => 4,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Input(m) | CliError::NoResult(m) | CliError::Checkpoint(m) => m,
        }
    }
}

/// Shorthand: anything stringy becomes an input error (exit 1).
fn input<E: ToString>(e: E) -> CliError {
    CliError::Input(e.to_string())
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let result = match args.command.as_deref() {
        Some("search") => cmd_search(&args),
        Some("evaluate") => cmd_evaluate(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("size") => cmd_size(&args),
        Some("validate") => cmd_validate(&args),
        Some("zoo") => cmd_zoo(),
        Some("serve") => cmd_serve(&args),
        Some("request") => cmd_request(&args),
        Some("store") => cmd_store(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("bench-throughput") => cmd_bench_throughput(&args),
        Some("bench-quality") => cmd_bench_quality(&args),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.code())
        }
    }
}

fn parse_arch(args: &Args) -> Result<arch::Arch, CliError> {
    match args.get_or("arch", "accel-b") {
        "accel-a" => Ok(arch::Arch::accel_a()),
        "accel-b" => Ok(arch::Arch::accel_b()),
        other => Err(input(format!("unknown --arch `{other}` (accel-a | accel-b)"))),
    }
}

fn parse_problem(args: &Args) -> Result<Problem, CliError> {
    let spec = args.get("problem").ok_or_else(|| input("--problem is required"))?;
    problem::codec::from_spec(spec).map_err(input)
}

fn parse_density(args: &Args) -> Result<Option<Density>, CliError> {
    let dw: f64 = args.get_num("weight-density", 1.0).map_err(input)?;
    let da: f64 = args.get_num("input-density", 1.0).map_err(input)?;
    if !(0.0..=1.0).contains(&dw) || !(0.0..=1.0).contains(&da) || dw == 0.0 || da == 0.0 {
        return Err(input("densities must be in (0, 1]"));
    }
    if dw == 1.0 && da == 1.0 {
        Ok(None)
    } else {
        Ok(Some(Density { weight: dw, input: da }))
    }
}

fn make_model(
    p: &Problem,
    a: &arch::Arch,
    density: Option<Density>,
) -> Box<dyn CostModel> {
    match density {
        Some(d) => {
            Box::new(SparseModel::new(p.clone(), a.clone(), arch::SparseCaps::flexible(), d))
        }
        None => Box::new(DenseModel::new(p.clone(), a.clone())),
    }
}

/// `--guard reject|warn|off` (default reject: evaluations are checked
/// against physical invariants, and violating mappings are quarantined).
fn parse_guard(args: &Args) -> Result<Option<GuardPolicy>, CliError> {
    match args.get_or("guard", "reject") {
        "reject" => Ok(Some(GuardPolicy::Reject)),
        "warn" => Ok(Some(GuardPolicy::Warn)),
        "off" => Ok(None),
        other => Err(input(format!("unknown --guard `{other}` (reject | warn | off)"))),
    }
}

/// Guard configuration matching the model `make_model` builds: the sparse
/// model needs density-aware traffic/capacity floors, the dense one does
/// not.
fn guard_config(policy: GuardPolicy, density: Option<Density>) -> GuardConfig {
    match density {
        Some(d) => GuardConfig::sparse(policy, &arch::SparseCaps::flexible(), d),
        None => GuardConfig::new(policy),
    }
}

fn make_mapper(name: &str) -> Result<Box<dyn Mapper>, CliError> {
    Ok(match name {
        "gamma" => Box::new(Gamma::new()),
        "random" => Box::new(RandomMapper::new()),
        "random-pruned" => Box::new(RandomPruned::new()),
        "standard-ga" => Box::new(StandardGa::new()),
        "annealing" => Box::new(SimulatedAnnealing::new()),
        "hill-climb" => Box::new(HillClimb::new()),
        "cem" => Box::new(CrossEntropy::new()),
        "dosa" => Box::new(Dosa::new()),
        "reinforce" => Box::new(Reinforce::new()),
        "exhaustive" => Box::new(Exhaustive::new()),
        // Canonical order, tiles/parallelism only: crosses tilings (and
        // therefore lane counts) quickly, so bound pruning gets traction.
        "exhaustive-tiles" => Box::new(Exhaustive::tiles_only()),
        other => return Err(input(format!("unknown --mapper `{other}`"))),
    })
}

/// Budget from `--samples` / `--seconds`, optionally tightened by
/// `--timeout` — a hard wall-clock cap the watchdog enforces even against
/// mappers that never look at their budget.
fn parse_budget(args: &Args) -> Result<Budget, CliError> {
    let mut budget = if let Some(s) = args.get("seconds") {
        let secs: f64 = s.parse().map_err(|_| input("--seconds: bad value"))?;
        Budget::seconds(secs)
    } else {
        Budget::samples(args.get_num("samples", 2_000).map_err(input)?)
    };
    if let Some(t) = args.get("timeout") {
        let secs: f64 = t.parse().map_err(|_| input("--timeout: bad value"))?;
        if secs.is_nan() || secs <= 0.0 {
            return Err(input("--timeout: must be positive"));
        }
        let cap = std::time::Duration::from_secs_f64(secs);
        budget.max_time = Some(budget.max_time.map_or(cap, |t| t.min(cap)));
    }
    Ok(budget)
}

/// `--threads` / `--cache` → the evaluation-engine configuration. The CLI
/// defaults to the full engine (one worker per core, 64k-entry cache);
/// library callers default to serial/uncached (`EvalConfig::default`).
fn parse_eval(args: &Args) -> Result<EvalConfig, CliError> {
    let mut eval = EvalConfig::full();
    eval.threads = args.get_num("threads", eval.threads).map_err(input)?;
    eval.cache_capacity = args.get_num("cache", eval.cache_capacity).map_err(input)?;
    Ok(eval)
}

fn parse_policy(args: &Args) -> Result<RunPolicy, CliError> {
    Ok(RunPolicy::with_retries(args.get_num("retries", 2).map_err(input)?)
        .with_eval(parse_eval(args)?))
}

fn cmd_search(args: &Args) -> Result<(), CliError> {
    let p = parse_problem(args)?;
    let a = parse_arch(args)?;
    let density = parse_density(args)?;
    let model = make_model(&p, &a, density);
    let mapper = make_mapper(args.get_or("mapper", "gamma"))?;
    let budget = parse_budget(args)?;
    let seed: u64 = args.get_num("seed", 0).map_err(input)?;
    let policy = parse_policy(args)?;

    let outcome = match parse_guard(args)? {
        None => Mse::new(model.as_ref()).run_guarded(mapper.as_ref(), budget, seed, policy),
        Some(gp) => {
            let guarded = GuardedModel::new(model, guard_config(gp, density));
            let evaluator = EdpEvaluator::new(&guarded);
            let outcome = Mse::new(&guarded).run_guarded_audited(
                mapper.as_ref(),
                &evaluator,
                budget,
                seed,
                policy,
                &guarded,
            );
            let report = guarded.report();
            if report.violations > 0 {
                eprintln!(
                    "guard: {} invariant violation(s) detected, {} evaluation(s) quarantined",
                    report.violations, report.rejections
                );
            }
            outcome
        }
    };
    for (i, attempt) in outcome.attempts.iter().enumerate() {
        if let Some(e) = &attempt.error {
            eprintln!("attempt {} (seed {}): {e}", i + 1, attempt.seed);
        }
    }
    match outcome.status {
        RunStatus::Recovered => eprintln!("recovered after retry with a perturbed seed"),
        RunStatus::WatchdogStopped => {
            eprintln!("warning: mapper overran its budget and was stopped; result is truncated")
        }
        _ => {}
    }
    let r = outcome
        .result
        .ok_or_else(|| CliError::NoResult("search found no legal mapping".to_string()))?;
    let (best, cost) = r
        .best
        .ok_or_else(|| CliError::NoResult("search found no legal mapping".to_string()))?;
    println!("workload : {p}");
    println!("arch     : {}", a.name());
    println!("mapper   : {} ({} samples, {:.3}s)", mapper.name(), r.evaluated, r.elapsed.as_secs_f64());
    if r.pruned > 0 {
        println!("pruned   : {} candidate(s) skipped by the admissible lower bound", r.pruned);
    }
    let lookups = r.cache.hits + r.cache.misses;
    if lookups > 0 {
        println!(
            "cache    : {} hit(s) / {} lookup(s) ({:.1}% hit rate), {} eviction(s)",
            r.cache.hits,
            lookups,
            100.0 * r.cache.hit_rate(),
            r.cache.evictions
        );
    }
    println!("cost     : {cost}");
    println!("mapping  : {}", mapping::codec::to_spec(&best));
    print!("{best}");
    if let Some(path) = args.get("out") {
        std::fs::write(path, mapping::codec::to_spec(&best)).map_err(input)?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), CliError> {
    let p = parse_problem(args)?;
    let a = parse_arch(args)?;
    let density = parse_density(args)?;
    let model = make_model(&p, &a, density);
    let model: Box<dyn CostModel> = match parse_guard(args)? {
        Some(gp) => Box::new(GuardedModel::new(model, guard_config(gp, density))),
        None => model,
    };
    let spec = args.get("mapping").ok_or_else(|| input("--mapping is required"))?;
    let spec = match spec.strip_prefix('@') {
        Some(path) => std::fs::read_to_string(path).map_err(input)?,
        None => spec.to_string(),
    };
    let m = mapping::codec::from_spec(spec.trim()).map_err(input)?;
    let b = model
        .evaluate_detailed(&m)
        .map_err(|e| input(format!("illegal mapping: {e}")))?;
    println!("workload : {p}");
    println!("cost     : {}", b.cost);
    println!("lanes    : {}", b.lanes);
    for (i, t) in b.per_level.iter().enumerate() {
        println!(
            "L{i} {:<14} reads {:>12.3e}  writes {:>12.3e}",
            a.level(i).name,
            t.reads,
            t.writes
        );
    }
    if args.flag("explain-bound") {
        // Mirror make_model's configuration so the printed bound is the
        // exact one the mappers consult when pruning.
        let ctx = match density {
            Some(d) => costmodel::AnalysisContext::new(
                &p,
                &a,
                d,
                &arch::SparseCaps::flexible(),
                costmodel::CapacityMode::Soft,
            ),
            None => costmodel::AnalysisContext::new(
                &p,
                &a,
                Density::DENSE,
                &arch::SparseCaps::none(),
                costmodel::CapacityMode::Strict,
            ),
        };
        match ctx.bound(&m) {
            Some(r) => {
                println!("bound    : {} (admissible floor; never above the true cost)", r.cost);
                println!("  compute-latency floor : {:>12.3e} cycles (MACs / peak lanes)", r.compute_latency);
                println!("  dram-bw floor         : {:>12.3e} cycles (compulsory traffic / L0 bandwidth)", r.dram_bw_latency);
                println!("  latency floor         : {:>12.3e} cycles (max of the above, >= 1)", r.latency);
                println!("  mac-energy floor      : {:>12.3e} pJ", r.mac_energy_pj);
                println!("  dram-energy floor     : {:>12.3e} pJ (compulsory footprints)", r.dram_energy_pj);
                let gap = b.cost.edp() / r.cost.edp().max(f64::MIN_POSITIVE);
                println!("  EDP floor             : {:>12.3e} (true {:.3e}, gap {gap:.2}x)", r.cost.edp(), b.cost.edp());
            }
            None => println!("bound    : unavailable (structurally illegal mapping)"),
        }
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), CliError> {
    let a = parse_arch(args)?;
    let name = args.get("model").ok_or_else(|| input("--model is required"))?;
    let layers =
        problem::zoo::model(name).ok_or_else(|| input(format!("unknown model `{name}`")))?;
    let budget = parse_budget(args)?;
    let seed: u64 = args.get_num("seed", 0).map_err(input)?;
    let strategy = if args.flag("warm-start") {
        InitStrategy::BySimilarity
    } else {
        InitStrategy::Random
    };
    let buffer = ReplayBuffer::new();
    if let Some(path) = args.get("buffer") {
        if let Ok(f) = std::fs::File::open(path) {
            let n = buffer.load(std::io::BufReader::new(f)).map_err(input)?;
            println!("loaded {n} replay entries from {path}");
        }
    }
    // `--resume FILE` reads *and* keeps writing FILE; `--checkpoint FILE`
    // only writes (a fresh sweep that can be resumed later).
    let resume = args.get("resume");
    if let Some(path) = resume {
        // Peek so the user can see work being skipped; corrupt or
        // mismatched files are diagnosed by the checkpointed run below.
        if let Ok(ckpt) = mse::SweepCheckpoint::load(std::path::Path::new(path)) {
            eprintln!(
                "resuming from {path}: {}/{} layer(s) already complete",
                ckpt.layers.len(),
                layers.len()
            );
        } else if !std::path::Path::new(path).exists() {
            eprintln!("no checkpoint at {path} yet; starting fresh");
        }
    }
    let checkpoint = resume.or_else(|| args.get("checkpoint"));
    let arch_for_model = a.clone();
    let guard = parse_guard(args)?;
    let make_model = move |p: &Problem| -> Box<dyn CostModel> {
        let model = DenseModel::new(p.clone(), arch_for_model.clone());
        match guard {
            Some(gp) => Box::new(GuardedModel::new(model, GuardConfig::new(gp))),
            None => Box::new(model),
        }
    };
    let make_mapper = || -> Box<dyn Mapper> { Box::new(Gamma::new()) };
    // Random-init layers are independent and fan out over `--threads`
    // workers; warm-started sweeps stay serial (each layer seeds from its
    // predecessors). Either way checkpoint writes and replay-buffer
    // inserts happen in layer order, so results match the serial sweep.
    let threads = parse_eval(args)?.threads;
    let out = match checkpoint {
        Some(path) => run_network_checkpointed_parallel(
            &layers,
            &a,
            &buffer,
            strategy,
            budget,
            seed,
            threads,
            make_model,
            make_mapper,
            std::path::Path::new(path),
            resume.is_some(),
        )
        .map_err(|e| match e {
            CheckpointError::Io(io) => input(io),
            other => CliError::Checkpoint(other.to_string()),
        })?,
        None => run_network_parallel(
            &layers,
            &a,
            &buffer,
            strategy,
            budget,
            seed,
            threads,
            make_model,
            make_mapper,
        ),
    };
    println!("{:<24} {:>12} {:>12} {:>10}", "layer", "EDP", "latency", "samples");
    for o in &out {
        let cost = o.result.best.as_ref().map(|(_, c)| *c);
        match cost {
            Some(c) => println!(
                "{:<24} {:>12.3e} {:>12.3e} {:>10}",
                o.name,
                c.edp(),
                c.latency_cycles,
                o.result.evaluated
            ),
            None => println!("{:<24} {:>12} {:>12} {:>10}", o.name, "-", "-", o.result.evaluated),
        }
    }
    if let Some(path) = args.get("buffer") {
        let mut f = std::fs::File::create(path).map_err(input)?;
        buffer.save(&mut f).map_err(input)?;
        println!("saved {} replay entries to {path}", buffer.len());
    }
    Ok(())
}

fn cmd_size(args: &Args) -> Result<(), CliError> {
    let p = parse_problem(args)?;
    let a = parse_arch(args)?;
    let s = mapping::MapSpace::new(p.clone(), a.clone());
    println!("{p} on {}: log10(|map space|) = {:.1}", a.name(), s.size_log10());
    Ok(())
}

/// `mapex validate <file>...`: strict spec ingestion. Each file is parsed
/// with the spec-error taxonomy (unknown fields, zero capacities, fanout
/// mismatches, bad dimension sets all fail fast with line numbers), and if
/// both an arch and a problem are given, every pair is cross-checked for
/// mappability so an impossible pairing is caught before a long search.
fn cmd_validate(args: &Args) -> Result<(), CliError> {
    if args.positionals.is_empty() {
        return Err(input("validate: pass at least one <arch.toml|problem.toml> path"));
    }
    let mut archs = Vec::new();
    let mut problems = Vec::new();
    for given in &args.positionals {
        // `-` reads one spec from stdin, so validate slots into pipelines
        // (e.g. as a pre-submit hook in front of `mapex request`).
        let (path, text) = if given == "-" {
            let mut text = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
                .map_err(|e| input(format!("<stdin>: {e}")))?;
            ("<stdin>", text)
        } else {
            let text =
                std::fs::read_to_string(given).map_err(|e| input(format!("{given}: {e}")))?;
            (given.as_str(), text)
        };
        match spec::parse_any(&text).map_err(|e| input(format!("{path}: {e}")))? {
            spec::Spec::Arch(a) => {
                println!(
                    "{path}: ok — arch `{}` ({} levels, {} lanes)",
                    a.name(),
                    a.num_levels(),
                    a.total_spatial_lanes()
                );
                archs.push(a);
            }
            spec::Spec::Problem(p) => {
                println!("{path}: ok — problem `{}` ({} MACs)", p.name(), p.total_macs());
                problems.push(p);
            }
        }
    }
    for a in &archs {
        for p in &problems {
            let space = mapping::MapSpace::new(p.clone(), a.clone());
            if !space.is_mappable() {
                return Err(input(format!(
                    "problem `{}` cannot be mapped onto `{}`: even the smallest legal tiling \
                     overflows a buffer",
                    p.name(),
                    a.name()
                )));
            }
            println!(
                "cross-check: `{}` is mappable on `{}` (log10 |map space| = {:.1})",
                p.name(),
                a.name(),
                space.size_log10()
            );
        }
    }
    Ok(())
}

/// `mapex bench-throughput`: measures single-run search throughput
/// (evaluations per second) for the serial path, the parallel pool, and
/// the pool + evaluation cache, per preset × operator × mapper, plus
/// micro-benchmarks of the evaluation paths themselves (one-shot vs
/// batched SoA vs delta re-evaluation), and writes the results to
/// `BENCH_throughput.json`. `--quick` shrinks the budget and case matrix
/// for CI smoke use; `--min-ratio R` asserts the parallel path never
/// falls below `R`× serial; `--min-batched-ratio R` asserts batched
/// costing never falls below `R`× one-shot.
fn cmd_bench_throughput(args: &Args) -> Result<(), CliError> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let quick = args.flag("quick");
    let samples: usize = args.get_num("samples", if quick { 600 } else { 6_000 }).map_err(input)?;
    let threads: usize = args.get_num("threads", 0).map_err(input)?;
    let min_ratio: f64 = args.get_num("min-ratio", 0.0).map_err(input)?;
    let min_batched_ratio: f64 = args.get_num("min-batched-ratio", 0.0).map_err(input)?;
    let min_cached_ratio: f64 = args.get_num("min-cached-ratio", 0.0).map_err(input)?;
    let seed: u64 = args.get_num("seed", 0).map_err(input)?;
    let out_path = args.get_or("out", "BENCH_throughput.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let resolved_threads = if threads == 0 { cores } else { threads };
    let budget = Budget::samples(samples);

    let presets: Vec<(&str, arch::Arch)> = if quick {
        vec![("accel-b", arch::Arch::accel_b())]
    } else {
        vec![("accel-a", arch::Arch::accel_a()), ("accel-b", arch::Arch::accel_b())]
    };
    let operators = [problem::zoo::resnet_conv4(), problem::zoo::bert_kqv()];
    let mapper_names: &[&str] =
        if quick { &["gamma", "random"] } else { &["gamma", "standard-ga", "random"] };
    // The exhaustive enumerator runs on a problem small enough to exhaust
    // (its intended regime). On the big convs its systematic walk never
    // leaves one fanout-saturated region within any sane budget, so lane
    // counts — the bound's lever — never vary and nothing can be pruned.
    let tiny = Problem::gemm("Tiny GEMM", 2, 32, 32, 32);
    let mut case_list: Vec<(&str, &arch::Arch, &Problem, &str)> = Vec::new();
    for (aname, a) in &presets {
        for p in &operators {
            for &mname in mapper_names {
                case_list.push((aname, a, p, mname));
            }
        }
        case_list.push((aname, a, &tiny, "exhaustive-tiles"));
    }

    let mut rows = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    let mut worst_cached_ratio = f64::INFINITY;
    // Serial end-to-end gamma throughput per (arch, problem): the baseline
    // the batched/delta micro numbers are gated against ("Nx serial").
    let mut serial_baseline: Vec<(String, f64)> = Vec::new();
    {
        for &(aname, a, p, mname) in &case_list {
            {
                let model = DenseModel::new(p.clone(), a.clone());
                let mse = Mse::new(&model);
                let run = |eval: EvalConfig| -> Result<(f64, mappers::CacheStats, usize), CliError> {
                    let mapper = make_mapper(mname)?;
                    let policy = RunPolicy::with_retries(0).with_eval(eval);
                    let outcome = mse.run_guarded(mapper.as_ref(), budget, seed, policy);
                    let r = outcome.result.ok_or_else(|| {
                        CliError::NoResult(format!("bench case {aname}/{}/{mname} failed", p.name()))
                    })?;
                    let secs = r.elapsed.as_secs_f64().max(1e-9);
                    Ok((r.evaluated as f64 / secs, r.cache, r.pruned))
                };
                // Case rows are single short searches and jitter badly on
                // loaded shared runners; take the best of 3 runs for the
                // gated serial and parallel legs so the 0.5x floor only
                // trips on real regressions, not scheduler noise.
                let run_best =
                    |eval: EvalConfig| -> Result<(f64, mappers::CacheStats, usize), CliError> {
                        let mut best = run(eval)?;
                        for _ in 0..2 {
                            let r = run(eval)?;
                            if r.0 > best.0 {
                                best = r;
                            }
                        }
                        Ok(best)
                    };
                let (serial_eps, _, pruned) = run_best(EvalConfig::serial())?;
                let (parallel_eps, _, _) =
                    run_best(EvalConfig { threads, cache_capacity: 0 })?;
                let (cached_eps, cache, _) =
                    run_best(EvalConfig { threads, cache_capacity: 1 << 16 })?;
                let ratio = parallel_eps / serial_eps;
                worst_ratio = worst_ratio.min(ratio);
                if mname == "gamma" {
                    serial_baseline.push((format!("{aname}/{}", p.name()), serial_eps));
                    // Gamma revisits canonical forms often enough that the
                    // cache must pay for its probes: gate cached vs serial
                    // on these rows only (random mappers almost never
                    // revisit, so their cached leg is pure probe overhead).
                    worst_cached_ratio = worst_cached_ratio.min(cached_eps / serial_eps);
                }
                println!(
                    "{aname:<8} {:<12} {mname:<12} serial {serial_eps:>9.0} ev/s | \
                     parallel {parallel_eps:>9.0} ev/s ({ratio:.2}x) | \
                     cached {cached_eps:>9.0} ev/s ({} hit(s)) | {pruned} pruned",
                    p.name(),
                    cache.hits
                );
                rows.push(format!(
                    "    {{\"arch\": \"{aname}\", \"problem\": \"{}\", \"mapper\": \"{mname}\", \
                     \"serial_evals_per_sec\": {serial_eps:.1}, \
                     \"parallel_evals_per_sec\": {parallel_eps:.1}, \
                     \"cached_evals_per_sec\": {cached_eps:.1}, \
                     \"parallel_speedup\": {ratio:.3}, \"cache_hits\": {}, \
                     \"evals_skipped_by_bound\": {pruned}}}",
                    p.name(),
                    cache.hits
                ));
            }
        }
    }
    // Micro-benchmarks: the same mapping population costed through each
    // evaluation path, isolated from search overhead. Best-of-3 timing per
    // path (this box is small and shared; the gate measures what the path
    // can do, not what the scheduler happened to allow). Ratios are
    // against the serial end-to-end gamma baseline above.
    let micro_n: usize = if quick { 4_096 } else { 16_384 };
    let mut micro_rows = Vec::new();
    let mut worst_batched_ratio = f64::INFINITY;
    for (aname, a) in &presets {
        for p in &operators {
            let model = DenseModel::new(p.clone(), a.clone());
            let space = mapping::MapSpace::new(p.clone(), a.clone());
            let mut rng = SmallRng::seed_from_u64(seed);
            let ms: Vec<mapping::Mapping> = (0..micro_n).map(|_| space.random(&mut rng)).collect();

            let best_of = |f: &dyn Fn() -> usize| -> (f64, usize) {
                let mut best = 0.0f64;
                let mut count = 0usize;
                for _ in 0..3 {
                    let t = std::time::Instant::now();
                    count = f();
                    let eps = count as f64 / t.elapsed().as_secs_f64().max(1e-9);
                    best = best.max(eps);
                }
                (best, count)
            };

            let (one_shot_eps, _) = best_of(&|| {
                let mut n = 0usize;
                for m in &ms {
                    if model.evaluate(m).is_ok() {
                        n += 1;
                    }
                }
                std::hint::black_box(n); // the loop must not be elided
                ms.len()
            });

            // 64 is the population mappers' brood/chunk size.
            let (batched_eps, _) = best_of(&|| {
                let mut n = 0usize;
                for chunk in ms.chunks(64) {
                    n += model.evaluate_batch(chunk).iter().filter(|r| r.is_ok()).count();
                }
                std::hint::black_box(n);
                ms.len()
            });

            // Delta: 64 single-gene neighbors per parent, pre-generated so
            // only the evaluation is timed.
            let parents: Vec<&mapping::Mapping> = ms.iter().step_by((micro_n / 32).max(1)).collect();
            let broods: Vec<Vec<mapping::Mapping>> = parents
                .iter()
                .map(|parent| {
                    (0..64)
                        .map(|_| {
                            let mut n = (*parent).clone();
                            match rng.gen_range(0..3u32) {
                                0 => mappers::operators::mutate_tile(&mut n, &mut rng),
                                1 => mappers::operators::mutate_order(&mut n, &mut rng),
                                _ => mappers::operators::mutate_parallelism(&mut n, &space, &mut rng),
                            }
                            if !mappers::operators::repair(&mut n, &space) {
                                n = (*parent).clone();
                            }
                            n
                        })
                        .collect()
                })
                .collect();
            let (delta_eps, _) = best_of(&|| {
                let mut total = 0usize;
                for (parent, brood) in parents.iter().zip(&broods) {
                    total += model.evaluate_neighbors(parent, brood).len();
                }
                total
            });

            let key = format!("{aname}/{}", p.name());
            let serial_eps = serial_baseline
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(one_shot_eps, |(_, e)| *e);
            let batched_ratio = batched_eps / serial_eps;
            let delta_ratio = delta_eps / serial_eps;
            worst_batched_ratio = worst_batched_ratio.min(batched_ratio);
            println!(
                "{aname:<8} {:<12} micro        one-shot {one_shot_eps:>9.0} ev/s | \
                 batched {batched_eps:>9.0} ev/s ({batched_ratio:.2}x serial) | \
                 delta {delta_eps:>9.0} ev/s ({delta_ratio:.2}x serial)",
                p.name(),
            );
            micro_rows.push(format!(
                "    {{\"arch\": \"{aname}\", \"problem\": \"{}\", \
                 \"one_shot_evals_per_sec\": {one_shot_eps:.1}, \
                 \"batched_evals_per_sec\": {batched_eps:.1}, \
                 \"delta_evals_per_sec\": {delta_eps:.1}, \
                 \"batched_speedup_vs_serial\": {batched_ratio:.3}, \
                 \"delta_speedup_vs_serial\": {delta_ratio:.3}}}",
                p.name(),
            ));
        }
    }

    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"threads\": {resolved_threads},\n  \
         \"samples_per_run\": {samples},\n  \"quick\": {quick},\n  \
         \"micro\": [\n{}\n  ],\n  \"cases\": [\n{}\n  ]\n}}\n",
        micro_rows.join(",\n"),
        rows.join(",\n")
    );
    std::fs::write(out_path, &json).map_err(input)?;
    println!("wrote {out_path} ({cores} core(s), {resolved_threads} thread(s))");
    if min_ratio > 0.0 && worst_ratio < min_ratio {
        return Err(CliError::NoResult(format!(
            "throughput smoke failed: worst parallel/serial ratio {worst_ratio:.2} < {min_ratio}"
        )));
    }
    if min_batched_ratio > 0.0 && worst_batched_ratio < min_batched_ratio {
        return Err(CliError::NoResult(format!(
            "throughput smoke failed: worst batched/serial ratio {worst_batched_ratio:.2} < \
             {min_batched_ratio}"
        )));
    }
    if min_cached_ratio > 0.0 && worst_cached_ratio < min_cached_ratio {
        return Err(CliError::NoResult(format!(
            "throughput smoke failed: worst cached/serial ratio {worst_cached_ratio:.2} < \
             {min_cached_ratio} on a gamma case"
        )));
    }
    Ok(())
}

/// `mapex bench-quality`: measures *sample efficiency* — how many
/// cost-model evaluations each mapper needs to bring its best-so-far EDP
/// within 10% of the best-known EDP for the problem (the minimum over all
/// mappers in the run) — and writes `BENCH_quality.json`. This is the
/// metric DOSA is built for: its gradient steps through the smooth
/// relaxation are budget-free, so it should reach the 10% band with far
/// fewer exact evaluations than the population mappers. `--check` gates
/// CI: on the small GEMM, dosa must reach within 10% of gamma's best
/// using at most half the evaluations gamma itself needed.
fn cmd_bench_quality(args: &Args) -> Result<(), CliError> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let quick = args.flag("quick");
    let samples: usize = args.get_num("samples", if quick { 600 } else { 2_000 }).map_err(input)?;
    let seed: u64 = args.get_num("seed", 0).map_err(input)?;
    let check = args.flag("check");
    let out_path = args.get_or("out", "BENCH_quality.json");
    let a = arch::Arch::accel_b();
    let tiny = Problem::gemm("Tiny GEMM", 2, 32, 32, 32);
    let problems: Vec<Problem> = if quick {
        vec![tiny.clone()]
    } else {
        vec![problem::zoo::resnet_conv4(), problem::zoo::bert_kqv(), tiny.clone()]
    };
    let mapper_names: &[&str] =
        if quick { &["dosa", "gamma"] } else { &["dosa", "gamma", "cem", "annealing", "random"] };

    let mut rows = Vec::new();
    let mut check_failures = Vec::new();
    for p in &problems {
        let model = DenseModel::new(p.clone(), a.clone());
        let space = mapping::MapSpace::new(p.clone(), a.clone());
        let eval = EdpEvaluator::new(&model);
        let mut runs: Vec<(&str, mappers::SearchResult)> = Vec::new();
        for &mname in mapper_names {
            let mapper = make_mapper(mname)?;
            let mut rng = SmallRng::seed_from_u64(seed);
            let r = mapper.search(&space, &eval, Budget::samples(samples), &mut rng);
            runs.push((mname, r));
        }
        let best_known =
            runs.iter().map(|(_, r)| r.best_score).fold(f64::INFINITY, f64::min);
        // First convergence point inside the band: the evaluations this
        // mapper needed to get within 10% of the best-known EDP.
        let evals_to = |r: &mappers::SearchResult, reference: f64| -> Option<usize> {
            r.history.iter().find(|cp| cp.best_score <= 1.1 * reference).map(|cp| cp.samples)
        };
        for (mname, r) in &runs {
            let to_band = evals_to(r, best_known);
            let within = r.best_score <= 1.1 * best_known;
            println!(
                "{:<12} {mname:<10} best {:>12.4e} | {} | {} eval(s) to 10% band",
                p.name(),
                r.best_score,
                if within { "in band " } else { "off band" },
                to_band.map_or("-".to_string(), |n| n.to_string()),
            );
            rows.push(format!(
                "    {{\"problem\": \"{}\", \"mapper\": \"{mname}\", \
                 \"best_edp\": {:.6e}, \"best_known_edp\": {best_known:.6e}, \
                 \"evals_to_within_10pct\": {}, \"evals_total\": {}}}",
                p.name(),
                r.best_score,
                to_band.map_or("null".to_string(), |n| n.to_string()),
                r.evaluated,
            ));
        }
        if check && p.name() == tiny.name() {
            let gamma = runs.iter().find(|(n, _)| *n == "gamma").expect("gamma in matrix");
            let dosa = runs.iter().find(|(n, _)| *n == "dosa").expect("dosa in matrix");
            let gamma_evals = evals_to(&gamma.1, gamma.1.best_score);
            let dosa_evals = evals_to(&dosa.1, gamma.1.best_score);
            match (dosa_evals, gamma_evals) {
                (Some(d), Some(g)) if 2 * d <= g => {}
                (d, g) => check_failures.push(format!(
                    "{}: dosa needed {:?} eval(s) vs gamma {:?} to reach within 10% of \
                     gamma's best",
                    p.name(),
                    d,
                    g
                )),
            }
        }
    }

    let json = format!(
        "{{\n  \"samples_per_run\": {samples},\n  \"quick\": {quick},\n  \
         \"band\": \"best-so-far EDP within 10% of best-known\",\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(out_path, &json).map_err(input)?;
    println!("wrote {out_path}");
    if !check_failures.is_empty() {
        return Err(CliError::NoResult(format!(
            "quality smoke failed: {}",
            check_failures.join("; ")
        )));
    }
    Ok(())
}

/// `mapex serve`: runs the JSON-lines-over-TCP mapping service until a
/// drain is requested (SIGTERM/SIGINT), then finishes the admitted backlog
/// and exits 0. The bound address is printed (and flushed) on stdout first
/// so scripts can bind port 0 and discover the port.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let deadline_ms: u64 = args.get_num("deadline-ms", 30_000).map_err(input)?;
    let role = match (args.flag("coordinator"), args.get("worker")) {
        (true, Some(_)) => {
            return Err(input("--coordinator and --worker are mutually exclusive"));
        }
        (true, None) => mse::ServeRole::Coordinator,
        (false, Some(addr)) => mse::ServeRole::Worker { coordinator: addr.to_string() },
        (false, None) => mse::ServeRole::Standalone,
    };
    let defaults = mse::FleetConfig::default();
    let fleet = mse::FleetConfig {
        heartbeat_ms: args.get_num("heartbeat-ms", defaults.heartbeat_ms).map_err(input)?,
        lease_ms: args.get_num("lease-ms", defaults.lease_ms).map_err(input)?,
        steal_after_ms: args.get_num("steal-after-ms", defaults.steal_after_ms).map_err(input)?,
        shard_slots: args.get_num("shard-slots", defaults.shard_slots).map_err(input)?,
        shard_delay_ms: args.get_num("shard-delay-ms", defaults.shard_delay_ms).map_err(input)?,
        ..defaults
    };
    if fleet.heartbeat_ms == 0 || fleet.lease_ms <= fleet.heartbeat_ms {
        return Err(input("--lease-ms must exceed --heartbeat-ms (and both must be nonzero)"));
    }
    let cfg = mse::ServeConfig {
        addr: args.get_or("addr", "127.0.0.1:7070").to_string(),
        workers: args.get_num("workers", 2).map_err(input)?,
        queue_capacity: args.get_num("queue", 64).map_err(input)?,
        default_deadline_ms: if deadline_ms == 0 { None } else { Some(deadline_ms) },
        eval: parse_eval(args)?,
        guard: parse_guard(args)?,
        max_models: args.get_num("max-models", 32).map_err(input)?,
        fault_injection: args.flag("fault-injection"),
        role,
        fleet,
        checkpoint_dir: args.get("checkpoint-dir").map(std::path::PathBuf::from),
        store: args.get("store").map(std::path::PathBuf::from),
        ..mse::ServeConfig::default()
    };
    mse::service::install_drain_signal_handlers();
    let handle = mse::serve(cfg).map_err(input)?;
    println!("listening on {}", handle.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().map_err(input)?;
    let stats = handle.join();
    println!(
        "drained after {:.1}s: {} connection(s), {} request(s) completed, \
         {} overload rejection(s), {} degraded, {} isolated panic(s)",
        stats.uptime_secs,
        stats.connections,
        stats.completed,
        stats.rejected_overload,
        stats.degraded,
        stats.request_panics
    );
    Ok(())
}

/// `mapex store <stats|compact|verify> --store PATH`: inspect or maintain a
/// warm-start store file offline. `verify` is read-only and exits nonzero
/// when it finds quarantined (damaged) records, so scripts can alarm on
/// corruption; `compact` bounds the file and heals damage out of it (the
/// previous file survives as `.bak`).
fn cmd_store(args: &Args) -> Result<(), CliError> {
    let action = args
        .positionals
        .first()
        .map(String::as_str)
        .ok_or_else(|| input("store: pass an action (stats | compact | verify)"))?;
    let path = args.get("store").ok_or_else(|| input("--store PATH is required"))?;
    let path = std::path::Path::new(path);
    match action {
        "stats" => {
            let store = mse::WarmStore::open(path).map_err(input)?;
            let s = store.stats();
            println!(
                "entries {}\nfile_bytes {}\nquarantined {}\nskipped_future {}",
                s.entries, s.file_bytes, s.quarantined, s.skipped_future
            );
            Ok(())
        }
        "compact" => {
            let store = mse::WarmStore::open(path).map_err(input)?;
            let r = store.compact().map_err(input)?;
            println!("kept {}\ndropped {}\nreclaimed_bytes {}", r.kept, r.dropped, r.reclaimed_bytes);
            Ok(())
        }
        "verify" => {
            let r = mse::WarmStore::verify(path).map_err(input)?;
            println!(
                "valid {}\nquarantined {}\nskipped_future {}\nbytes {}",
                r.valid, r.quarantined, r.skipped_future, r.bytes
            );
            if r.quarantined > 0 {
                return Err(input(format!(
                    "store has {} quarantined record(s); `mapex store compact` heals the file",
                    r.quarantined
                )));
            }
            Ok(())
        }
        other => Err(input(format!("unknown store action `{other}` (stats | compact | verify)"))),
    }
}

/// `mapex chaos`: seeded fault-injection campaigns with invariant oracles.
/// Deterministic per seed — same seed, same fault plans, same verdicts,
/// same digest. On a failing plan the fault events are ddmin-shrunk to a
/// minimal reproducer, serialized as JSON (to `--out` or stderr), and the
/// process exits 3; `--replay FILE` re-runs such a reproducer.
fn cmd_chaos(args: &Args) -> Result<(), CliError> {
    let bug = if args.flag("inject-accounting-bug") {
        mse::Bug::ClaimFailedDeposit
    } else {
        mse::Bug::None
    };
    if let Some(file) = args.get("replay") {
        let text = std::fs::read_to_string(file).map_err(|e| input(format!("{file}: {e}")))?;
        let plan = mse::FaultPlan::from_json(&text).map_err(|e| input(format!("{file}: {e}")))?;
        println!("replaying {} plan seed {} ({} events)", plan.scenario.name(), plan.seed,
            plan.events.len());
        let failures = mse::Harness::new(bug).run_plan(&plan);
        if failures.is_empty() {
            println!("PASS: all oracles held");
            return Ok(());
        }
        for f in &failures {
            eprintln!("oracle violation: {f}");
        }
        return Err(CliError::NoResult(format!("{} oracle violation(s)", failures.len())));
    }
    let seed: u64 = args.get_num("seed", 1).map_err(input)?;
    let count: usize = args.get_num("campaign", 200).map_err(input)?;
    let scenario = match args.get("scenario") {
        None => None,
        Some(s) => Some(
            mse::Scenario::from_name(s)
                .ok_or_else(|| input(format!("unknown scenario `{s}` (store | serve | fleet)")))?,
        ),
    };
    let campaign = mse::Campaign { seed, count, scenario, bug };
    let mut harness = mse::Harness::new(bug);
    let started = std::time::Instant::now();
    let report = harness.run_campaign(&campaign, &mut |line| eprintln!("{line}"));
    println!(
        "campaign seed {seed}: {}/{} plans passed in {:.1}s (digest {:016x})",
        report.passed,
        report.count,
        started.elapsed().as_secs_f64(),
        report.digest
    );
    let Some(first) = report.failures.first() else {
        return Ok(());
    };
    eprintln!(
        "shrinking plan {} ({} events) to a minimal reproducer…",
        first.index,
        first.plan.events.len()
    );
    let minimal = harness.shrink(&first.plan);
    let json = minimal.to_json();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).map_err(|e| input(format!("{path}: {e}")))?;
            eprintln!("reproducer ({} events) written to {path}", minimal.events.len());
        }
        None => eprintln!("reproducer ({} events): {json}", minimal.events.len()),
    }
    Err(CliError::NoResult(format!(
        "{} of {} plans violated an oracle; replay with `mapex chaos --replay <file>`",
        report.failures.len(),
        report.count
    )))
}

/// `mapex request`: sends one JSON request line to a running daemon and
/// prints the response line. The request body is the first positional
/// argument, or stdin when it is `-` or absent. Exits 0 whenever a
/// response line was received (including structured error responses — the
/// taxonomy is in the JSON, for scripts to inspect). With `--max-retries`,
/// transient failures — `overloaded`/`draining` responses, connect errors,
/// empty replies — are retried with capped jittered exponential backoff,
/// honoring the daemon's `retry_after_ms` hint; the final failure keeps
/// the exit code it would have had without retries.
fn cmd_request(args: &Args) -> Result<(), CliError> {
    let addr = args.get("addr").ok_or_else(|| input("--addr is required"))?;
    let max_retries: u32 = args.get_num("max-retries", 0).map_err(input)?;
    let timeout = match args.get("timeout") {
        Some(t) => {
            let secs: f64 = t.parse().map_err(|_| input("--timeout: bad value"))?;
            Some(std::time::Duration::from_secs_f64(secs))
        }
        None => None,
    };
    let body = match args.positionals.first().map(String::as_str) {
        Some("-") | None => {
            let mut text = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
                .map_err(|e| input(format!("<stdin>: {e}")))?;
            text
        }
        Some(s) => s.to_string(),
    };
    let body = body.trim();
    if body.is_empty() || body.contains('\n') {
        return Err(input("request body must be exactly one nonempty JSON line"));
    }
    let retry_budget_ms: u64 = args.get_num("retry-budget-ms", 0).map_err(input)?;
    let mut attempt: u32 = 0;
    let mut prev_delay_ms: u64 = 0;
    let mut slept_ms: u64 = 0;
    // A retry is allowed while attempts remain AND the next sleep fits in
    // the retry budget (0 = unbounded); `plan_retry` returns the sleep.
    let plan_retry = |attempt: u32, prev: u64, slept: u64, hint: Option<u64>| -> Option<u64> {
        if attempt >= max_retries {
            return None;
        }
        let delay = backoff_delay_ms(prev, hint);
        if retry_budget_ms > 0 && slept.saturating_add(delay) > retry_budget_ms {
            eprintln!("retry budget ({retry_budget_ms}ms) exhausted after {slept}ms; giving up");
            return None;
        }
        Some(delay)
    };
    loop {
        match request_once(addr, body, timeout) {
            Ok(line) => {
                if let Some(hint) = transient_retry_hint(&line) {
                    if let Some(delay) = plan_retry(attempt, prev_delay_ms, slept_ms, hint) {
                        eprintln!(
                            "transient response (attempt {}/{}); retrying in {}ms",
                            attempt + 1,
                            max_retries + 1,
                            delay
                        );
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                        slept_ms += delay;
                        prev_delay_ms = delay;
                        attempt += 1;
                        continue;
                    }
                }
                println!("{line}");
                return Ok(());
            }
            Err(e) => {
                let Some(delay) = plan_retry(attempt, prev_delay_ms, slept_ms, None) else {
                    return Err(e);
                };
                eprintln!(
                    "request failed: {} (attempt {}/{}); retrying in {}ms",
                    e.message(),
                    attempt + 1,
                    max_retries + 1,
                    delay
                );
                std::thread::sleep(std::time::Duration::from_millis(delay));
                slept_ms += delay;
                prev_delay_ms = delay;
                attempt += 1;
            }
        }
    }
}

/// One connect → send → receive round trip against the daemon.
fn request_once(
    addr: &str,
    body: &str,
    timeout: Option<std::time::Duration>,
) -> Result<String, CliError> {
    use std::io::{BufRead, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| input(format!("connect {addr}: {e}")))?;
    if let Some(dur) = timeout {
        stream.set_read_timeout(Some(dur)).map_err(input)?;
    }
    stream
        .write_all(body.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| input(format!("send: {e}")))?;
    let mut line = String::new();
    std::io::BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| input(format!("receive: {e}")))?;
    if line.trim().is_empty() {
        return Err(CliError::NoResult(
            "daemon closed the connection without responding".to_string(),
        ));
    }
    Ok(line.trim_end().to_string())
}

/// Returns `Some(retry_after_ms)` when the response line is a structured
/// transient error worth retrying (`overloaded` / `draining`); other
/// responses — success, permanent errors, transient errors a retry cannot
/// help (e.g. a worker-side deadline) — are final.
fn transient_retry_hint(line: &str) -> Option<Option<u64>> {
    let v = mse::json::parse(line).ok()?;
    if v.get("ok")?.as_bool()? {
        return None;
    }
    let err = v.get("error")?;
    if err.get("kind")?.as_str()? != "transient" {
        return None;
    }
    match err.get("code")?.as_str()? {
        "overloaded" | "draining" => {
            Some(err.get("retry_after_ms").and_then(mse::json::Value::as_u64))
        }
        _ => None,
    }
}

/// Decorrelated-jitter backoff: `uniform(base, max(base+1, min(cap,
/// prev·3)))` ms with `cap` = 10s, where `base` is the larger of 100ms and
/// the daemon's `retry_after_ms` hint — the hint is a *floor*, never
/// shortened. Unlike lockstep exponential backoff (even jittered around
/// the same midpoint), successive delays are drawn relative to the
/// previous *drawn* delay, so a herd of clients rejected together
/// decorrelates within a round or two instead of re-stampeding.
fn backoff_delay_ms(prev_ms: u64, hint: Option<u64>) -> u64 {
    use std::hash::{Hash, Hasher};
    const CAP_MS: u64 = 10_000;
    let base = hint.unwrap_or(0).max(100);
    let upper = prev_ms.saturating_mul(3).clamp(base + 1, CAP_MS.max(base + 1));
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::process::id().hash(&mut h);
    prev_ms.hash(&mut h);
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos())
        .hash(&mut h);
    base + h.finish() % (upper - base)
}

fn cmd_zoo() -> Result<(), CliError> {
    println!("models:");
    for name in ["vgg16", "resnet50", "mobilenet_v2", "mnasnet", "bert_large"] {
        let layers = problem::zoo::model(name)
            .ok_or_else(|| input(format!("zoo model `{name}` is missing from the registry")))?;
        println!("  {name:<14} {} layers", layers.len());
    }
    println!();
    println!("Table 1 workloads (usable as --problem specs):");
    for p in [
        problem::zoo::resnet_conv3(),
        problem::zoo::resnet_conv4(),
        problem::zoo::inception_conv2(),
        problem::zoo::bert_kqv(),
        problem::zoo::bert_attn(),
        problem::zoo::bert_fc(),
    ] {
        println!("  {}", problem::codec::to_spec(&p));
    }
    Ok(())
}
