//! End-to-end test of the `mapex serve` binary: boot, serve a request via
//! `mapex request`, then SIGTERM and assert a clean drain with exit 0.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const MAPEX: &str = env!("CARGO_BIN_EXE_mapex");

fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(MAPEX)
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mapex serve");
    // The daemon prints (and flushes) "listening on ADDR" before serving.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line}"))
        .to_string();
    // Keep draining stdout in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while let Ok(n) = reader.read_line(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });
    (child, addr)
}

fn request(addr: &str, body: &str) -> String {
    let out = Command::new(MAPEX)
        .args(["request", "--addr", addr, "--timeout", "60", body])
        .output()
        .expect("run mapex request");
    assert!(
        out.status.success(),
        "mapex request failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 response")
}

fn sigterm(child: &Child) {
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok, "kill -TERM failed");
}

/// Waits for exit with a timeout so a drain bug fails the test instead of
/// wedging CI.
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > timeout {
            let _ = child.kill();
            panic!("daemon did not exit within {timeout:?} after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn daemon_serves_then_sigterm_drains_and_exits_zero() {
    let (mut child, addr) = spawn_daemon(&[]);
    let pong = request(&addr, "{\"id\": 1, \"op\": \"ping\"}");
    assert!(pong.contains("\"ok\": true"), "unexpected ping response: {pong}");
    let found = request(
        &addr,
        "{\"id\": 2, \"op\": \"search\", \"problem\": \"GEMM;g;B=1,M=16,K=16,N=16\", \"samples\": 200}",
    );
    assert!(found.contains("\"ok\": true"), "unexpected search response: {found}");
    assert!(found.contains("\"mapping\":"), "search returns a mapping: {found}");

    sigterm(&child);
    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
}

#[test]
fn daemon_rejects_unknown_mapper_but_keeps_running() {
    let (mut child, addr) = spawn_daemon(&[]);
    // fault_injection is off by default: the test mappers must not exist.
    let refused = request(
        &addr,
        "{\"id\": 1, \"op\": \"search\", \"problem\": \"GEMM;g;B=1,M=16,K=16,N=16\", \"mapper\": \"panic-injector\"}",
    );
    assert!(refused.contains("\"ok\": false") && refused.contains("bad-request"), "{refused}");
    let pong = request(&addr, "{\"id\": 2, \"op\": \"ping\"}");
    assert!(pong.contains("\"ok\": true"));
    sigterm(&child);
    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0));
}
