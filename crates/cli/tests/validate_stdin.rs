//! `mapex validate -` reads a spec from stdin, so validation slots into
//! pipelines (e.g. as a pre-submit hook in front of `mapex request`).

use std::io::Write;
use std::process::{Command, Stdio};

const MAPEX: &str = env!("CARGO_BIN_EXE_mapex");

fn validate_stdin(spec: &str) -> std::process::Output {
    let mut child = Command::new(MAPEX)
        .args(["validate", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mapex validate -");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(spec.as_bytes())
        .expect("write spec to stdin");
    child.wait_with_output().expect("wait for mapex")
}

#[test]
fn good_spec_on_stdin_validates() {
    let out = validate_stdin(
        "kind = \"problem\"\nname = \"tiny\"\nop = \"GEMM\"\n[dims]\nB = 2\nM = 8\nK = 8\nN = 8\n",
    );
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<stdin>: ok"), "stdin is labeled in the report: {stdout}");
    assert!(stdout.contains("tiny"));
}

#[test]
fn bad_spec_on_stdin_fails_with_input_exit_code() {
    let out = validate_stdin("kind = \"problem\"\nname = \"broken\"\n");
    assert_eq!(out.status.code(), Some(1), "spec errors are exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("<stdin>"), "error names the stdin source: {stderr}");
}

#[test]
fn stdin_mixes_with_file_paths() {
    let dir = std::env::temp_dir().join(format!("mapex-validate-stdin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let arch_path = dir.join("npu.toml");
    std::fs::write(
        &arch_path,
        "kind = \"arch\"\nname = \"npu\"\nmac_energy = 1.0\nword_bytes = 2\n\
         [[level]]\nname = \"DRAM\"\nfanout = 1\nenergy_per_access = 200.0\nbandwidth = 16.0\n\
         [[level]]\nname = \"Buf\"\ncapacity_words = 65536\nfanout = 64\nenergy_per_access = 1.0\nbandwidth = 4.0\n",
    )
    .expect("write arch spec");
    let mut child = Command::new(MAPEX)
        .args(["validate", arch_path.to_str().expect("utf8 path"), "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mapex");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"kind = \"problem\"\nname = \"g\"\nop = \"GEMM\"\n[dims]\nB = 2\nM = 8\nK = 8\nN = 8\n")
        .expect("write spec");
    let out = child.wait_with_output().expect("wait");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cross-check"), "arch x problem mappability checked: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
