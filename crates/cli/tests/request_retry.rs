//! `mapex request --max-retries`: client-side retry against a scripted
//! fake daemon. Transient `overloaded` responses are retried honoring the
//! `retry_after_ms` hint; the final outcome keeps the exit code it would
//! have had without retries (response received → 0, connect failure → 1,
//! connection closed without a response → 3).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::process::Output;
use std::thread::JoinHandle;

const OVERLOADED: &str = "{\"id\": 1, \"ok\": false, \"error\": {\"code\": \"overloaded\", \
                          \"kind\": \"transient\", \"message\": \"queue full\", \
                          \"retry_after_ms\": 25}}";
const BAD_REQUEST: &str = "{\"id\": 1, \"ok\": false, \"error\": {\"code\": \"bad-request\", \
                           \"kind\": \"permanent\", \"message\": \"no\"}}";
const PONG: &str = "{\"id\": 1, \"ok\": true, \"op\": \"ping\"}";

/// A scripted daemon: serves exactly one connection per entry — reading
/// the request line, then writing the scripted response (or, for `None`,
/// closing without responding) — and reports how many it served.
fn scripted_daemon(script: Vec<Option<&'static str>>) -> (SocketAddr, JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let mut served = 0;
        for response in script {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut line = String::new();
            BufReader::new(stream.try_clone().expect("clone")).read_line(&mut line).expect("read");
            assert!(line.contains("\"op\""), "client sent the request body: {line}");
            served += 1;
            if let Some(r) = response {
                stream.write_all(r.as_bytes()).and_then(|()| stream.write_all(b"\n")).expect("respond");
            }
        }
        served
    });
    (addr, handle)
}

fn run_request(addr: SocketAddr, max_retries: &str) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_mapex"))
        .args([
            "request",
            "--addr",
            &addr.to_string(),
            "--max-retries",
            max_retries,
            "--timeout",
            "30",
            "{\"id\": 1, \"op\": \"ping\"}",
        ])
        .output()
        .expect("run mapex request")
}

#[test]
fn transient_overload_is_retried_until_success() {
    let (addr, daemon) = scripted_daemon(vec![Some(OVERLOADED), Some(OVERLOADED), Some(PONG)]);
    let out = run_request(addr, "5");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\": true"), "final response printed: {stdout}");
    assert_eq!(daemon.join().expect("daemon"), 3, "two retries then success");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("retrying"), "retries are narrated on stderr: {stderr}");
}

#[test]
fn exhausted_retries_still_print_the_response_and_exit_zero() {
    // Three attempts, all overloaded: the last response is printed and the
    // exit code is 0 — a response line was received, same contract as
    // --max-retries 0; the taxonomy stays in the JSON for scripts.
    let (addr, daemon) = scripted_daemon(vec![Some(OVERLOADED); 3]);
    let out = run_request(addr, "2");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"code\": \"overloaded\""));
    assert_eq!(daemon.join().expect("daemon"), 3, "exactly 1 + max_retries attempts");
}

#[test]
fn permanent_errors_are_not_retried() {
    let (addr, daemon) = scripted_daemon(vec![Some(BAD_REQUEST)]);
    let out = run_request(addr, "5");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"code\": \"bad-request\""));
    assert_eq!(daemon.join().expect("daemon"), 1, "no retry on a permanent error");
}

#[test]
fn connection_closed_without_response_retries_then_exits_three() {
    let (addr, daemon) = scripted_daemon(vec![None, None]);
    let out = run_request(addr, "1");
    assert_eq!(out.status.code(), Some(3), "no-response keeps its exit code after retries");
    assert_eq!(daemon.join().expect("daemon"), 2);
}

#[test]
fn connect_failure_retries_then_exits_one() {
    // Bind then drop: the port exists but nothing listens on it.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("local addr")
    };
    let out = run_request(addr, "1");
    assert_eq!(out.status.code(), Some(1), "connect failure keeps exit 1 after retries");
    assert!(String::from_utf8_lossy(&out.stderr).contains("connect"));
}
