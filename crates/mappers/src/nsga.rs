//! NSGA-II-style multi-objective ranking: fast non-dominated sorting plus
//! crowding distance over the (latency, energy) objectives.
//!
//! The paper runs its MSE multi-objective — "we use multi-objective —
//! Energy and Latency (Delay) — throughout the optimization process" —
//! and picks the best-EDP point off the Pareto frontier afterwards. With
//! [`crate::GammaConfig::selection`] set to [`Selection::Nsga2`], Gamma's
//! elite selection uses this ranking instead of scalar EDP.

use costmodel::Cost;

/// Elite-selection strategy for population mappers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Rank by the evaluator's scalar score (EDP by default).
    Scalar,
    /// NSGA-II non-dominated sorting + crowding distance on
    /// (latency, energy).
    Nsga2,
}

/// Returns population indices ordered best-first by (front, crowding):
/// lower non-domination front first; within a front, larger crowding
/// distance first. Points are `(latency, energy)`; non-finite points sort
/// last.
pub fn nsga2_order(points: &[(f64, f64)]) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let finite: Vec<bool> = points.iter().map(|p| p.0.is_finite() && p.1.is_finite()).collect();
    let dominates = |a: usize, b: usize| -> bool {
        let (al, ae) = points[a];
        let (bl, be) = points[b];
        al <= bl && ae <= be && (al < bl || ae < be)
    };

    // Fast non-dominated sort.
    let mut front_of = vec![usize::MAX; n];
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut count = vec![0usize; n];
    for a in 0..n {
        if !finite[a] {
            continue;
        }
        for (b, &fb) in finite.iter().enumerate() {
            if a == b || !fb {
                continue;
            }
            if dominates(a, b) {
                dominated_by[a].push(b);
            } else if dominates(b, a) {
                count[a] += 1;
            }
        }
    }
    let mut current: Vec<usize> =
        (0..n).filter(|&i| finite[i] && count[i] == 0).collect();
    let mut front = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            front_of[i] = front;
            for &j in &dominated_by[i] {
                count[j] -= 1;
                if count[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        front += 1;
    }
    // Non-finite points go to a final pseudo-front.
    for f in front_of.iter_mut() {
        if *f == usize::MAX {
            *f = front;
        }
    }

    // Crowding distance per front (objective-wise boundary points get
    // infinite distance).
    let mut crowd = vec![0.0f64; n];
    for f in 0..=front {
        let members: Vec<usize> = (0..n).filter(|&i| front_of[i] == f).collect();
        if members.len() <= 2 {
            for &i in &members {
                crowd[i] = f64::INFINITY;
            }
            continue;
        }
        for obj in 0..2usize {
            let get = |i: usize| if obj == 0 { points[i].0 } else { points[i].1 };
            let mut sorted = members.clone();
            sorted.sort_by(|&a, &b| get(a).partial_cmp(&get(b)).unwrap_or(std::cmp::Ordering::Equal));
            let span = (get(*sorted.last().expect("non-empty")) - get(sorted[0])).max(1e-12);
            crowd[sorted[0]] = f64::INFINITY;
            crowd[*sorted.last().expect("non-empty")] = f64::INFINITY;
            for w in sorted.windows(3) {
                if crowd[w[1]].is_finite() {
                    crowd[w[1]] += (get(w[2]) - get(w[0])) / span;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        front_of[a]
            .cmp(&front_of[b])
            .then(crowd[b].partial_cmp(&crowd[a]).unwrap_or(std::cmp::Ordering::Equal))
    });
    order
}

/// Convenience: NSGA-II order over optional costs (illegal mappings last).
pub fn nsga2_order_costs(costs: &[Option<Cost>]) -> Vec<usize> {
    let points: Vec<(f64, f64)> = costs
        .iter()
        .map(|c| match c {
            Some(c) => (c.latency_cycles, c.energy_uj),
            None => (f64::INFINITY, f64::INFINITY),
        })
        .collect();
    nsga2_order(&points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_front_is_nondominated() {
        // points: a=(1,4) b=(2,2) c=(4,1) form the frontier; d=(3,3) is
        // dominated by b; e=(5,5) dominated by everything.
        let pts = vec![(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0), (5.0, 5.0)];
        let order = nsga2_order(&pts);
        let first_three: Vec<usize> = order[..3].to_vec();
        for i in [0usize, 1, 2] {
            assert!(first_three.contains(&i), "frontier point {i} not in top 3: {order:?}");
        }
        assert_eq!(order[4], 4, "worst point must rank last");
    }

    #[test]
    fn boundary_points_preferred_within_front() {
        // Four points on one front; the crowded middle ones rank after the
        // boundary ones.
        let pts = vec![(1.0, 10.0), (4.9, 5.1), (5.0, 5.0), (10.0, 1.0)];
        let order = nsga2_order(&pts);
        assert!(order[..2].contains(&0));
        assert!(order[..2].contains(&3));
    }

    #[test]
    fn non_finite_points_rank_last() {
        let pts = vec![(f64::INFINITY, 1.0), (1.0, 1.0)];
        let order = nsga2_order(&pts);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(nsga2_order(&[]).is_empty());
        assert_eq!(nsga2_order(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn cost_wrapper_handles_illegal() {
        let costs = vec![None, Some(Cost::new(1.0, 1.0))];
        assert_eq!(nsga2_order_costs(&costs), vec![1, 0]);
    }
}
