//! Exhaustive enumeration of (a pruned subset of) the map space.
//!
//! Hopeless for real workloads (§4.2: ~10^21 points) but invaluable for
//! validation: on problems small enough to enumerate, the heuristic
//! mappers can be checked against the true optimum. Timeloop-mapper offers
//! the same "linear"/exhaustive heuristic for tiny spaces.
//!
//! The enumeration walks ordered tile factorizations per dimension, a
//! configurable set of loop orders per level, and spatialization choices,
//! with the Random-Pruned canonicalization (unit-factor loops carry no
//! order information) applied implicitly by enumerating orders only once
//! per level.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use mapping::factorization::ordered_factorizations;
use mapping::permutation::{factorial, nth_permutation};
use mapping::{LevelMapping, MapSpace, Mapping};
use rand::rngs::SmallRng;

/// Exhaustive mapper with a safety valve.
#[derive(Debug, Clone)]
pub struct Exhaustive {
    /// Hard cap on enumerated candidates; enumeration stops (and the
    /// result notes truncation via the sample budget) beyond this.
    pub max_candidates: usize,
    /// Orders per level: `All` enumerates every permutation at the
    /// outermost level (inner levels inherit it, the Fig. 7 relaxation);
    /// `Canonical` fixes the identity order and explores tiles/parallelism
    /// only.
    pub orders: OrderEnumeration,
}

/// How loop orders are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderEnumeration {
    /// Identity order everywhere (tiles/parallelism only).
    Canonical,
    /// All `D!` orders, applied uniformly to every level.
    All,
}

impl Exhaustive {
    /// Exhaustive search capped at one million candidates.
    pub fn new() -> Self {
        Exhaustive { max_candidates: 1_000_000, orders: OrderEnumeration::All }
    }

    /// Tiles/parallelism only (canonical order) — a much smaller space.
    pub fn tiles_only() -> Self {
        Exhaustive { max_candidates: 1_000_000, orders: OrderEnumeration::Canonical }
    }

    /// Number of candidates this configuration would enumerate for a
    /// space, before the cap. Use to decide whether exhaustion is viable.
    pub fn candidate_count(&self, space: &MapSpace) -> f64 {
        let p = space.problem();
        let nl = space.arch().num_levels();
        let mut tiles = 1.0f64;
        for d in 0..p.num_dims() {
            tiles *= mapping::factorization::count_ordered_factorizations(
                p.bound(d),
                nl as u32 + 1, // +1 slot: the PE-boundary spatial factor
            );
        }
        let orders = match self.orders {
            OrderEnumeration::Canonical => 1.0,
            OrderEnumeration::All => factorial(p.num_dims()) as f64,
        };
        tiles * orders
    }
}

impl Default for Exhaustive {
    fn default() -> Self {
        Exhaustive::new()
    }
}

impl Mapper for Exhaustive {
    fn name(&self) -> &str {
        "Exhaustive"
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        _rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        let p = space.problem();
        let arch = space.arch();
        let d = p.num_dims();
        let nl = arch.num_levels();

        // Per-dimension choices: ordered factorization into nl temporal
        // slots plus one spatial factor at the main PE boundary (the level
        // with the largest fanout).
        let pe_level =
            (0..nl).max_by_key(|&l| arch.fanout_below(l)).expect("non-empty hierarchy");
        let per_dim: Vec<Vec<Vec<u64>>> =
            (0..d).map(|dim| ordered_factorizations(p.bound(dim), nl + 1)).collect();

        let order_count = match self.orders {
            OrderEnumeration::Canonical => 1,
            OrderEnumeration::All => factorial(d),
        };

        // Candidates are buffered and evaluated through
        // `Evaluator::evaluate_batch` so the enumeration benefits from a
        // pooled evaluator; the budget gate counts the pending buffer, so
        // the evaluated candidate set matches the serial walk exactly.
        let mut buf: Vec<Mapping> = Vec::with_capacity(64);
        // Odometer over per-dimension choices.
        let mut idx = vec![0usize; d];
        let mut emitted = 0usize;
        'outer: loop {
            // Build the tiling once per odometer state.
            let mut levels: Vec<LevelMapping> = (0..nl).map(|_| LevelMapping::unit(d)).collect();
            let mut fanout_ok = true;
            for dim in 0..d {
                let choice = &per_dim[dim][idx[dim]];
                for l in 0..nl {
                    levels[l].temporal[dim] = choice[l];
                }
                levels[pe_level].spatial[dim] = choice[nl];
            }
            if levels[pe_level].spatial_product() > arch.fanout_below(pe_level) {
                fanout_ok = false;
            }
            // Legality is order-independent (orders are valid permutations
            // by construction; factor products, fanouts, and capacities
            // depend only on the tiling), so validate the tiling once and
            // skip all `order_count` variants of a doomed one — instead of
            // re-running the capacity check per permutation.
            if fanout_ok && Mapping::new(levels.clone()).validate(p, arch).is_ok() {
                for oi in 0..order_count {
                    if rec.would_be_done(buf.len()) || emitted >= self.max_candidates {
                        break 'outer;
                    }
                    let order = match self.orders {
                        OrderEnumeration::Canonical => (0..d).collect::<Vec<_>>(),
                        OrderEnumeration::All => nth_permutation(d, oi),
                    };
                    let mut lv = levels.clone();
                    for l in &mut lv {
                        l.order = order.clone();
                    }
                    let m = Mapping::new(lv);
                    {
                        emitted += 1;
                        // Bound-prune against the incumbent: a candidate
                        // whose admissible lower bound already exceeds the
                        // best score cannot be the optimum; it consumes its
                        // sample (keeping the budget walk identical) without
                        // a cost-model call.
                        let incumbent = rec.best_score();
                        if !rec.try_prune(&m, incumbent) {
                            buf.push(m);
                            if buf.len() >= 64 {
                                rec.evaluate_batch(&buf);
                                buf.clear();
                            }
                        }
                    }
                }
            }
            // Advance the odometer.
            let mut carry = 0usize;
            loop {
                idx[carry] += 1;
                if idx[carry] < per_dim[carry].len() {
                    break;
                }
                idx[carry] = 0;
                carry += 1;
                if carry == d {
                    break 'outer;
                }
            }
            if rec.would_be_done(buf.len()) || emitted >= self.max_candidates {
                break;
            }
        }
        if !buf.is_empty() {
            rec.evaluate_batch(&buf);
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::Gamma;
    use crate::mapper::EdpEvaluator;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    fn tiny() -> (MapSpace, DenseModel) {
        // Small enough to exhaust: bounds with few divisors.
        let p = Problem::gemm("tiny", 2, 4, 4, 4);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn candidate_count_estimates() {
        let (space, _) = tiny();
        let e = Exhaustive::new();
        assert!(e.candidate_count(&space) > 100.0);
        assert!(e.candidate_count(&space) < 1e7);
        assert!(Exhaustive::tiles_only().candidate_count(&space) < e.candidate_count(&space));
    }

    #[test]
    fn exhaustive_finds_global_optimum_of_its_space() {
        // Canonical-order subspace: exhaustive is optimal within it, and
        // running it twice gives identical results.
        let (space, model) = tiny();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let e = Exhaustive::tiles_only();
        let r1 = e.search(&space, &eval, Budget::default(), &mut rng);
        let r2 = e.search(&space, &eval, Budget::default(), &mut rng);
        assert_eq!(r1.best_score, r2.best_score);
        assert!(r1.evaluated > 50);
    }

    #[test]
    fn gamma_approaches_exhaustive_optimum() {
        // The key validation: on an exhaustible space, Gamma gets within a
        // small factor of the true optimum.
        let (space, model) = tiny();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(1);
        let truth = Exhaustive::new().search(&space, &eval, Budget::default(), &mut rng);
        let mut best_gamma = f64::INFINITY;
        for seed in 0..3 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = Gamma::new().search(&space, &eval, Budget::samples(2_000), &mut rng);
            best_gamma = best_gamma.min(g.best_score);
        }
        assert!(
            best_gamma <= truth.best_score * 1.10,
            "gamma {best_gamma:.4e} vs exhaustive {:.4e}",
            truth.best_score
        );
        // Exhaustive covers a superset including spatial choices at the PE
        // boundary; gamma must not beat it by much either (sanity on the
        // enumeration): allow gamma the win since its space is larger.
        assert!(truth.best_score <= best_gamma * 50.0);
    }

    #[test]
    fn budget_caps_enumeration() {
        let (space, model) = tiny();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = Exhaustive::new().search(&space, &eval, Budget::samples(100), &mut rng);
        assert!(r.evaluated <= 100);
    }
}
