//! Greedy hill climbing with random restarts — the simplest feedback-based
//! trajectory search; a sanity baseline for the ablation benches.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use crate::operators;
use mapping::{MapSpace, Mapping};
use rand::rngs::SmallRng;
use rand::Rng;

/// First-improvement hill climber: propose a single-operator neighbor,
/// accept iff it improves, restart from a fresh random mapping after
/// `patience` consecutive failures.
#[derive(Debug, Clone)]
pub struct HillClimb {
    /// Consecutive non-improving proposals before a random restart.
    pub patience: usize,
    seeds: Vec<Mapping>,
}

impl HillClimb {
    /// Default patience (100 proposals).
    pub fn new() -> Self {
        HillClimb { patience: 100, seeds: Vec::new() }
    }
}

impl Default for HillClimb {
    fn default() -> Self {
        HillClimb::new()
    }
}

impl Mapper for HillClimb {
    fn name(&self) -> &str {
        "Hill-Climb"
    }

    fn set_seeds(&mut self, seeds: Vec<Mapping>) {
        self.seeds = seeds;
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        let mut current = match self.seeds.first() {
            Some(s) => {
                let mut s = s.clone();
                if operators::repair(&mut s, space) {
                    s
                } else {
                    space.random(rng)
                }
            }
            None => space.random(rng),
        };
        let mut current_score = rec.evaluate(&current).unwrap_or(f64::INFINITY);
        let mut stale = 0usize;
        while !rec.done() {
            let mut cand = current.clone();
            match rng.gen_range(0..4) {
                0 | 1 => operators::mutate_tile(&mut cand, rng),
                2 => operators::mutate_order(&mut cand, rng),
                _ => operators::mutate_parallelism(&mut cand, space, rng),
            }
            if !operators::repair(&mut cand, space) {
                cand = space.random(rng);
            }
            // Bound-prune against the current point: a neighbor whose
            // admissible lower bound exceeds `current_score` would be
            // rejected anyway (first-improvement acceptance), so skip its
            // evaluation and take the rejection path directly.
            let score = if rec.try_prune(&cand, current_score) {
                f64::INFINITY
            } else {
                rec.evaluate(&cand).unwrap_or(f64::INFINITY)
            };
            if score < current_score {
                current = cand;
                current_score = score;
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.patience {
                    current = space.random(rng);
                    current_score = rec.evaluate(&current).unwrap_or(f64::INFINITY);
                    stale = 0;
                }
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::EdpEvaluator;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    #[test]
    fn hill_climb_improves() {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        let space = MapSpace::new(p.clone(), a.clone());
        let model = DenseModel::new(p, a);
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = HillClimb::new().search(&space, &eval, Budget::samples(500), &mut rng);
        assert!(r.best.is_some());
        let first = r.history.first().unwrap().best_score;
        assert!(r.best_score <= first);
    }

    #[test]
    fn seeded_hill_climb_starts_from_seed() {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        let space = MapSpace::new(p.clone(), a.clone());
        let model = DenseModel::new(p, a);
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(1);
        let pre = HillClimb::new().search(&space, &eval, Budget::samples(400), &mut rng);
        let (seed, cost) = pre.best.unwrap();
        let mut hc = HillClimb::new();
        hc.set_seeds(vec![seed]);
        let mut rng = SmallRng::seed_from_u64(2);
        let r = hc.search(&space, &eval, Budget::samples(50), &mut rng);
        assert!(r.best_score <= cost.edp() * 1.0001);
    }
}
