//! Map-space search algorithms (the paper's "Exploration Method", §3.3).
//!
//! Three mapper families are implemented, matching the paper's taxonomy:
//!
//! * **random-based** — [`RandomMapper`], [`RandomPruned`] (Timeloop-mapper
//!   default);
//! * **feedback-based** — [`Gamma`] (GA with per-axis domain operators),
//!   plus the non-domain [`StandardGa`] baseline and the single-trajectory
//!   [`SimulatedAnnealing`] / [`HillClimb`] extras;
//! * **gradient-based** — lives in the `surrogate` crate (it needs the
//!   neural-network substrate).
//!
//! All mappers implement [`Mapper`] and are driven by an [`Evaluator`]
//! (EDP over a cost model by default), a [`Budget`] (samples or wall
//! clock), and a seeded RNG for reproducibility.
//!
//! # Example
//!
//! ```
//! use mappers::{Budget, EdpEvaluator, Gamma, Mapper};
//! use costmodel::DenseModel;
//! use mapping::MapSpace;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let p = problem::Problem::conv2d("demo", 2, 16, 16, 14, 14, 3, 3);
//! let a = arch::Arch::accel_b();
//! let model = DenseModel::new(p.clone(), a.clone());
//! let space = MapSpace::new(p, a);
//! let mut rng = SmallRng::seed_from_u64(0);
//! let result = Gamma::new().search(&space, &EdpEvaluator::new(&model), Budget::samples(500), &mut rng);
//! assert!(result.best.is_some());
//! ```

mod annealing;
mod cem;
mod dosa;
mod exhaustive;
mod gamma;
mod hill_climb;
mod mapper;
pub mod nsga;
pub mod operators;
mod outcome;
mod random;
mod reinforce;
mod standard_ga;

pub use annealing::SimulatedAnnealing;
pub use cem::CrossEntropy;
pub use dosa::{Dosa, DosaConfig};
pub use exhaustive::{Exhaustive, OrderEnumeration};
pub use gamma::{Gamma, GammaConfig};
pub use hill_climb::HillClimb;
pub use mapper::{
    Budget, CacheStats, ConvergencePoint, EdpEvaluator, Evaluator, Mapper, Recorder, SearchResult,
};
pub use nsga::Selection;
pub use outcome::{score_cmp, AttemptRecord, RunError, RunOutcome, RunStatus};
pub use random::{canonicalize, RandomMapper, RandomPruned};
pub use reinforce::Reinforce;
pub use standard_ga::StandardGa;
