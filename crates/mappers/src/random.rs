//! Random-based mappers (§3.3): raw random sampling and Timeloop-mapper's
//! default *Random-Pruned* strategy.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use mapping::{MapSpace, Mapping};
use rand::rngs::SmallRng;
use std::collections::HashSet;

/// How many candidates the random samplers draw before handing them to the
/// evaluator in one [`Evaluator::evaluate_batch`] call. Candidates are drawn
/// *before* any evaluation, so the rng stream — and therefore the sampled
/// sequence — is identical to the historical draw-evaluate-draw loop.
const EVAL_CHUNK: usize = 64;

/// Uniform random sampling of legal mappings — the unpruned baseline.
#[derive(Debug, Clone, Default)]
pub struct RandomMapper {
    record_samples: bool,
}

impl RandomMapper {
    /// Creates the mapper.
    pub fn new() -> Self {
        RandomMapper::default()
    }

    /// Record each sample's feature vector (for the Fig. 4 PCA harness).
    pub fn with_sample_recording(mut self) -> Self {
        self.record_samples = true;
        self
    }
}

impl Mapper for RandomMapper {
    fn name(&self) -> &str {
        "Random"
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        rec.record_samples(self.record_samples);
        let mut batch: Vec<Mapping> = Vec::with_capacity(EVAL_CHUNK);
        while !rec.done() {
            let n = rec.batch_room(EVAL_CHUNK);
            batch.clear();
            for _ in 0..n {
                let m = space.random(rng);
                // Bound-prune against the incumbent: a candidate whose
                // admissible lower bound already exceeds the best score
                // could not have improved it, so it consumes its sample
                // without touching the cost model.
                let incumbent = rec.best_score();
                if !rec.try_prune(&m, incumbent) {
                    batch.push(m);
                }
            }
            rec.evaluate_batch(&batch);
        }
        rec.finish()
    }
}

/// Canonicalizes a mapping for pruning purposes: unit-factor temporal loops
/// carry no information, so within each level they are moved innermost and
/// sorted. Two mappings with equal canonical forms are
/// performance-equivalent under the cost model.
pub fn canonicalize(m: &Mapping) -> Mapping {
    let mut c = m.clone();
    for l in c.levels_mut() {
        let (mut non_unit, mut unit): (Vec<usize>, Vec<usize>) =
            l.order.iter().partition(|&&d| l.temporal[d] > 1);
        unit.sort_unstable();
        non_unit.extend(unit);
        l.order = non_unit;
    }
    c
}

/// Timeloop-mapper's default *Random-Pruned* search (§4.3): random sampling
/// over a pruned space. Pruning heuristics: (a) unit-factor loop
/// permutations are canonicalized away; (b) already-visited canonical forms
/// are not re-evaluated (each still costs a draw, not a cost-model call —
/// which is precisely why pruning raises sampling efficiency).
#[derive(Debug, Clone)]
pub struct RandomPruned {
    /// How many re-draws to attempt when a duplicate canonical form comes
    /// up before giving up and evaluating it anyway.
    pub redraws: usize,
    record_samples: bool,
}

impl RandomPruned {
    /// Creates the mapper with the default redraw limit.
    pub fn new() -> Self {
        RandomPruned { redraws: 4, record_samples: false }
    }

    /// Record each sample's feature vector (for the Fig. 4 PCA harness).
    pub fn with_sample_recording(mut self) -> Self {
        self.record_samples = true;
        self
    }
}

impl Default for RandomPruned {
    fn default() -> Self {
        RandomPruned::new()
    }
}

impl Mapper for RandomPruned {
    fn name(&self) -> &str {
        "Random-Pruned"
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        rec.record_samples(self.record_samples);
        let mut seen: HashSet<Mapping> = HashSet::new();
        let mut batch: Vec<Mapping> = Vec::with_capacity(EVAL_CHUNK);
        while !rec.done() {
            let n = rec.batch_room(EVAL_CHUNK);
            batch.clear();
            // Drawing (including redraws against `seen`) touches only the
            // rng and the visited set, never the evaluator, so batching
            // preserves the exact candidate sequence of the serial loop.
            for _ in 0..n {
                let mut candidate = canonicalize(&space.random(rng));
                for _ in 0..self.redraws {
                    if seen.insert(candidate.clone()) {
                        break;
                    }
                    candidate = canonicalize(&space.random(rng));
                }
                // Bound-prune against the incumbent (see `RandomMapper`).
                let incumbent = rec.best_score();
                if !rec.try_prune(&candidate, incumbent) {
                    batch.push(candidate);
                }
            }
            rec.evaluate_batch(&batch);
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::EdpEvaluator;
    use arch::Arch;
    use costmodel::{CostModel, DenseModel};
    use problem::Problem;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn random_finds_something_legal() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = RandomMapper::new().search(&space, &eval, Budget::samples(200), &mut rng);
        assert_eq!(r.evaluated, 200);
        let (m, c) = r.best.expect("some legal mapping");
        assert!(m.is_legal(space.problem(), space.arch()));
        assert!(c.edp().is_finite());
    }

    #[test]
    fn canonicalize_preserves_cost() {
        let (space, model) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let m = space.random(&mut rng);
            let c = canonicalize(&m);
            assert!(c.is_legal(space.problem(), space.arch()));
            let cm = model.evaluate(&m).unwrap();
            let cc = model.evaluate(&c).unwrap();
            assert!(
                (cm.edp() - cc.edp()).abs() / cm.edp() < 1e-12,
                "canonicalization changed EDP: {} vs {}",
                cm.edp(),
                cc.edp()
            );
        }
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let (space, _) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let m = canonicalize(&space.random(&mut rng));
            assert_eq!(m, canonicalize(&m));
        }
    }

    #[test]
    fn pruned_is_deterministic_per_seed() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            RandomPruned::new().search(&space, &eval, Budget::samples(100), &mut rng).best_score
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn pruned_not_worse_than_random_on_average() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut pruned_wins = 0;
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let r1 = RandomMapper::new().search(&space, &eval, Budget::samples(150), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let r2 = RandomPruned::new().search(&space, &eval, Budget::samples(150), &mut rng);
            if r2.best_score <= r1.best_score {
                pruned_wins += 1;
            }
        }
        assert!(pruned_wins >= 5, "pruned won only {pruned_wins}/10");
    }
}
