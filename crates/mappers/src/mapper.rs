//! The [`Mapper`] abstraction (the "Exploration Method" of Fig. 2) and the
//! bookkeeping shared by all search algorithms: budgets, convergence
//! histories, and the (latency, energy) Pareto archive from which the best
//! EDP point is selected (§4.1 "Objective").

use costmodel::{Cost, CostModel};
use mapping::Mapping;
use rand::rngs::SmallRng;
use std::time::{Duration, Instant};

/// Search budget: the search stops when *any* limit is hit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Maximum number of cost-model evaluations (sampled points).
    pub max_samples: Option<usize>,
    /// Maximum wall-clock time.
    pub max_time: Option<Duration>,
}

impl Budget {
    /// Sample-count budget (the paper's iso-sample comparisons, Fig. 3 top).
    pub fn samples(n: usize) -> Self {
        Budget { max_samples: Some(n), max_time: None }
    }

    /// Wall-clock budget (the paper's iso-time comparisons, Fig. 3 bottom).
    pub fn seconds(s: f64) -> Self {
        Budget { max_samples: None, max_time: Some(Duration::from_secs_f64(s)) }
    }

    /// Whether the budget is exhausted.
    pub fn exhausted(&self, samples: usize, start: Instant) -> bool {
        if let Some(n) = self.max_samples {
            if samples >= n {
                return true;
            }
        }
        if let Some(t) = self.max_time {
            if start.elapsed() >= t {
                return true;
            }
        }
        false
    }
}

/// One point of a convergence curve: best-so-far after `samples`
/// evaluations / `seconds` of wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Evaluations performed so far.
    pub samples: usize,
    /// Wall-clock seconds elapsed so far.
    pub seconds: f64,
    /// Best (lowest) score so far; for the default objective this is EDP in
    /// `cycles·µJ`.
    pub best_score: f64,
}

/// Evaluation-cache counters for one run (zero when no cache was active).
///
/// Surfaced on [`SearchResult`] so callers can verify that memoized hits
/// actually happened (and how often) without instrumenting the evaluator
/// stack themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a full evaluation.
    pub misses: u64,
    /// Entries written into the cache.
    pub inserts: u64,
    /// Entries dropped to stay within the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (zero when the cache saw no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of one mapper run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best mapping found and its cost, if any legal mapping was evaluated.
    pub best: Option<(Mapping, Cost)>,
    /// Best score (lower is better) of `best`.
    pub best_score: f64,
    /// Convergence history, one point per *improvement* plus the final
    /// state (kept sparse so long searches stay cheap to store).
    pub history: Vec<ConvergencePoint>,
    /// All evaluated samples (legal ones), if recording was enabled.
    pub samples: Vec<(Vec<f64>, f64)>,
    /// The (latency, energy) Pareto frontier over every evaluated point,
    /// sorted by ascending latency.
    pub pareto: Vec<(Mapping, Cost)>,
    /// Total samples consumed (full evaluations plus bound-pruned skips).
    pub evaluated: usize,
    /// Of `evaluated`, candidates skipped because their admissible lower
    /// bound already exceeded the incumbent ([`Evaluator::score_bound`]).
    /// Pruned candidates consume a sample — keeping budgets, and therefore
    /// search trajectories, bit-identical to a non-pruning run — but never
    /// touch the cost model.
    pub pruned: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Evaluation-cache counters (all zero when no cache was active).
    pub cache: CacheStats,
}

/// What a mapper minimizes. Implementations wrap one or more cost models;
/// the default is EDP on a single model. Returning `None` marks the mapping
/// illegal under the evaluator's rules.
pub trait Evaluator: Sync {
    /// Scores a mapping (lower is better), together with its cost at the
    /// reference density for reporting.
    fn evaluate(&self, m: &Mapping) -> Option<(Cost, f64)>;

    /// Scores a batch of mappings, returning one outcome per input in the
    /// same order. The default implementation evaluates serially; decorated
    /// evaluators (worker pools, caches, watchdogs) override it to dispatch
    /// work concurrently while preserving submission order, which is what
    /// keeps parallel runs bit-identical to serial ones.
    fn evaluate_batch(&self, batch: &[Mapping]) -> Vec<Option<(Cost, f64)>> {
        batch.iter().map(|m| self.evaluate(m)).collect()
    }

    /// Scores neighbors of an already-scored `parent`. Semantically
    /// identical to [`Evaluator::evaluate_batch`] (and that is the
    /// default); evaluators backed by the analytical engines override it to
    /// delta re-evaluate, reusing the unchanged part of the parent's
    /// loop-nest analysis. Results must stay bit-identical either way.
    fn evaluate_neighbors(&self, parent: &Mapping, neighbors: &[Mapping]) -> Vec<Option<(Cost, f64)>> {
        let _ = parent;
        self.evaluate_batch(neighbors)
    }

    /// Admissible lower bound on the score of `m` (lower is better): when
    /// `Some(b)`, the evaluator guarantees `b <= evaluate(m)`'s score, so a
    /// candidate whose bound exceeds the incumbent can be skipped without
    /// changing any search result. `None` (the default) disables pruning.
    fn score_bound(&self, m: &Mapping) -> Option<f64> {
        let _ = m;
        None
    }
}

/// EDP objective over one cost model — the paper's default criterion.
pub struct EdpEvaluator<'a> {
    model: &'a dyn CostModel,
}

impl<'a> EdpEvaluator<'a> {
    /// Wraps a cost model.
    pub fn new(model: &'a dyn CostModel) -> Self {
        EdpEvaluator { model }
    }
}

impl Evaluator for EdpEvaluator<'_> {
    fn evaluate(&self, m: &Mapping) -> Option<(Cost, f64)> {
        let cost = self.model.evaluate(m).ok()?;
        Some((cost, cost.edp()))
    }

    fn evaluate_batch(&self, batch: &[Mapping]) -> Vec<Option<(Cost, f64)>> {
        self.model
            .evaluate_batch(batch)
            .into_iter()
            .map(|r| r.ok().map(|c| (c, c.edp())))
            .collect()
    }

    fn evaluate_neighbors(&self, parent: &Mapping, neighbors: &[Mapping]) -> Vec<Option<(Cost, f64)>> {
        self.model
            .evaluate_neighbors(parent, neighbors)
            .into_iter()
            .map(|r| r.ok().map(|c| (c, c.edp())))
            .collect()
    }

    fn score_bound(&self, m: &Mapping) -> Option<f64> {
        // EDP of the component-wise cost bound: both factors are admissible
        // and positive, so their product lower-bounds the true EDP.
        self.model.cost_bound(m).map(|c| c.edp())
    }
}

/// Shared run-state used by every mapper implementation: counts samples,
/// tracks the incumbent, the history, and the Pareto archive.
pub struct Recorder<'a> {
    evaluator: &'a dyn Evaluator,
    start: Instant,
    budget: Budget,
    best: Option<(Mapping, Cost)>,
    best_score: f64,
    history: Vec<ConvergencePoint>,
    pareto: Vec<(Mapping, Cost)>,
    samples: Vec<(Vec<f64>, f64)>,
    record_samples: bool,
    evaluated: usize,
    pruned: usize,
}

impl<'a> Recorder<'a> {
    /// Starts a run.
    pub fn new(evaluator: &'a dyn Evaluator, budget: Budget) -> Self {
        Recorder {
            evaluator,
            start: Instant::now(),
            budget,
            best: None,
            best_score: f64::INFINITY,
            history: Vec::new(),
            pareto: Vec::new(),
            samples: Vec::new(),
            record_samples: false,
            evaluated: 0,
            pruned: 0,
        }
    }

    /// Also record every evaluated sample's feature vector and score (used
    /// by the Fig. 4 PCA harness). Off by default: it is memory-heavy.
    pub fn record_samples(&mut self, on: bool) {
        self.record_samples = on;
    }

    /// Whether the budget is spent.
    pub fn done(&self) -> bool {
        self.budget.exhausted(self.evaluated, self.start)
    }

    /// Whether the budget would be spent after `pending` more evaluations.
    /// Lets batching mappers size a batch to the remaining budget so a
    /// batched run consumes exactly the same samples as a serial one.
    pub fn would_be_done(&self, pending: usize) -> bool {
        self.budget.exhausted(self.evaluated + pending, self.start)
    }

    /// How many more evaluations fit in the sample budget, capped at
    /// `want`. Always at least 1 when `want >= 1` so forward progress is
    /// guaranteed even when the time budget is the binding constraint.
    pub fn batch_room(&self, want: usize) -> usize {
        let room = match self.budget.max_samples {
            Some(n) => n.saturating_sub(self.evaluated).min(want),
            None => want,
        };
        room.max(1).min(want.max(1))
    }

    /// Evaluates one mapping, updating all bookkeeping. Returns the score
    /// (`None` for illegal mappings — which still consume a sample, as in
    /// Timeloop-mapper).
    pub fn evaluate(&mut self, m: &Mapping) -> Option<f64> {
        let out = self.evaluator.evaluate(m);
        self.record_outcome(m, out)
    }

    /// Evaluates a batch through [`Evaluator::evaluate_batch`] and records
    /// every outcome in submission order. Returns one score per input.
    pub fn evaluate_batch(&mut self, batch: &[Mapping]) -> Vec<Option<f64>> {
        let outs = self.evaluator.evaluate_batch(batch);
        batch.iter().zip(outs).map(|(m, out)| self.record_outcome(m, out)).collect()
    }

    /// Tries to prune `m` against `threshold` using the evaluator's
    /// admissible score bound. Returns `true` — and consumes one sample,
    /// exactly like a full evaluation would have — iff the bound *strictly*
    /// exceeds a finite `threshold`, which proves `score(m) ≥ bound >
    /// threshold`: the candidate could not have beaten (or even tied) the
    /// threshold, so skipping its evaluation cannot change the incumbent,
    /// the best score, or any subsequent budget decision.
    ///
    /// Never prunes while sample recording is on: recorded samples feed
    /// surrogate training and PCA visualization, which need the true cost
    /// of *every* drawn candidate — skipping dominated ones would bias the
    /// dataset (and shrink it below the sample budget).
    pub fn try_prune(&mut self, m: &Mapping, threshold: f64) -> bool {
        if !threshold.is_finite() || self.record_samples {
            return false;
        }
        match self.evaluator.score_bound(m) {
            Some(bound) if bound > threshold => {
                self.record_pruned();
                true
            }
            _ => false,
        }
    }

    /// Records one bound-pruned candidate: consumes a sample (budgets and
    /// trajectories stay identical to a run that evaluated it) without
    /// touching the incumbent, history, Pareto archive, or cost model.
    pub fn record_pruned(&mut self) {
        self.evaluated += 1;
        self.pruned += 1;
    }

    /// Records a pre-computed evaluation outcome (used by mappers that
    /// evaluate a population on worker threads and then feed the results
    /// back in a deterministic order).
    ///
    /// Non-finite scores or costs (a NaN-poisoned objective, e.g. from a
    /// faulty cost model) are counted and returned to the caller — the
    /// mapper may want to steer away from them — but are quarantined from
    /// the incumbent, the history, and the Pareto archive: a NaN cost
    /// neither dominates nor is dominated, so one poisoned point would
    /// otherwise sit in the archive forever.
    pub fn record_outcome(&mut self, m: &Mapping, out: Option<(Cost, f64)>) -> Option<f64> {
        self.evaluated += 1;
        let (cost, score) = out?;
        if !(score.is_finite() && cost.latency_cycles.is_finite() && cost.energy_uj.is_finite()) {
            return Some(score);
        }
        if self.record_samples {
            self.samples.push((mapping::features::features(m), score));
        }
        if score < self.best_score {
            self.best_score = score;
            self.best = Some((m.clone(), cost));
            self.history.push(ConvergencePoint {
                samples: self.evaluated,
                seconds: self.start.elapsed().as_secs_f64(),
                best_score: score,
            });
        }
        self.pareto_insert(m, cost);
        Some(score)
    }

    /// Pareto archive on (latency, energy), kept sorted by ascending
    /// latency. In a mutually non-dominated set, points at strictly larger
    /// latency have strictly smaller energy (and equal-latency points have
    /// equal energy), so both the dominance check and the removal of newly
    /// dominated points reduce to a binary search plus a scan of the
    /// contiguous affected neighborhood — O(log n + k) per insertion
    /// instead of the old full-archive `iter().any` + `retain` pass.
    fn pareto_insert(&mut self, m: &Mapping, cost: Cost) {
        let lat = cost.latency_cycles;
        let e = cost.energy_uj;
        // The strongest potential dominator is the last point with
        // latency <= lat: energy is non-increasing along the archive, so
        // it has the smallest energy among all points at latency <= lat.
        let after = self.pareto.partition_point(|(_, c)| c.latency_cycles <= lat);
        if after > 0 && self.pareto[after - 1].1.dominates(&cost) {
            return;
        }
        // Points dominated by `cost` have latency >= lat AND energy >= e:
        // a contiguous run starting at the first point with latency >= lat.
        // Exact duplicates of `cost` (which the archive keeps, matching the
        // historical semantics where equal points do not dominate each
        // other) can only sit at the head of that run.
        let start = self.pareto.partition_point(|(_, c)| c.latency_cycles < lat);
        let mut keep = start;
        while keep < self.pareto.len() {
            let c = &self.pareto[keep].1;
            if c.latency_cycles == lat && c.energy_uj == e {
                keep += 1;
            } else {
                break;
            }
        }
        let mut end = keep;
        while end < self.pareto.len() && self.pareto[end].1.energy_uj >= e {
            end += 1;
        }
        self.pareto.drain(keep..end);
        self.pareto.insert(keep, (m.clone(), cost));
    }

    /// Current best score (infinite when nothing legal evaluated yet).
    pub fn best_score(&self) -> f64 {
        self.best_score
    }

    /// Number of evaluations so far.
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// Number of bound-pruned candidates so far.
    pub fn pruned(&self) -> usize {
        self.pruned
    }

    /// Finalizes the run.
    pub fn finish(mut self) -> SearchResult {
        let elapsed = self.start.elapsed();
        self.history.push(ConvergencePoint {
            samples: self.evaluated,
            seconds: elapsed.as_secs_f64(),
            best_score: self.best_score,
        });
        SearchResult {
            best: self.best,
            best_score: self.best_score,
            history: self.history,
            samples: self.samples,
            pareto: self.pareto,
            evaluated: self.evaluated,
            pruned: self.pruned,
            elapsed,
            cache: CacheStats::default(),
        }
    }
}

/// A map-space search algorithm.
pub trait Mapper {
    /// Short display name ("Random-Pruned", "Gamma", ...).
    fn name(&self) -> &str;

    /// Runs the search against `evaluator` for the problem/architecture
    /// bound into `space`, within `budget`. Deterministic given `rng`.
    fn search(
        &self,
        space: &mapping::MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult;

    /// Supplies warm-start seed mappings (§5.1). Mappers that support
    /// seeding use them to initialize their population/incumbent; the
    /// default implementation ignores them.
    fn set_seeds(&mut self, _seeds: Vec<Mapping>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use costmodel::DenseModel;
    use mapping::MapSpace;
    use problem::Problem;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn recorder_tracks_best_and_history() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rec = Recorder::new(&eval, Budget::samples(50));
        let mut rng = SmallRng::seed_from_u64(0);
        while !rec.done() {
            rec.evaluate(&space.random(&mut rng));
        }
        let r = rec.finish();
        assert_eq!(r.evaluated, 50);
        assert!(r.best.is_some());
        // History is monotone non-increasing in score, increasing in samples.
        assert!(r.history.windows(2).all(|w| w[0].best_score >= w[1].best_score));
        assert!(r.history.windows(2).all(|w| w[0].samples <= w[1].samples));
        assert_eq!(r.history.last().unwrap().best_score, r.best_score);
    }

    #[test]
    fn pareto_archive_is_nondominated() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rec = Recorder::new(&eval, Budget::samples(100));
        let mut rng = SmallRng::seed_from_u64(1);
        while !rec.done() {
            rec.evaluate(&space.random(&mut rng));
        }
        let r = rec.finish();
        assert!(!r.pareto.is_empty());
        for (i, (_, a)) in r.pareto.iter().enumerate() {
            for (j, (_, b)) in r.pareto.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "archive contains dominated point");
                }
            }
        }
        // The best-EDP point is on the frontier.
        let best_edp = r.best_score;
        let frontier_best =
            r.pareto.iter().map(|(_, c)| c.edp()).fold(f64::INFINITY, f64::min);
        assert!((frontier_best - best_edp).abs() / best_edp < 1e-12);
    }

    /// Feeds a 10k-point adversarial stream (scattered frontier builds,
    /// overlapping grids with heavy ties and exact duplicates, then a
    /// strictly improving diagonal that repeatedly sweeps the archive) and
    /// checks the sorted archive against the brute-force reference
    /// semantics the O(n²) implementation used.
    #[test]
    fn pareto_archive_matches_bruteforce_on_adversarial_stream() {
        struct Null;
        impl Evaluator for Null {
            fn evaluate(&self, _m: &Mapping) -> Option<(Cost, f64)> {
                None
            }
        }
        let (space, _) = setup();
        let mut rng = SmallRng::seed_from_u64(9);
        let m = space.random(&mut rng);
        let eval = Null;
        let mut rec = Recorder::new(&eval, Budget::samples(1_000_000));
        let mut reference: Vec<Cost> = Vec::new();
        let feed = |rec: &mut Recorder, reference: &mut Vec<Cost>, lat: f64, e: f64| {
            let c = Cost::new(lat, e);
            rec.record_outcome(&m, Some((c, c.edp())));
            if !reference.iter().any(|a| a.dominates(&c)) {
                reference.retain(|a| !c.dominates(a));
                reference.push(c);
            }
        };
        // Phase 1: a 2500-point mutually non-dominated frontier fed in a
        // scattered order, forcing insertions throughout the archive.
        for i in 0..2500usize {
            let j = ((i * 7919) % 2500) as f64;
            feed(&mut rec, &mut reference, 10.0 + j, 2510.0 - j);
        }
        // Phase 2: a coarse overlapping grid with ties and duplicates.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5000 {
            let lat = (next() % 64) as f64 * 40.0 + 5.0;
            let e = (next() % 64) as f64 * 40.0 + 5.0;
            feed(&mut rec, &mut reference, lat, e);
        }
        // Phase 3: a strictly improving diagonal; each point dominates the
        // previous one, repeatedly draining archive neighborhoods.
        for i in 0..2500usize {
            let v = (2500 - i) as f64;
            feed(&mut rec, &mut reference, v, v);
        }
        let r = rec.finish();
        assert_eq!(r.evaluated, 10_000);
        assert!(r
            .pareto
            .windows(2)
            .all(|w| w[0].1.latency_cycles <= w[1].1.latency_cycles));
        let mut got: Vec<(f64, f64)> =
            r.pareto.iter().map(|(_, c)| (c.latency_cycles, c.energy_uj)).collect();
        let mut want: Vec<(f64, f64)> =
            reference.iter().map(|c| (c.latency_cycles, c.energy_uj)).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn batch_evaluation_matches_serial_bookkeeping() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(4);
        let batch: Vec<Mapping> = (0..40).map(|_| space.random(&mut rng)).collect();
        let mut serial = Recorder::new(&eval, Budget::samples(40));
        for m in &batch {
            serial.evaluate(m);
        }
        let mut batched = Recorder::new(&eval, Budget::samples(40));
        batched.evaluate_batch(&batch);
        let (s, b) = (serial.finish(), batched.finish());
        assert_eq!(s.evaluated, b.evaluated);
        assert_eq!(s.best_score.to_bits(), b.best_score.to_bits());
        assert_eq!(s.pareto.len(), b.pareto.len());
        for (x, y) in s.pareto.iter().zip(&b.pareto) {
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn budget_by_time_stops() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rec = Recorder::new(&eval, Budget::seconds(0.05));
        let mut rng = SmallRng::seed_from_u64(2);
        while !rec.done() {
            rec.evaluate(&space.random(&mut rng));
        }
        let r = rec.finish();
        assert!(r.elapsed.as_secs_f64() < 1.0);
        assert!(r.evaluated > 0);
    }

    #[test]
    fn sample_recording_captures_features() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rec = Recorder::new(&eval, Budget::samples(10));
        rec.record_samples(true);
        let mut rng = SmallRng::seed_from_u64(3);
        while !rec.done() {
            rec.evaluate(&space.random(&mut rng));
        }
        let r = rec.finish();
        assert_eq!(r.samples.len(), 10);
        assert_eq!(r.samples[0].0.len(), mapping::features::feature_len(7, 3));
    }
}
