//! Run-level outcomes for guarded mapper executions: what a resilient
//! outer loop (see `mse::runtime`) records about each attempt, and the
//! errors that can end one. Lives next to [`SearchResult`] because a
//! [`RunOutcome`] is exactly "a `SearchResult`, or the reason there is
//! none, plus the audit trail of how we got it".

use crate::mapper::SearchResult;
use std::cmp::Ordering;
use std::fmt;
use std::time::Duration;

/// Why a guarded mapper run produced no usable result.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The mapper (or the evaluator under it) panicked; the payload
    /// message is preserved for diagnostics.
    MapperPanicked {
        /// Panic payload rendered to text (`&str`/`String` payloads; other
        /// payload types are reported as opaque).
        message: String,
    },
    /// The run finished but its best score is not a finite number — a NaN
    /// or infinite objective can't be ranked against other mappers.
    NonFiniteScore {
        /// The offending score.
        score: f64,
    },
    /// The run finished without evaluating a single legal mapping.
    NoLegalMapping,
    /// The watchdog hard-stopped the mapper after it overran its budget
    /// (plus the grace window).
    BudgetOverrun {
        /// Evaluations performed when the watchdog fired.
        evaluated: usize,
    },
    /// The evaluation guard (`costmodel::guard`) quarantined every scored
    /// mapping: the cost model produced physically impossible results, so
    /// the attempt has no trustworthy incumbent. Carries the first
    /// violation's report.
    InvariantViolation {
        /// Kebab-case invariant name (e.g. `compulsory-traffic`).
        invariant: String,
        /// Storage level for per-level invariants.
        level: Option<usize>,
        /// The value the model reported.
        observed: f64,
        /// The bound it had to satisfy.
        bound: f64,
        /// How many evaluations the guard quarantined in this attempt.
        quarantined: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MapperPanicked { message } => write!(f, "mapper panicked: {message}"),
            RunError::NonFiniteScore { score } => {
                write!(f, "run returned non-finite best score {score}")
            }
            RunError::NoLegalMapping => write!(f, "run evaluated no legal mapping"),
            RunError::BudgetOverrun { evaluated } => {
                write!(f, "watchdog stopped the mapper after {evaluated} evaluations")
            }
            RunError::InvariantViolation { invariant, level, observed, bound, quarantined } => {
                write!(f, "cost-model invariant `{invariant}` violated")?;
                if let Some(l) = level {
                    write!(f, " at level {l}")?;
                }
                write!(
                    f,
                    ": observed {observed:.6e}, bound {bound:.6e} ({quarantined} evaluation(s) quarantined)"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// One attempt of a guarded run (retries get one record each).
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Seed this attempt ran with (retries perturb the original seed).
    pub seed: u64,
    /// `Err` describes why the attempt was rejected; `Ok` means accepted.
    pub error: Option<RunError>,
    /// Cost-model evaluations the attempt consumed.
    pub evaluated: usize,
    /// Wall-clock time the attempt consumed.
    pub elapsed: Duration,
    /// Best (lowest) score the attempt saw, `INFINITY` if none.
    pub best_score: f64,
    /// Evaluations the guard quarantined for invariant violations (0 when
    /// running unguarded).
    pub quarantined: usize,
}

/// Terminal status of a guarded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// First attempt produced a usable result.
    Succeeded,
    /// A retry (with a perturbed seed) produced a usable result.
    Recovered,
    /// The watchdog hard-stopped a mapper that ignored its budget; the
    /// result (if any) is the watchdog's shadow record, truncated at the
    /// stop point.
    WatchdogStopped,
    /// Every attempt failed; `result` holds salvaged partial state if any
    /// attempt evaluated at least one legal mapping before dying.
    Failed,
}

/// Outcome of one guarded `Mapper × Evaluator` execution: the portfolio
/// and sweep unit of account. A panicking or runaway mapper yields a
/// `RunOutcome` like any other — it never takes the process down.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Display name of the mapper that ran.
    pub mapper: String,
    /// How the run ended.
    pub status: RunStatus,
    /// Every attempt, in order (length 1 when nothing went wrong).
    pub attempts: Vec<AttemptRecord>,
    /// The accepted (or salvaged) search result, if any attempt produced
    /// legal evaluations.
    pub result: Option<SearchResult>,
}

impl RunOutcome {
    /// Best score for ranking: the result's score, or `INFINITY` when the
    /// run produced nothing usable (so failed runs order last).
    pub fn best_score(&self) -> f64 {
        self.result.as_ref().map_or(f64::INFINITY, |r| r.best_score)
    }

    /// Whether the outcome carries a finite-scored result.
    pub fn is_usable(&self) -> bool {
        self.result.as_ref().is_some_and(|r| r.best_score.is_finite() && r.best.is_some())
    }

    /// Total evaluations across all attempts (the true budget spent,
    /// including failed attempts).
    pub fn total_evaluated(&self) -> usize {
        self.attempts.iter().map(|a| a.evaluated).sum()
    }
}

/// NaN-safe score ordering: finite scores first (ascending), then
/// infinities, then NaNs — so one poisoned score can never panic a sort
/// (`partial_cmp().expect(...)` was the seed-state idiom) or float to the
/// top of a portfolio ranking.
pub fn score_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_finite(), b.is_finite()) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        // total_cmp orders -NaN < -inf and +inf < +NaN; scores are
        // non-negative in practice, so NaNs land last.
        _ => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(status: RunStatus, result: Option<SearchResult>) -> RunOutcome {
        RunOutcome { mapper: "m".into(), status, attempts: Vec::new(), result }
    }

    fn result_with_score(score: f64) -> SearchResult {
        SearchResult {
            best: None,
            best_score: score,
            history: Vec::new(),
            samples: Vec::new(),
            pareto: Vec::new(),
            evaluated: 0,
            pruned: 0,
            elapsed: Duration::ZERO,
            cache: crate::mapper::CacheStats::default(),
        }
    }

    #[test]
    fn score_cmp_orders_finite_inf_nan() {
        let mut v = [f64::NAN, 2.0, f64::INFINITY, 1.0, f64::NEG_INFINITY, f64::NAN];
        v.sort_by(|a, b| score_cmp(*a, *b));
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert!(v[2].is_infinite());
        assert!(v[3].is_infinite());
        assert!(v[4].is_nan() && v[5].is_nan());
    }

    #[test]
    fn failed_outcomes_rank_last() {
        let ok = outcome(RunStatus::Succeeded, Some(result_with_score(10.0)));
        let failed = outcome(RunStatus::Failed, None);
        let poisoned = outcome(RunStatus::Succeeded, Some(result_with_score(f64::NAN)));
        let mut v = [&poisoned, &ok, &failed];
        v.sort_by(|a, b| score_cmp(a.best_score(), b.best_score()));
        assert_eq!(v[0].best_score(), 10.0);
        assert!(!failed.is_usable() && !poisoned.is_usable());
    }

    #[test]
    fn run_error_displays() {
        let e = RunError::MapperPanicked { message: "boom".into() };
        assert!(e.to_string().contains("boom"));
        assert!(RunError::NonFiniteScore { score: f64::NAN }.to_string().contains("NaN"));
        assert!(RunError::NoLegalMapping.to_string().contains("no legal"));
        let v = RunError::InvariantViolation {
            invariant: "compulsory-traffic".into(),
            level: Some(0),
            observed: 1.0,
            bound: 2.0,
            quarantined: 7,
        };
        let s = v.to_string();
        assert!(s.contains("compulsory-traffic") && s.contains("level 0"));
        assert!(s.contains("7 evaluation(s) quarantined"));
    }

    #[test]
    fn total_evaluated_sums_attempts() {
        let mut o = outcome(RunStatus::Recovered, Some(result_with_score(1.0)));
        for (i, n) in [(0u64, 40usize), (1, 60)] {
            o.attempts.push(AttemptRecord {
                seed: i,
                error: None,
                evaluated: n,
                elapsed: Duration::ZERO,
                best_score: 1.0,
                quarantined: 0,
            });
        }
        assert_eq!(o.total_evaluated(), 100);
    }
}
