//! Gamma (§4.3, Kao & Krishna ICCAD'20): the feedback-based mapper — a
//! genetic algorithm with operators specialized per mapping axis
//! (mutate-tile / mutate-order / mutate-parallelism) plus a mapping-aware
//! crossover. Each operator can be disabled individually to reproduce the
//! paper's Fig. 5 (axis sensitivity) and Fig. 6 (crossover sensitivity)
//! ablations.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use crate::nsga::{nsga2_order_costs, Selection};
use crate::operators;
use costmodel::Cost;
use mapping::{MapSpace, Mapping};
use rand::rngs::SmallRng;
use rand::Rng;

/// One scored population member.
#[derive(Debug, Clone)]
struct Indiv {
    mapping: Mapping,
    score: f64,
    cost: Option<Cost>,
}

/// Configuration of the Gamma mapper.
#[derive(Debug, Clone)]
pub struct GammaConfig {
    /// Population size per generation.
    pub population: usize,
    /// Fraction of the population kept as elites.
    pub elite_frac: f64,
    /// Enable the *mutate-tile* operator.
    pub enable_tile: bool,
    /// Enable the *mutate-order* operator.
    pub enable_order: bool,
    /// Enable the *mutate-parallelism* operator.
    pub enable_parallelism: bool,
    /// Enable crossover between elite parents.
    pub enable_crossover: bool,
    /// Probability each enabled mutation applies to a child.
    pub mutation_rate: f64,
    /// Deprecated: evaluation concurrency now comes from the evaluator
    /// stack (`Evaluator::evaluate_batch` backed by `mse::eval`'s worker
    /// pool), not from the mapper. The flag is kept for configuration
    /// compatibility and has no effect — results are bit-identical either
    /// way by construction.
    pub parallel_eval: bool,
    /// Elite-selection strategy: scalar score (default) or NSGA-II
    /// multi-objective ranking on (latency, energy) — the paper's
    /// multi-objective protocol (§4.1).
    pub selection: Selection,
    /// Record each sample's feature vector (Fig. 4 PCA harness).
    pub record_samples: bool,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            population: 50,
            elite_frac: 0.25,
            enable_tile: true,
            enable_order: true,
            enable_parallelism: true,
            enable_crossover: true,
            mutation_rate: 0.6,
            parallel_eval: false,
            selection: Selection::Scalar,
            record_samples: false,
        }
    }
}

/// The Gamma mapper.
#[derive(Debug, Clone, Default)]
pub struct Gamma {
    /// Operator configuration (ablations flip the `enable_*` flags).
    pub config: GammaConfig,
    seeds: Vec<Mapping>,
}

impl Gamma {
    /// Full-fledged Gamma: all operators enabled.
    pub fn new() -> Self {
        Gamma::default()
    }

    /// Gamma with a custom configuration.
    pub fn with_config(config: GammaConfig) -> Self {
        Gamma { config, seeds: Vec::new() }
    }

    /// Fig. 5 ablation: explore only the tile axis. Crossover is disabled
    /// too — it blends whole factor columns between parents and would leak
    /// exploration onto the other axes, masking the per-axis sensitivity.
    pub fn tile_only() -> Self {
        Gamma::with_config(GammaConfig {
            enable_order: false,
            enable_parallelism: false,
            enable_crossover: false,
            ..GammaConfig::default()
        })
    }

    /// Fig. 5 ablation: explore only the loop-order axis (no crossover;
    /// tiles and parallelization stay at their randomly initialized
    /// values, per the paper's protocol note in §4.4.2).
    pub fn order_only() -> Self {
        Gamma::with_config(GammaConfig {
            enable_tile: false,
            enable_parallelism: false,
            enable_crossover: false,
            ..GammaConfig::default()
        })
    }

    /// Fig. 5 ablation: explore only the parallelism axis (no crossover).
    pub fn parallelism_only() -> Self {
        Gamma::with_config(GammaConfig {
            enable_tile: false,
            enable_order: false,
            enable_crossover: false,
            ..GammaConfig::default()
        })
    }

    /// Fig. 6 ablation: all mutations, crossover disabled.
    pub fn no_crossover() -> Self {
        Gamma::with_config(GammaConfig { enable_crossover: false, ..GammaConfig::default() })
    }

    /// Fig. 6 ablation: crossover only, no mutations.
    pub fn crossover_only() -> Self {
        Gamma::with_config(GammaConfig {
            enable_tile: false,
            enable_order: false,
            enable_parallelism: false,
            ..GammaConfig::default()
        })
    }

    /// The warm-start seeds currently installed.
    pub fn seeds(&self) -> &[Mapping] {
        &self.seeds
    }

    fn make_child(
        &self,
        space: &MapSpace,
        parents: &[Indiv],
        rng: &mut SmallRng,
    ) -> Mapping {
        let cfg = &self.config;
        // Parents are pre-sorted best-first (by scalar score or NSGA-II
        // rank), so a binary tournament on indices works for both modes.
        let pick = |rng: &mut SmallRng| {
            let a = rng.gen_range(0..parents.len());
            let b = rng.gen_range(0..parents.len());
            a.min(b)
        };
        let mut child = if cfg.enable_crossover && parents.len() >= 2 {
            let i = pick(rng);
            let mut j = pick(rng);
            if i == j {
                j = (j + 1) % parents.len();
            }
            operators::crossover(&parents[i].mapping, &parents[j].mapping, rng)
        } else {
            parents[pick(rng)].mapping.clone()
        };
        let mut mutated = false;
        if cfg.enable_tile && rng.gen_bool(cfg.mutation_rate) {
            operators::mutate_tile(&mut child, rng);
            mutated = true;
        }
        if cfg.enable_order && rng.gen_bool(cfg.mutation_rate) {
            operators::mutate_order(&mut child, rng);
            mutated = true;
        }
        if cfg.enable_parallelism && rng.gen_bool(cfg.mutation_rate) {
            operators::mutate_parallelism(&mut child, space, rng);
            mutated = true;
        }
        // Guarantee progress when crossover is off and no mutation fired.
        if !cfg.enable_crossover && !mutated {
            if cfg.enable_tile {
                operators::mutate_tile(&mut child, rng);
            } else if cfg.enable_order {
                operators::mutate_order(&mut child, rng);
            } else if cfg.enable_parallelism {
                operators::mutate_parallelism(&mut child, space, rng);
            }
        }
        if !operators::repair(&mut child, space) {
            // Unmappable problems are rejected earlier; fall back to a
            // fresh random individual for robustness.
            child = space.random(rng);
        }
        child
    }

    fn evaluate_batch(
        &self,
        batch: &[Mapping],
        evaluator: &dyn Evaluator,
        rec: &mut Recorder<'_>,
    ) -> Vec<Indiv> {
        // Concurrency (and panic propagation with original payloads) lives
        // in the evaluator stack now: `Evaluator::evaluate_batch` is serial
        // by default and dispatches to the shared worker pool when the run
        // is configured with one (`mse::eval`). Outcomes always come back
        // in submission order, so the recording below is identical no
        // matter how many threads evaluated the batch.
        let outcomes: Vec<_> = evaluator.evaluate_batch(batch);
        batch
            .iter()
            .zip(outcomes)
            .map(|(m, out)| {
                let cost = out.as_ref().map(|(c, _)| *c);
                let score = rec.record_outcome(m, out).unwrap_or(f64::INFINITY);
                Indiv { mapping: m.clone(), score, cost }
            })
            .collect()
    }

    /// Evaluates one generation of children with admissible-bound pruning.
    ///
    /// A child whose lower bound strictly exceeds `threshold` (the worst
    /// current elite's score under scalar selection) could never rank
    /// among the elites at the next truncation — its true score is
    /// provably worse than every survivor's — so skipping its evaluation
    /// cannot change the incumbent, the best score, or any later
    /// generation. Pruned children still consume a sample
    /// ([`Recorder::try_prune`]) and enter the population with an
    /// infinite score, exactly where their true score would have ranked
    /// them: past the truncation cut.
    fn evaluate_children(
        &self,
        children: &[Mapping],
        threshold: f64,
        evaluator: &dyn Evaluator,
        rec: &mut Recorder<'_>,
    ) -> Vec<Indiv> {
        let mut pruned = vec![false; children.len()];
        let mut keep: Vec<Mapping> = Vec::with_capacity(children.len());
        for (i, m) in children.iter().enumerate() {
            if rec.try_prune(m, threshold) {
                pruned[i] = true;
            } else {
                keep.push(m.clone());
            }
        }
        let mut outcomes = evaluator.evaluate_batch(&keep).into_iter();
        children
            .iter()
            .zip(pruned)
            .map(|(m, was_pruned)| {
                if was_pruned {
                    return Indiv { mapping: m.clone(), score: f64::INFINITY, cost: None };
                }
                let out = outcomes.next().expect("one outcome per surviving child");
                let cost = out.as_ref().map(|(c, _)| *c);
                let score = rec.record_outcome(m, out).unwrap_or(f64::INFINITY);
                Indiv { mapping: m.clone(), score, cost }
            })
            .collect()
    }

    /// Sorts the population best-first under the configured selection.
    fn rank(&self, pop: &mut Vec<Indiv>) {
        match self.config.selection {
            Selection::Scalar => {
                pop.sort_by(|a, b| crate::outcome::score_cmp(a.score, b.score));
            }
            Selection::Nsga2 => {
                let costs: Vec<Option<Cost>> = pop.iter().map(|i| i.cost).collect();
                let order = nsga2_order_costs(&costs);
                let mut ranked = Vec::with_capacity(pop.len());
                for idx in order {
                    ranked.push(pop[idx].clone());
                }
                *pop = ranked;
            }
        }
    }
}

impl Mapper for Gamma {
    fn name(&self) -> &str {
        "Gamma"
    }

    fn set_seeds(&mut self, seeds: Vec<Mapping>) {
        self.seeds = seeds;
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        rec.record_samples(self.config.record_samples);
        let pop_size = self.config.population.max(4);
        let elite_count = ((pop_size as f64 * self.config.elite_frac) as usize).clamp(2, pop_size - 1);

        // Initial population: warm-start seeds (plus perturbed copies),
        // topped up with random individuals.
        let mut init: Vec<Mapping> = Vec::with_capacity(pop_size);
        for seed in &self.seeds {
            let mut s = seed.clone();
            if operators::repair(&mut s, space) && init.len() < pop_size {
                init.push(s);
            }
        }
        let seeded = init.len();
        if seeded > 0 {
            while init.len() < pop_size / 2 {
                let mut v = init[rng.gen_range(0..seeded)].clone();
                operators::mutate_tile(&mut v, rng);
                if operators::repair(&mut v, space) {
                    init.push(v);
                }
            }
        }
        while init.len() < pop_size {
            init.push(space.random(rng));
        }

        let mut pop = self.evaluate_batch(&init, evaluator, &mut rec);

        while !rec.done() {
            self.rank(&mut pop);
            pop.truncate(elite_count);
            // Bound-pruning threshold: under scalar selection the worst
            // current elite — anything provably worse can be skipped (see
            // `evaluate_children`). NSGA-II ranks on full cost vectors, so
            // pruning is disabled there (infinite threshold).
            let threshold = match self.config.selection {
                Selection::Scalar => pop.last().map_or(f64::INFINITY, |e| e.score),
                Selection::Nsga2 => f64::INFINITY,
            };
            let mut children = Vec::with_capacity(pop_size - elite_count);
            while children.len() + elite_count < pop_size {
                children.push(self.make_child(space, &pop, rng));
            }
            // Respect the budget mid-generation.
            let remaining = match budget.max_samples {
                Some(n) => n.saturating_sub(rec.evaluated()),
                None => children.len(),
            };
            children.truncate(remaining.max(1).min(children.len()));
            let scored = self.evaluate_children(&children, threshold, evaluator, &mut rec);
            pop.extend(scored);
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::EdpEvaluator;
    use crate::random::RandomMapper;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn gamma_respects_sample_budget() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = Gamma::new().search(&space, &eval, Budget::samples(300), &mut rng);
        assert!(r.evaluated <= 300 + 1, "evaluated {}", r.evaluated);
        assert!(r.best.is_some());
    }

    #[test]
    fn gamma_beats_random_at_equal_samples() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut gamma_wins = 0;
        for seed in 0..6 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let rg = Gamma::new().search(&space, &eval, Budget::samples(600), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let rr = RandomMapper::new().search(&space, &eval, Budget::samples(600), &mut rng);
            if rg.best_score < rr.best_score {
                gamma_wins += 1;
            }
        }
        assert!(gamma_wins >= 4, "gamma won only {gamma_wins}/6");
    }

    #[test]
    fn gamma_is_deterministic_per_seed() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Gamma::new().search(&space, &eval, Budget::samples(200), &mut rng).best_score
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn parallel_eval_matches_serial_results() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let cfg = GammaConfig { parallel_eval: true, ..GammaConfig::default() };
        let mut rng = SmallRng::seed_from_u64(5);
        let rp = Gamma::with_config(cfg).search(&space, &eval, Budget::samples(200), &mut rng);
        let mut rng = SmallRng::seed_from_u64(5);
        let rs = Gamma::new().search(&space, &eval, Budget::samples(200), &mut rng);
        assert_eq!(rp.best_score, rs.best_score);
    }

    #[test]
    fn seeded_start_initializes_population() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        // Seed with the best of a pre-search: the seeded run must start at
        // least as good as the seed.
        let mut rng = SmallRng::seed_from_u64(7);
        let pre = Gamma::new().search(&space, &eval, Budget::samples(400), &mut rng);
        let (seed_mapping, seed_cost) = pre.best.unwrap();
        let mut g = Gamma::new();
        g.set_seeds(vec![seed_mapping]);
        let mut rng = SmallRng::seed_from_u64(8);
        let r = g.search(&space, &eval, Budget::samples(100), &mut rng);
        assert!(
            r.best_score <= seed_cost.edp() * 1.0001,
            "seeded run ({:.3e}) worse than its seed ({:.3e})",
            r.best_score,
            seed_cost.edp()
        );
    }

    #[test]
    fn ablation_configs_disable_axes() {
        assert!(!Gamma::tile_only().config.enable_order);
        assert!(!Gamma::order_only().config.enable_tile);
        assert!(!Gamma::parallelism_only().config.enable_order);
        assert!(!Gamma::no_crossover().config.enable_crossover);
        let xo = Gamma::crossover_only().config;
        assert!(xo.enable_crossover && !xo.enable_tile && !xo.enable_order);
    }

    #[test]
    fn nsga2_selection_matches_scalar_quality_and_widens_frontier() {
        use crate::nsga::Selection;
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut scalar_edp = Vec::new();
        let mut nsga_edp = Vec::new();
        let mut scalar_front = 0usize;
        let mut nsga_front = 0usize;
        for seed in 0..4 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = Gamma::new().search(&space, &eval, Budget::samples(600), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = Gamma::with_config(GammaConfig {
                selection: Selection::Nsga2,
                ..GammaConfig::default()
            })
            .search(&space, &eval, Budget::samples(600), &mut rng);
            scalar_edp.push(s.best_score);
            nsga_edp.push(n.best_score);
            scalar_front += s.pareto.len();
            nsga_front += n.pareto.len();
        }
        // Comparable best-EDP quality (within 4x geomean either way).
        let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
        let ratio = geo(&nsga_edp) / geo(&scalar_edp);
        assert!((0.25..4.0).contains(&ratio), "NSGA-II EDP ratio {ratio:.2}");
        // Multi-objective selection maintains at least as diverse a
        // frontier on average.
        assert!(nsga_front * 2 >= scalar_front, "{nsga_front} vs {scalar_front}");
    }

    #[test]
    fn crossover_only_still_searches() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(9);
        let r = Gamma::crossover_only().search(&space, &eval, Budget::samples(300), &mut rng);
        assert!(r.best.is_some());
    }
}
