//! Policy-gradient (REINFORCE) mapper — the reinforcement-learning member
//! of the paper's feedback-based category (§3.3 cites RELEASE, ConfuciuX,
//! FlexTensor; Gamma was shown to beat RL mappers [28, 30]).
//!
//! The policy is a factored Gaussian over the continuous mapping-feature
//! embedding ([`mapping::features`]). Each step samples a batch of
//! actions, projects them to legal mappings, scores them on the cost
//! model, and ascends the score-function gradient of the expected
//! (negated, normalized log-) EDP with a moving-average baseline.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use mapping::features::{feature_len, features, mapping_from_features};
use mapping::MapSpace;
use rand::rngs::SmallRng;
use rand::Rng;

/// REINFORCE configuration.
#[derive(Debug, Clone)]
pub struct Reinforce {
    /// Actions sampled per policy update.
    pub batch: usize,
    /// Learning rate on the policy mean.
    pub lr_mean: f64,
    /// Learning rate on the policy log-std.
    pub lr_std: f64,
    /// Initial policy standard deviation.
    pub init_std: f64,
    /// Floor on the policy standard deviation.
    pub min_std: f64,
}

impl Reinforce {
    /// Defaults tuned for ~1e3-sample budgets.
    pub fn new() -> Self {
        Reinforce { batch: 20, lr_mean: 0.3, lr_std: 0.05, init_std: 2.0, min_std: 0.2 }
    }
}

impl Default for Reinforce {
    fn default() -> Self {
        Reinforce::new()
    }
}

fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Mapper for Reinforce {
    fn name(&self) -> &str {
        "REINFORCE"
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        let problem = space.problem();
        let n = feature_len(problem.num_dims(), space.arch().num_levels());
        let mut mean = features(&space.random(rng));
        let mut log_std = vec![self.init_std.ln(); n];
        let mut baseline: Option<f64> = None;

        while !rec.done() {
            // Sample a batch of actions; evaluation is deferred to one
            // batch call. Every successful projection consumes a sample
            // (legal or not), so the budget gate counts the pending batch —
            // reproducing the serial per-draw `rec.done()` check.
            let mut pending: Vec<(Vec<f64>, mapping::Mapping)> =
                Vec::with_capacity(self.batch);
            for _ in 0..self.batch {
                if rec.would_be_done(pending.len()) {
                    break;
                }
                let x: Vec<f64> =
                    (0..n).map(|i| mean[i] + log_std[i].exp() * gaussian(rng)).collect();
                if let Some(m) = mapping_from_features(problem, space.arch(), &x) {
                    pending.push((x, m));
                }
            }
            let batch: Vec<mapping::Mapping> =
                pending.iter().map(|(_, m)| m.clone()).collect();
            let scores = rec.evaluate_batch(&batch);
            // Reward: negative log score (scores span decades). Illegal
            // mappings earn no action but still consumed their sample.
            let actions: Vec<(Vec<f64>, f64)> = pending
                .into_iter()
                .zip(scores)
                .filter_map(|((x, _), s)| s.map(|score| (x, -score.max(1e-30).ln())))
                .collect();
            if actions.len() < 2 {
                continue;
            }
            let mean_r: f64 =
                actions.iter().map(|(_, r)| r).sum::<f64>() / actions.len() as f64;
            let b = *baseline.get_or_insert(mean_r);
            let std_r = (actions.iter().map(|(_, r)| (r - b) * (r - b)).sum::<f64>()
                / actions.len() as f64)
                .sqrt()
                .max(1e-6);
            // Score-function gradient with baseline, advantage-normalized.
            let mut g_mean = vec![0.0f64; n];
            let mut g_lstd = vec![0.0f64; n];
            for (x, r) in &actions {
                let adv = (r - b) / std_r;
                for i in 0..n {
                    let std = log_std[i].exp();
                    let z = (x[i] - mean[i]) / std;
                    g_mean[i] += adv * z / std;
                    g_lstd[i] += adv * (z * z - 1.0);
                }
            }
            let scale = 1.0 / actions.len() as f64;
            for i in 0..n {
                mean[i] += self.lr_mean * g_mean[i] * scale;
                log_std[i] = (log_std[i] + self.lr_std * g_lstd[i] * scale)
                    .max(self.min_std.ln());
            }
            baseline = Some(0.9 * b + 0.1 * mean_r);
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::Gamma;
    use crate::mapper::EdpEvaluator;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn reinforce_improves_and_is_deterministic() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Reinforce::new().search(&space, &eval, Budget::samples(600), &mut rng)
        };
        let r = run(0);
        assert_eq!(r.best_score, run(0).best_score);
        let first = r.history.first().unwrap().best_score;
        assert!(r.best_score < first, "no improvement over first sample");
    }

    #[test]
    fn gamma_not_worse_than_reinforce() {
        // The Gamma-beats-RL finding the paper leans on ([28, 30]).
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut wins = 0;
        for seed in 0..6 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = Gamma::new().search(&space, &eval, Budget::samples(600), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let r = Reinforce::new().search(&space, &eval, Budget::samples(600), &mut rng);
            if g.best_score <= r.best_score {
                wins += 1;
            }
        }
        assert!(wins >= 4, "gamma won only {wins}/6 vs REINFORCE");
    }
}
