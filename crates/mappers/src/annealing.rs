//! Simulated annealing over the map space — a representative of the
//! paper's "others" mapper category (§3.3 mentions MCMC-style search, e.g.
//! FlexFlow), useful as an additional single-trajectory baseline.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use crate::operators;
use mapping::{MapSpace, Mapping};
use rand::rngs::SmallRng;
use rand::Rng;

/// Simulated-annealing mapper with a geometric cooling schedule over
/// log-score differences (scores span many orders of magnitude, so the
/// Metropolis criterion works in log space).
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Initial temperature in log-score units.
    pub initial_temp: f64,
    /// Temperature the schedule reaches when the sample budget is spent; a
    /// frozen endpoint so the walk actually converges (at `1e-3`, accepting
    /// even a 1%-worse move has probability ~`exp(-10)`).
    pub final_temp: f64,
    /// Multiplicative cooling per step, used only when the budget has no
    /// sample limit (wall-clock-only budgets can't pre-compute a schedule).
    pub cooling: f64,
    /// Restart from the incumbent best after this many consecutive
    /// rejections.
    pub restart_after: usize,
}

impl SimulatedAnnealing {
    /// Default schedule: cools from `initial_temp` to `final_temp` over
    /// exactly the sample budget (the seed-state constant `cooling = 0.999`
    /// left the walk at T≈1.2 after 500 samples — still accepting
    /// 2x-worse moves >50% of the time, i.e. a random walk that lost to
    /// uniform sampling on every seed).
    pub fn new() -> Self {
        SimulatedAnnealing {
            initial_temp: 2.0,
            final_temp: 1e-3,
            cooling: 0.995,
            restart_after: 200,
        }
    }

    /// Per-step cooling factor for `budget`: geometric decay hitting
    /// [`SimulatedAnnealing::final_temp`] at the budget's last sample.
    fn cooling_for(&self, budget: &Budget) -> f64 {
        match budget.max_samples {
            Some(n) if n > 1 => {
                (self.final_temp / self.initial_temp).powf(1.0 / (n as f64 - 1.0)).min(1.0)
            }
            _ => self.cooling,
        }
    }

    fn propose(&self, m: &Mapping, space: &MapSpace, rng: &mut SmallRng) -> Mapping {
        let mut c = m.clone();
        match rng.gen_range(0..4) {
            0 | 1 => operators::mutate_tile(&mut c, rng),
            2 => operators::mutate_order(&mut c, rng),
            _ => operators::mutate_parallelism(&mut c, space, rng),
        }
        if !operators::repair(&mut c, space) {
            c = space.random(rng);
        }
        c
    }
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing::new()
    }
}

impl Mapper for SimulatedAnnealing {
    fn name(&self) -> &str {
        "Simulated-Annealing"
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        let mut current = space.random(rng);
        let mut current_score = loop {
            match rec.evaluate(&current) {
                Some(s) => break s,
                None => {
                    if rec.done() {
                        return rec.finish();
                    }
                    current = space.random(rng);
                }
            }
        };
        let mut temp = self.initial_temp;
        let cooling = self.cooling_for(&budget);
        let mut rejections = 0usize;
        let mut best = (current.clone(), current_score);

        while !rec.done() {
            let cand = self.propose(&current, space, rng);
            let Some(score) = rec.evaluate(&cand) else {
                continue;
            };
            let accept = if score <= current_score {
                true
            } else {
                let delta = (score.ln() - current_score.ln()) / temp.max(1e-9);
                rng.gen_bool((-delta).exp().clamp(0.0, 1.0))
            };
            if accept {
                current = cand;
                current_score = score;
                rejections = 0;
                if score < best.1 {
                    best = (current.clone(), score);
                }
            } else {
                rejections += 1;
                if rejections >= self.restart_after {
                    current = best.0.clone();
                    current_score = best.1;
                    rejections = 0;
                }
            }
            temp *= cooling;
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::EdpEvaluator;
    use crate::random::RandomMapper;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn annealing_improves_over_time() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = SimulatedAnnealing::new().search(&space, &eval, Budget::samples(800), &mut rng);
        let first = r.history.first().unwrap().best_score;
        assert!(r.best_score < first, "no improvement: {first} -> {}", r.best_score);
    }

    #[test]
    fn annealing_competitive_with_random() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut wins = 0;
        for seed in 0..6 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = SimulatedAnnealing::new().search(&space, &eval, Budget::samples(500), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let b = RandomMapper::new().search(&space, &eval, Budget::samples(500), &mut rng);
            if a.best_score <= b.best_score {
                wins += 1;
            }
        }
        assert!(wins >= 3, "annealing won only {wins}/6");
    }
}
