//! Genetic search operators over mappings.
//!
//! Gamma's sampling efficiency comes from operators specialized to the
//! three mapping axes (§4.4): [`mutate_tile`], [`mutate_order`],
//! [`mutate_parallelism`], and a mapping-aware [`crossover`]. The
//! non-domain-aware [`reset_dim`] / [`reset_order`] operators are what the
//! "standard GA" baseline of Fig. 6 uses instead.
//!
//! All operators preserve the per-dimension factor-product invariant by
//! construction; [`repair`] restores fanout and capacity legality
//! afterwards.

use mapping::factorization::{prime_factors, random_factorization};
use mapping::permutation::random_permutation;
use mapping::{MapSpace, Mapping};
use rand::Rng;

/// Moves one random prime factor of one dimension between two storage
/// levels' temporal factors — the paper's *mutate-tile* (the axis found most
/// impactful in Fig. 5). No-op if the picked dimension has bound 1.
pub fn mutate_tile<R: Rng + ?Sized>(m: &mut Mapping, rng: &mut R) {
    let d = m.num_dims();
    let nl = m.num_levels();
    let dim = rng.gen_range(0..d);
    // Source: a level with a non-unit temporal factor for `dim`.
    let sources: Vec<usize> =
        (0..nl).filter(|&l| m.levels()[l].temporal[dim] > 1).collect();
    if sources.is_empty() {
        return;
    }
    let src = sources[rng.gen_range(0..sources.len())];
    let primes = prime_factors(m.levels()[src].temporal[dim]);
    let p = primes[rng.gen_range(0..primes.len())];
    let mut dst = rng.gen_range(0..nl);
    if dst == src {
        dst = (dst + 1) % nl;
    }
    m.levels_mut()[src].temporal[dim] /= p;
    m.levels_mut()[dst].temporal[dim] *= p;
}

/// Swaps two positions in one level's loop order — *mutate-order*.
pub fn mutate_order<R: Rng + ?Sized>(m: &mut Mapping, rng: &mut R) {
    let d = m.num_dims();
    if d < 2 {
        return;
    }
    let nl = m.num_levels();
    let level = rng.gen_range(0..nl);
    let i = rng.gen_range(0..d);
    let mut j = rng.gen_range(0..d);
    if i == j {
        j = (j + 1) % d;
    }
    m.levels_mut()[level].order.swap(i, j);
}

/// Moves one prime factor between a level's temporal and spatial factors
/// for one dimension — *mutate-parallelism*. Promotion respects the level's
/// fanout.
pub fn mutate_parallelism<R: Rng + ?Sized>(m: &mut Mapping, space: &MapSpace, rng: &mut R) {
    let d = m.num_dims();
    let nl = m.num_levels();
    let levels: Vec<usize> = (0..nl).filter(|&l| space.arch().fanout_below(l) > 1).collect();
    if levels.is_empty() {
        return;
    }
    let level = levels[rng.gen_range(0..levels.len())];
    let dim = rng.gen_range(0..d);
    let promote = rng.gen_bool(0.5);
    if promote {
        let t = m.levels()[level].temporal[dim];
        if t <= 1 {
            return;
        }
        let primes = prime_factors(t);
        let p = primes[rng.gen_range(0..primes.len())];
        if m.levels()[level].spatial_product() * p <= space.arch().fanout_below(level) {
            m.levels_mut()[level].temporal[dim] /= p;
            m.levels_mut()[level].spatial[dim] *= p;
        }
    } else {
        let s = m.levels()[level].spatial[dim];
        if s <= 1 {
            return;
        }
        let primes = prime_factors(s);
        let p = primes[rng.gen_range(0..primes.len())];
        m.levels_mut()[level].spatial[dim] /= p;
        m.levels_mut()[level].temporal[dim] *= p;
    }
}

/// Blends two mappings (Gamma's *crossover*, Fig. 6): the child inherits
/// each dimension's whole factor column (temporal + spatial across all
/// levels) from one parent or the other, and each level's loop order from
/// one parent or the other. Column inheritance preserves the factor-product
/// invariant; call [`repair`] afterwards for fanout/capacity.
pub fn crossover<R: Rng + ?Sized>(a: &Mapping, b: &Mapping, rng: &mut R) -> Mapping {
    debug_assert_eq!(a.num_dims(), b.num_dims());
    debug_assert_eq!(a.num_levels(), b.num_levels());
    let mut child = a.clone();
    let d = a.num_dims();
    let nl = a.num_levels();
    for dim in 0..d {
        if rng.gen_bool(0.5) {
            for l in 0..nl {
                child.levels_mut()[l].temporal[dim] = b.levels()[l].temporal[dim];
                child.levels_mut()[l].spatial[dim] = b.levels()[l].spatial[dim];
            }
        }
    }
    for l in 0..nl {
        if rng.gen_bool(0.5) {
            child.levels_mut()[l].order = b.levels()[l].order.clone();
        }
    }
    child
}

/// Non-domain-aware mutation used by the standard GA baseline: resamples
/// one dimension's entire factorization uniformly at random (temporal
/// slots only; spatialization is lost for that dimension).
pub fn reset_dim<R: Rng + ?Sized>(m: &mut Mapping, space: &MapSpace, rng: &mut R) {
    let d = m.num_dims();
    let nl = m.num_levels();
    let dim = rng.gen_range(0..d);
    let split = random_factorization(rng, space.problem().bound(dim), nl);
    for (l, f) in split.into_iter().enumerate() {
        m.levels_mut()[l].temporal[dim] = f;
        m.levels_mut()[l].spatial[dim] = 1;
    }
}

/// Non-domain-aware order mutation: replaces one level's order with a fresh
/// uniformly random permutation.
pub fn reset_order<R: Rng + ?Sized>(m: &mut Mapping, rng: &mut R) {
    let d = m.num_dims();
    let nl = m.num_levels();
    let level = rng.gen_range(0..nl);
    m.levels_mut()[level].order = random_permutation(rng, d);
}

/// Restores fanout and buffer-capacity legality after operators, by
/// demoting oversized spatial factors and migrating overflowing tile
/// factors outward. Returns `false` only for unmappable problems.
#[must_use]
pub fn repair(m: &mut Mapping, space: &MapSpace) -> bool {
    use mapping::factorization::prime_factors as pf;
    for l in 0..m.num_levels() {
        let fanout = space.arch().fanout_below(l);
        while m.levels()[l].spatial_product() > fanout {
            let (dim, f) = m.levels()[l]
                .spatial
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, s)| s > 1)
                .max_by_key(|&(_, s)| s)
                .expect("over fanout implies factor > 1");
            let p = *pf(f).first().expect("factor > 1");
            m.levels_mut()[l].spatial[dim] /= p;
            m.levels_mut()[l].temporal[dim] *= p;
        }
    }
    m.repair_capacity(space.problem(), space.arch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use problem::Problem;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(Problem::conv2d("t", 4, 16, 16, 14, 14, 3, 3), Arch::accel_b())
    }

    #[test]
    fn mutations_preserve_legality_after_repair() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut m = s.random(&mut rng);
        for i in 0..500 {
            match i % 3 {
                0 => mutate_tile(&mut m, &mut rng),
                1 => mutate_order(&mut m, &mut rng),
                _ => mutate_parallelism(&mut m, &s, &mut rng),
            }
            assert!(repair(&mut m, &s));
            m.validate(s.problem(), s.arch()).unwrap_or_else(|e| panic!("step {i}: {e}"));
        }
    }

    #[test]
    fn mutate_tile_changes_tiling_eventually() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(1);
        let m0 = s.random(&mut rng);
        let mut m = m0.clone();
        let mut changed = false;
        for _ in 0..20 {
            mutate_tile(&mut m, &mut rng);
            if m != m0 {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn crossover_produces_legal_children_after_repair() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = s.random(&mut rng);
            let b = s.random(&mut rng);
            let mut c = crossover(&a, &b, &mut rng);
            assert!(repair(&mut c, &s));
            c.validate(s.problem(), s.arch()).unwrap();
        }
    }

    #[test]
    fn crossover_inherits_columns_from_parents() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(3);
        let a = s.random(&mut rng);
        let b = s.random(&mut rng);
        let c = crossover(&a, &b, &mut rng);
        for dim in 0..7 {
            let col = |m: &Mapping| -> Vec<(u64, u64)> {
                m.levels().iter().map(|l| (l.temporal[dim], l.spatial[dim])).collect()
            };
            let cc = col(&c);
            assert!(cc == col(&a) || cc == col(&b), "dim {dim} column not from a parent");
        }
    }

    #[test]
    fn reset_operators_keep_factor_products() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut m = s.random(&mut rng);
        for _ in 0..100 {
            reset_dim(&mut m, &s, &mut rng);
            reset_order(&mut m, &mut rng);
            assert!(repair(&mut m, &s));
            m.validate(s.problem(), s.arch()).unwrap();
        }
    }

    #[test]
    fn mutate_order_is_still_permutation() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut m = s.random(&mut rng);
        for _ in 0..50 {
            mutate_order(&mut m, &mut rng);
        }
        m.validate(s.problem(), s.arch()).unwrap();
    }
}
