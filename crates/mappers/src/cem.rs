//! Cross-entropy method (CEM) over the continuous mapping-feature space —
//! a representative of the paper's "other black-box optimizers" category
//! (§3.3 cites evolution strategies such as CMA-ES [17] among the
//! feedback-based family Gamma was shown to beat).
//!
//! CEM maintains a diagonal Gaussian over the feature embedding of
//! [`mapping::features`], samples a batch, projects each sample to a legal
//! mapping, and refits the Gaussian on the elite fraction.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use mapping::features::{feature_len, features, mapping_from_features};
use mapping::{MapSpace, Mapping};
use rand::rngs::SmallRng;
use rand::Rng;

/// Cross-entropy method configuration.
#[derive(Debug, Clone)]
pub struct CrossEntropy {
    /// Samples per iteration.
    pub batch: usize,
    /// Fraction of the batch refit as elites.
    pub elite_frac: f64,
    /// Initial per-feature standard deviation.
    pub init_std: f64,
    /// Lower bound on the standard deviation (keeps exploration alive).
    pub min_std: f64,
    /// Smoothing factor for mean/std updates (1.0 = replace).
    pub alpha: f64,
}

impl CrossEntropy {
    /// Defaults tuned for ~1e3-sample budgets.
    pub fn new() -> Self {
        CrossEntropy { batch: 40, elite_frac: 0.2, init_std: 2.0, min_std: 0.15, alpha: 0.7 }
    }
}

impl Default for CrossEntropy {
    fn default() -> Self {
        CrossEntropy::new()
    }
}

fn gaussian(rng: &mut SmallRng) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Mapper for CrossEntropy {
    fn name(&self) -> &str {
        "Cross-Entropy"
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        let problem = space.problem();
        let n = feature_len(problem.num_dims(), space.arch().num_levels());

        // Initialize the distribution on a random legal mapping.
        let mut mean = features(&space.random(rng));
        let mut std = vec![self.init_std; n];
        let elite_count = ((self.batch as f64 * self.elite_frac) as usize).max(2);

        while !rec.done() {
            // Sampling and projection touch only the rng; evaluation is
            // deferred to one batch call. Only successful projections
            // consume samples, so the budget check counts the pending
            // batch — reproducing the serial per-draw `rec.done()` gate.
            let mut pending: Vec<Mapping> = Vec::with_capacity(self.batch);
            for _ in 0..self.batch {
                if rec.would_be_done(pending.len()) {
                    break;
                }
                let x: Vec<f64> = (0..n)
                    .map(|i| mean[i] + std[i] * gaussian(rng))
                    .collect();
                if let Some(m) = mapping_from_features(problem, space.arch(), &x) {
                    pending.push(m);
                }
            }
            let scores = rec.evaluate_batch(&pending);
            // Refit on the *projected* (legal) points: the distribution
            // then tracks the feasible manifold.
            let mut scored: Vec<(Vec<f64>, f64)> = pending
                .iter()
                .zip(scores)
                .map(|(m, s)| (features(m), s.unwrap_or(f64::INFINITY)))
                .collect();
            if scored.len() < elite_count {
                continue;
            }
            scored.sort_by(|a, b| crate::outcome::score_cmp(a.1, b.1));
            let elites = &scored[..elite_count];
            for i in 0..n {
                let em: f64 =
                    elites.iter().map(|(x, _)| x[i]).sum::<f64>() / elite_count as f64;
                let ev: f64 = elites
                    .iter()
                    .map(|(x, _)| (x[i] - em) * (x[i] - em))
                    .sum::<f64>()
                    / elite_count as f64;
                mean[i] = self.alpha * em + (1.0 - self.alpha) * mean[i];
                let new_std = ev.sqrt().max(self.min_std);
                std[i] = self.alpha * new_std + (1.0 - self.alpha) * std[i];
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::EdpEvaluator;
    use crate::random::RandomMapper;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn cem_improves_and_is_deterministic() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            CrossEntropy::new().search(&space, &eval, Budget::samples(600), &mut rng)
        };
        let r = run(0);
        assert_eq!(r.best_score, run(0).best_score);
        let first = r.history.first().unwrap().best_score;
        assert!(r.best_score < first, "no improvement");
    }

    #[test]
    fn cem_not_worse_than_random() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut wins = 0;
        for seed in 0..6 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let c = CrossEntropy::new().search(&space, &eval, Budget::samples(600), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let r = RandomMapper::new().search(&space, &eval, Budget::samples(600), &mut rng);
            if c.best_score <= r.best_score {
                wins += 1;
            }
        }
        assert!(wins >= 3, "CEM won only {wins}/6 vs random");
    }
}
