//! Standard (non-domain-aware) genetic algorithm — the Fig. 6 baseline
//! that full Gamma beats by roughly an order of magnitude.
//!
//! Unlike Gamma, which manipulates mappings through operators that keep
//! the per-dimension factor products valid by construction, this GA works
//! on a *naive flat genome*: one independent divisor choice per
//! (dimension, level) for tiles and spatial factors, plus per-level order
//! permutations. Crossover is a single-point cut of the flat gene vector
//! and mutation is a random gene reset. Decoded genomes frequently violate
//! the factor-product constraint; the only repair available is the naive
//! one (absorb the residual into the outermost level when divisible,
//! otherwise the sample is wasted as illegal) — which is exactly why
//! domain operators matter (§4.4).

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use mapping::factorization::divisors;
use mapping::permutation::random_permutation;
use mapping::{LevelMapping, MapSpace, Mapping};
use rand::rngs::SmallRng;
use rand::Rng;

/// Flat genome: independent divisor indices per (dim, level).
#[derive(Debug, Clone)]
struct Genome {
    /// Temporal divisor index per dim (outer) per level (inner).
    t: Vec<Vec<usize>>,
    /// Spatial divisor index per dim per level.
    s: Vec<Vec<usize>>,
    /// Loop order per level.
    orders: Vec<Vec<usize>>,
}

impl Genome {
    /// A feasible starting genome: everything at the outermost level
    /// (gene index 0 = factor 1 everywhere), random loop orders. The GA
    /// explores from here via mutation and crossover.
    fn seed(space: &MapSpace, rng: &mut SmallRng) -> Self {
        let d = space.problem().num_dims();
        let nl = space.arch().num_levels();
        Genome {
            t: vec![vec![0; nl]; d],
            s: vec![vec![0; nl]; d],
            orders: (0..nl).map(|_| random_permutation(rng, d)).collect(),
        }
    }

    /// Naive decode: take the gene factors verbatim, absorb the residual
    /// into the outermost temporal factor if (and only if) it divides
    /// evenly; otherwise the genome is illegal.
    fn decode(&self, space: &MapSpace, divs: &[Vec<u64>]) -> Option<Mapping> {
        let problem = space.problem();
        let d = problem.num_dims();
        let nl = space.arch().num_levels();
        let mut levels: Vec<LevelMapping> = (0..nl).map(|_| LevelMapping::unit(d)).collect();
        for dim in 0..d {
            let mut inner_product = 1u64;
            for l in 0..nl {
                let tf = divs[dim][self.t[dim][l]];
                let sf = divs[dim][self.s[dim][l]];
                levels[l].temporal[dim] = tf;
                levels[l].spatial[dim] = sf;
                if l > 0 {
                    inner_product = inner_product.checked_mul(tf * sf)?;
                } else {
                    inner_product = inner_product.checked_mul(sf)?;
                }
            }
            let bound = problem.bound(dim);
            if inner_product == 0 || !bound.is_multiple_of(inner_product) {
                return None;
            }
            levels[0].temporal[dim] = bound / inner_product;
        }
        for (l, o) in self.orders.iter().enumerate() {
            levels[l].order = o.clone();
        }
        let m = Mapping::new(levels);
        // Fanout/capacity violations are also simply illegal for the naive
        // GA (no domain-aware repair).
        m.validate(problem, space.arch()).ok()?;
        Some(m)
    }

    fn mutate(&mut self, divs: &[Vec<u64>], rng: &mut SmallRng) {
        let d = self.t.len();
        let nl = self.t[0].len();
        match rng.gen_range(0..3) {
            0 => {
                let dim = rng.gen_range(0..d);
                let l = rng.gen_range(0..nl);
                self.t[dim][l] = rng.gen_range(0..divs[dim].len());
            }
            1 => {
                let dim = rng.gen_range(0..d);
                let l = rng.gen_range(0..nl);
                self.s[dim][l] = rng.gen_range(0..divs[dim].len());
            }
            _ => {
                let l = rng.gen_range(0..nl);
                self.orders[l] = random_permutation(rng, d);
            }
        }
    }

    /// Single-point crossover over the flattened (dim-major) gene vector.
    fn crossover(a: &Genome, b: &Genome, rng: &mut SmallRng) -> Genome {
        let d = a.t.len();
        let nl = a.t[0].len();
        let total = d * nl * 2;
        let cut = rng.gen_range(0..=total);
        let mut child = a.clone();
        let mut idx = 0usize;
        for dim in 0..d {
            for l in 0..nl {
                if idx >= cut {
                    child.t[dim][l] = b.t[dim][l];
                }
                idx += 1;
                if idx >= cut {
                    child.s[dim][l] = b.s[dim][l];
                }
                idx += 1;
            }
        }
        for l in 0..nl {
            if rng.gen_bool(0.5) {
                child.orders[l] = b.orders[l].clone();
            }
        }
        child
    }
}

/// The standard-GA baseline mapper.
#[derive(Debug, Clone)]
pub struct StandardGa {
    /// Population size per generation.
    pub population: usize,
    /// Fraction kept as elites.
    pub elite_frac: f64,
    /// Per-child mutation probability.
    pub mutation_rate: f64,
}

impl StandardGa {
    /// Default-configured standard GA (same population shape as Gamma).
    pub fn new() -> Self {
        StandardGa { population: 50, elite_frac: 0.25, mutation_rate: 0.6 }
    }
}

impl Default for StandardGa {
    fn default() -> Self {
        StandardGa::new()
    }
}

impl Mapper for StandardGa {
    fn name(&self) -> &str {
        "Standard-GA"
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        let problem = space.problem();
        let divs: Vec<Vec<u64>> =
            (0..problem.num_dims()).map(|d| divisors(problem.bound(d))).collect();
        let pop_size = self.population.max(4);
        let elite_count =
            ((pop_size as f64 * self.elite_frac) as usize).clamp(2, pop_size - 1);

        let trivial = Mapping::trivial(problem, space.arch());
        // Scores one generation of genomes through a single
        // `Evaluator::evaluate_batch` call, recording every outcome in
        // generation order: legal decodes get their batched result, illegal
        // decodes still consume a sample (the naive GA pays for its
        // constraint-blindness) exactly where the serial loop charged them.
        // `threshold` additionally bound-prunes legal decodes: a child whose
        // admissible lower bound strictly exceeds the worst current elite
        // can neither survive the next truncation nor improve the incumbent
        // (its true score is provably worse than every elite's), so it
        // consumes its sample via [`Recorder::try_prune`] and enters the
        // population with an infinite score — exactly where its true score
        // would have ranked it.
        let score_batch = |genomes: Vec<Genome>,
                           threshold: f64,
                           rec: &mut Recorder<'_>|
         -> Vec<(Genome, f64)> {
            let decoded: Vec<Option<Mapping>> =
                genomes.iter().map(|g| g.decode(space, &divs)).collect();
            let mut pruned = vec![false; decoded.len()];
            let mut legal: Vec<Mapping> = Vec::with_capacity(decoded.len());
            for (i, d) in decoded.iter().enumerate() {
                if let Some(m) = d {
                    if rec.try_prune(m, threshold) {
                        pruned[i] = true;
                    } else {
                        legal.push(m.clone());
                    }
                }
            }
            let outs = evaluator.evaluate_batch(&legal);
            let mut pending = legal.iter().zip(outs);
            genomes
                .into_iter()
                .zip(decoded.into_iter().zip(pruned))
                .map(|(g, (d, was_pruned))| {
                    let s = match d {
                        Some(_) if was_pruned => f64::INFINITY,
                        Some(_) => {
                            let (m, out) = pending.next().expect("one outcome per legal decode");
                            rec.record_outcome(m, out).unwrap_or(f64::INFINITY)
                        }
                        None => {
                            rec.record_outcome(&trivial, None);
                            f64::INFINITY
                        }
                    };
                    (g, s)
                })
                .collect()
        };

        // Genome construction touches only the rng, never the evaluator, so
        // building the whole generation first and evaluating it as a batch
        // preserves the serial rng stream bit for bit.
        let genomes: Vec<Genome> = (0..pop_size)
            .map(|_| {
                let mut g = Genome::seed(space, rng);
                // Light random diversification of the initial population.
                for _ in 0..3 {
                    g.mutate(&divs, rng);
                }
                g
            })
            .collect();
        let mut pop: Vec<(Genome, f64)> = score_batch(genomes, f64::INFINITY, &mut rec);

        while !rec.done() {
            pop.sort_by(|a, b| crate::outcome::score_cmp(a.1, b.1));
            pop.truncate(elite_count);
            let threshold = pop.last().map_or(f64::INFINITY, |e| e.1);
            // Each child consumes exactly one sample (legal or not), so
            // capping the brood at the remaining sample budget reproduces
            // the serial per-child `rec.done()` check.
            let k = rec.batch_room(pop_size - elite_count);
            let mut children = Vec::with_capacity(k);
            for _ in 0..k {
                let i = rng.gen_range(0..pop.len().min(elite_count));
                let j = rng.gen_range(0..pop.len().min(elite_count));
                let mut child = Genome::crossover(&pop[i].0, &pop[j].0, rng);
                if rng.gen_bool(self.mutation_rate) {
                    child.mutate(&divs, rng);
                }
                children.push(child);
            }
            pop.extend(score_batch(children, threshold, &mut rec));
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::Gamma;
    use crate::mapper::EdpEvaluator;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn standard_ga_runs_and_improves() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = StandardGa::new().search(&space, &eval, Budget::samples(600), &mut rng);
        assert!(r.best.is_some());
        assert!(r.history.len() >= 2, "no improvements recorded");
    }

    #[test]
    fn decoded_genomes_are_legal_mappings() {
        let (space, _) = setup();
        let divs: Vec<Vec<u64>> =
            (0..7).map(|d| divisors(space.problem().bound(d))).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let seed = Genome::seed(&space, &mut rng);
        assert!(seed.decode(&space, &divs).is_some(), "seed genome must decode");
        // Children one-to-three mutations away from a feasible parent (the
        // GA's actual operating regime): some decode, some are wasted.
        let mut decoded = 0;
        for _ in 0..500 {
            let mut g = seed.clone();
            for _ in 0..3 {
                g.mutate(&divs, &mut rng);
            }
            if let Some(m) = g.decode(&space, &divs) {
                m.validate(space.problem(), space.arch()).unwrap();
                decoded += 1;
            }
        }
        assert!(decoded > 10, "only {decoded}/500 decodable");
        assert!(decoded < 490, "naive GA should waste some samples");
    }

    #[test]
    fn gamma_clearly_beats_standard_ga() {
        // Fig. 6: full Gamma's domain operators dominate standard GA.
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let mut wins = 0;
        for seed in 0..6 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = Gamma::new().search(&space, &eval, Budget::samples(500), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = StandardGa::new().search(&space, &eval, Budget::samples(500), &mut rng);
            if g.best_score <= s.best_score {
                wins += 1;
            }
        }
        assert!(wins >= 5, "gamma won only {wins}/6 vs standard GA");
    }
}
