//! DOSA-style differentiable one-loop mapper: gradient descent *directly
//! through* the smooth relaxation of the analytical cost model
//! ([`costmodel::smooth`]) — no surrogate network, no training set.
//!
//! The search state is a continuous feature vector (per level, per dim:
//! log2 temporal factor, log2 spatial factor, normalized loop position).
//! Each round takes several reverse-mode gradient steps on relaxed
//! `ln EDP` with a step-size backoff line search, projects the iterate onto
//! the legal integer lattice (`mapping_from_features`), and exactly
//! re-costs the rounded candidate plus a small gradient-guided projection
//! neighborhood through the evaluator — batched via
//! [`Evaluator::evaluate_neighbors`] so the delta engine reuses the parent
//! analysis, with admissible-bound pruning against the incumbent. Only
//! these exact evaluations consume budget; smooth gradient queries are
//! free, which is what makes the method dominate at small sample budgets.
//!
//! Two details keep the descent honest:
//!
//! * **Feasibility projection**: unconstrained descent on traffic collapses
//!   every factor toward 1 (MACs are constant, traffic shrinks), so after
//!   each step the per-dimension log factors are renormalized to sum to
//!   `log2(bound)` and per-level spatial sums are folded back under the
//!   fanout (excess moved to the same dim's temporal factor).
//! * **Exploration noise**: the relaxation is *exact* on the lattice, which
//!   means its order-position gates are flat there (zero gradient). Small
//!   annealed noise moves the iterate into the gate interiors where order
//!   gradients flow, and multi-restart covers distinct order basins.

use crate::mapper::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use costmodel::SmoothContext;
use mapping::features::{features, mapping_from_features};
use mapping::{MapSpace, Mapping};
use rand::rngs::SmallRng;
use rand::Rng;

/// DOSA hyper-parameters.
#[derive(Debug, Clone)]
pub struct DosaConfig {
    /// Initial step size (feature space is log2 factors / unit positions).
    pub lr: f64,
    /// Step-size decay on a rejected (non-improving) smooth step.
    pub backoff: f64,
    /// Step-size growth on an accepted step (capped at 4x the initial lr).
    pub grow: f64,
    /// Step size below which the trajectory is considered converged.
    pub min_lr: f64,
    /// Smooth gradient steps between consecutive lattice projections.
    pub inner_steps: usize,
    /// Extra rounded candidates per projection, jittered along the largest
    /// gradient coordinates (exact-costed through the delta path).
    pub neighborhood: usize,
    /// Projection rounds without exact-cost improvement before restarting
    /// from a fresh point.
    pub restart_patience: usize,
    /// Amplitude of the annealed exploration noise.
    pub noise: f64,
    /// Record evaluated samples' features (Fig. 4 PCA harness).
    pub record_samples: bool,
}

impl Default for DosaConfig {
    fn default() -> Self {
        DosaConfig {
            lr: 0.4,
            backoff: 0.6,
            grow: 1.25,
            min_lr: 1e-3,
            inner_steps: 12,
            neighborhood: 4,
            restart_patience: 4,
            noise: 0.12,
            record_samples: false,
        }
    }
}

/// The DOSA mapper (differentiable one-loop search).
#[derive(Debug, Clone, Default)]
pub struct Dosa {
    /// Search configuration.
    pub config: DosaConfig,
    seeds: Vec<Mapping>,
}

impl Dosa {
    /// A DOSA mapper with default configuration.
    pub fn new() -> Self {
        Dosa::default()
    }

    /// Projects an iterate back onto (the continuous hull of) the feasible
    /// set: non-negative log factors, per-dim factor products matching the
    /// problem bounds, per-level spatial products within the fanout, and
    /// positions in [0, 1].
    fn project_feasible(space: &MapSpace, x: &mut [f64]) {
        let problem = space.problem();
        let arch = space.arch();
        let d = problem.num_dims();
        let nl = arch.num_levels();
        let idx = |li: usize, dim: usize, k: usize| (li * d + dim) * 3 + k;
        for dim in 0..d {
            let mut total = 0.0;
            for li in 0..nl {
                for k in 0..2 {
                    let v = &mut x[idx(li, dim, k)];
                    *v = v.clamp(0.0, 16.0);
                    total += *v;
                }
            }
            let target = (problem.bound(dim) as f64).log2();
            if total > 1e-9 {
                let s = target / total;
                for li in 0..nl {
                    x[idx(li, dim, 0)] *= s;
                    x[idx(li, dim, 1)] *= s;
                }
            } else {
                // Degenerate iterate: park the whole dimension at DRAM.
                x[idx(0, dim, 0)] = target;
            }
        }
        for li in 0..nl {
            let cap = (arch.fanout_below(li) as f64).log2();
            let ssum: f64 = (0..d).map(|dim| x[idx(li, dim, 1)]).sum();
            if ssum > cap {
                // Demote the excess to temporal, preserving per-dim totals.
                let keep = if ssum > 1e-12 { cap / ssum } else { 0.0 };
                for dim in 0..d {
                    let s = x[idx(li, dim, 1)];
                    x[idx(li, dim, 1)] = s * keep;
                    x[idx(li, dim, 0)] += s * (1.0 - keep);
                }
            }
            for dim in 0..d {
                let p = &mut x[idx(li, dim, 2)];
                *p = p.clamp(0.0, 1.0);
            }
        }
    }

    /// Rounds `x` and a gradient-guided jitter neighborhood to legal
    /// mappings, exact-costs them (bound-pruned, delta-batched), and
    /// returns the round's incumbent-improving mapping, if any.
    fn project_and_cost(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        rec: &mut Recorder,
        x: &[f64],
        g: &[f64],
        rng: &mut SmallRng,
    ) -> Option<Mapping> {
        let problem = space.problem();
        let arch = space.arch();
        let m0 = mapping_from_features(problem, arch, x)?;
        let mut cands: Vec<Mapping> = vec![m0.clone()];
        // Jitter the highest-|gradient| coordinates by half a step in the
        // descent direction: the rounding that hurt most is the one the
        // smooth model most wants changed.
        let mut order: Vec<usize> = (0..x.len()).collect();
        order.sort_by(|&a, &b| {
            g[b].abs().partial_cmp(&g[a].abs()).unwrap_or(std::cmp::Ordering::Equal)
        });
        for &ci in order.iter().take(self.config.neighborhood) {
            let mut xi = x.to_vec();
            xi[ci] -= 0.5 * g[ci].signum();
            Self::project_feasible(space, &mut xi);
            if let Some(m) = mapping_from_features(problem, arch, &xi) {
                if !cands.contains(&m) {
                    cands.push(m);
                }
            }
        }
        // Domain-operator variants of the rounded point. The feature
        // round-trip factors spatial targets into divisors, which underfills
        // the fanout on awkward bounds (parallelizing a 7 or a 3 wastes
        // lanes); the parallelism/tile operators redistribute factors in
        // moves the rounding cannot express.
        for k in 0..2u32 {
            let mut m = m0.clone();
            match k {
                0 => crate::operators::mutate_parallelism(&mut m, space, rng),
                _ => crate::operators::mutate_tile(&mut m, rng),
            }
            if crate::operators::repair(&mut m, space) && !cands.contains(&m) {
                cands.push(m);
            }
        }
        let mut batch: Vec<Mapping> = Vec::with_capacity(cands.len());
        for m in cands {
            if rec.would_be_done(batch.len()) {
                break;
            }
            if !rec.try_prune(&m, rec.best_score()) {
                batch.push(m);
            }
        }
        let mut improved: Option<Mapping> = None;
        if !batch.is_empty() {
            let outs = evaluator.evaluate_neighbors(&m0, &batch);
            for (m, out) in batch.iter().zip(outs) {
                let prior = rec.best_score();
                if let Some(score) = rec.record_outcome(m, out) {
                    if score < prior {
                        improved = Some(m.clone());
                    }
                }
            }
        }
        improved
    }
}

impl Mapper for Dosa {
    fn name(&self) -> &str {
        "DOSA"
    }

    fn set_seeds(&mut self, seeds: Vec<Mapping>) {
        self.seeds = seeds;
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        rec.record_samples(self.config.record_samples);
        let cfg = &self.config;
        // The relaxation is the *search heuristic*; exact scoring always
        // goes through the evaluator, so a dense relaxation remains sound
        // (if not perfectly informed) under sparse evaluators.
        let sctx = SmoothContext::dense(space.problem(), space.arch());
        let mut tape = costmodel::smooth::Tape::new();
        let total = budget.max_samples.unwrap_or(2_000) as f64;

        let mut restart = 0usize;
        // Features of the best exact mapping found so far: the basin-hop
        // anchor for alternate restarts.
        let mut incumbent: Option<Vec<f64>> = None;
        while !rec.done() {
            // Restart point: seeds first (warm start), then alternate
            // between fresh random draws (global coverage) and large kicks
            // off the incumbent (basin hopping — the winning basin's
            // neighbors tend to hold the refinements a single descent
            // rounds past).
            let mut x = match self.seeds.get(restart) {
                Some(s) => features(s),
                None => match &incumbent {
                    Some(f) if restart % 2 == 1 => {
                        let mut x = f.clone();
                        for v in &mut x {
                            *v += rng.gen_range(-1.0..1.0);
                        }
                        x
                    }
                    _ => features(&space.random(rng)),
                },
            };
            restart += 1;
            Self::project_feasible(space, &mut x);
            let (c0, mut g) = sctx.cost_and_grad_with(&x, &mut tape);
            let mut cur_obj = c0.edp().ln();
            let mut stall = 0usize;

            while !rec.done() && stall < cfg.restart_patience {
                // Smooth descent with step-size backoff (budget-free). The
                // step size resets each round: the backoff is a per-round
                // line search, not a global annealing schedule — a round
                // that converged to a basin floor should not doom the next
                // round (post-projection, a different point) to tiny steps.
                let mut lr = cfg.lr;
                let progress = (rec.evaluated() as f64 / total).min(1.0);
                let noise = cfg.noise * (1.0 - progress);
                for _ in 0..cfg.inner_steps.max(1) {
                    let gmax = g.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-12);
                    let mut cand: Vec<f64> = x
                        .iter()
                        .zip(&g)
                        .map(|(xi, gi)| {
                            let mut v = xi - lr * gi / gmax;
                            if noise > 0.0 {
                                v += rng.gen_range(-noise..noise);
                            }
                            v
                        })
                        .collect();
                    Self::project_feasible(space, &mut cand);
                    let (c2, g2) = sctx.cost_and_grad_with(&cand, &mut tape);
                    let obj2 = c2.edp().ln();
                    if obj2.is_finite() && obj2 < cur_obj {
                        x = cand;
                        cur_obj = obj2;
                        g = g2;
                        lr = (lr * cfg.grow).min(cfg.lr * 4.0);
                    } else {
                        lr *= cfg.backoff;
                        if lr < cfg.min_lr {
                            break;
                        }
                    }
                }
                // Lattice projection + exact re-cost (budget-charged).
                match self.project_and_cost(space, evaluator, &mut rec, &x, &g, rng) {
                    Some(best) => {
                        stall = 0;
                        incumbent = Some(features(&best));
                    }
                    None => stall += 1,
                }
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::EdpEvaluator;
    use crate::random::RandomMapper;
    use arch::Arch;
    use costmodel::DenseModel;
    use problem::Problem;
    use rand::SeedableRng;

    fn setup(p: Problem) -> (MapSpace, DenseModel) {
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn respects_sample_budget_and_finds_legal_best() {
        let (space, model) = setup(Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3));
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = Dosa::new().search(&space, &eval, Budget::samples(80), &mut rng);
        assert!(r.evaluated <= 80, "evaluated {}", r.evaluated);
        let (m, c) = r.best.expect("found something");
        assert!(m.is_legal(space.problem(), space.arch()));
        assert!(c.edp().is_finite());
    }

    #[test]
    fn beats_random_at_small_budgets() {
        let (space, model) = setup(Problem::gemm("g", 2, 32, 64, 32));
        let eval = EdpEvaluator::new(&model);
        let mut wins = 0;
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = Dosa::new().search(&space, &eval, Budget::samples(120), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let r = RandomMapper::new().search(&space, &eval, Budget::samples(120), &mut rng);
            if d.best_score <= r.best_score {
                wins += 1;
            }
        }
        assert!(wins >= 4, "dosa won only {wins}/5 vs random at 120 samples");
    }

    #[test]
    fn seeded_start_is_used() {
        let (space, model) = setup(Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3));
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(1);
        let seed_m = space.random(&mut rng);
        let mut d = Dosa::new();
        d.set_seeds(vec![seed_m.clone()]);
        let mut rng = SmallRng::seed_from_u64(2);
        let r = d.search(&space, &eval, Budget::samples(30), &mut rng);
        assert!(r.best.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let (space, model) = setup(Problem::gemm("g", 2, 16, 32, 16));
        let eval = EdpEvaluator::new(&model);
        let runs: Vec<f64> = (0..2)
            .map(|_| {
                let mut rng = SmallRng::seed_from_u64(7);
                Dosa::new().search(&space, &eval, Budget::samples(60), &mut rng).best_score
            })
            .collect();
        assert_eq!(runs[0].to_bits(), runs[1].to_bits());
    }
}
