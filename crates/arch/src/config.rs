//! Buffer-hierarchy configuration types.

use std::fmt;

/// Error returned by [`Arch::validate`] / [`Arch::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The hierarchy has no levels.
    Empty,
    /// A non-outermost level has unbounded capacity.
    UnboundedInnerLevel(usize),
    /// A level declares a zero fanout.
    ZeroFanout(usize),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::Empty => write!(f, "architecture has no storage levels"),
            ArchError::UnboundedInnerLevel(i) => {
                write!(f, "inner storage level {i} must have finite capacity")
            }
            ArchError::ZeroFanout(i) => write!(f, "storage level {i} has zero fanout"),
        }
    }
}

impl std::error::Error for ArchError {}

/// One storage level of the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct MemLevel {
    /// Display name ("DRAM", "GlobalBuffer", "LocalBuffer").
    pub name: String,
    /// Capacity in *words* per instance; `None` means unbounded (DRAM only).
    pub capacity_words: Option<u64>,
    /// How many instances of the next-inner level (or ALUs, for the
    /// innermost level) one instance of this level feeds. This is the
    /// spatial fanout available to the mapping's parallelization axis at
    /// this level boundary.
    pub fanout: u64,
    /// Energy per word accessed (read or write), in pJ.
    pub energy_per_access: f64,
    /// Sustained bandwidth in words per cycle, per instance.
    pub bandwidth: f64,
}

impl MemLevel {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        capacity_words: Option<u64>,
        fanout: u64,
        energy_per_access: f64,
        bandwidth: f64,
    ) -> Self {
        MemLevel { name: name.into(), capacity_words, fanout, energy_per_access, bandwidth }
    }
}

/// A complete accelerator configuration: the storage hierarchy (outermost
/// first) plus compute-datapath parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Arch {
    name: String,
    levels: Vec<MemLevel>,
    /// Energy of one multiply-accumulate, in pJ.
    pub mac_energy: f64,
    /// Word width in bytes (capacities in bytes divide by this).
    pub word_bytes: u64,
}

impl Arch {
    /// Creates and validates an architecture.
    ///
    /// # Errors
    ///
    /// Returns an error if the hierarchy is empty, an inner level is
    /// unbounded, or any fanout is zero.
    pub fn new(
        name: impl Into<String>,
        levels: Vec<MemLevel>,
        mac_energy: f64,
        word_bytes: u64,
    ) -> Result<Self, ArchError> {
        let arch = Arch { name: name.into(), levels, mac_energy, word_bytes };
        arch.validate()?;
        Ok(arch)
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// See [`Arch::new`].
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.levels.is_empty() {
            return Err(ArchError::Empty);
        }
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 && l.capacity_words.is_none() {
                return Err(ArchError::UnboundedInnerLevel(i));
            }
            if l.fanout == 0 {
                return Err(ArchError::ZeroFanout(i));
            }
        }
        Ok(())
    }

    /// The paper's Accel-A (Table 1): 512 KB shared buffer, 64 KB private
    /// buffer per PE, 256 PEs, 1 ALU per PE. This is the configuration the
    /// Mind Mappings surrogate is trained on.
    pub fn accel_a() -> Self {
        let word = 2u64; // 16-bit datapath
        Arch::new(
            "Accel-A",
            vec![
                MemLevel::new("DRAM", None, 1, 200.0, 16.0),
                MemLevel::new("GlobalBuffer", Some(512 * 1024 / word), 256, 13.5, 64.0),
                MemLevel::new("LocalBuffer", Some(64 * 1024 / word), 1, 6.0, 4.0),
            ],
            1.0,
            word,
        )
        .expect("preset is valid")
    }

    /// The paper's Accel-B (Table 1): 64 KB shared buffer, 256 B private
    /// buffer per PE, 256 PEs, 4 ALUs per PE. Unseen by the surrogate.
    pub fn accel_b() -> Self {
        let word = 2u64;
        Arch::new(
            "Accel-B",
            vec![
                MemLevel::new("DRAM", None, 1, 200.0, 16.0),
                MemLevel::new("GlobalBuffer", Some(64 * 1024 / word), 256, 6.0, 64.0),
                MemLevel::new("LocalBuffer", Some(256 / word), 4, 0.6, 4.0),
            ],
            1.0,
            word,
        )
        .expect("preset is valid")
    }

    /// Configuration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The storage levels, outermost (DRAM) first.
    pub fn levels(&self) -> &[MemLevel] {
        &self.levels
    }

    /// Number of storage levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level(&self, i: usize) -> &MemLevel {
        &self.levels[i]
    }

    /// Number of instances of level `i` in the whole chip: the product of
    /// the fanouts of all outer levels. Level 0 always has one instance.
    pub fn instances(&self, i: usize) -> u64 {
        self.levels[..i].iter().map(|l| l.fanout).product()
    }

    /// Total spatial multiply lanes: the product of all fanouts (PEs × ALUs
    /// for the presets).
    pub fn total_spatial_lanes(&self) -> u64 {
        self.levels.iter().map(|l| l.fanout).product()
    }

    /// Spatial fanout available at the boundary below level `i` (between
    /// level `i` and level `i+1`, or the ALUs for the innermost level).
    pub fn fanout_below(&self, i: usize) -> u64 {
        self.levels[i].fanout
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for (i, l) in self.levels.iter().enumerate() {
            let cap = match l.capacity_words {
                Some(w) => format!("{} B", w * self.word_bytes),
                None => "inf".to_string(),
            };
            writeln!(
                f,
                "  L{i} {:<14} cap={cap:<10} fanout={:<4} e={:.2} pJ/word bw={} w/cyc",
                l.name, l.fanout, l.energy_per_access, l.bandwidth
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let a = Arch::accel_a();
        assert_eq!(a.level(1).capacity_words, Some(512 * 1024 / 2));
        assert_eq!(a.level(2).capacity_words, Some(64 * 1024 / 2));
        assert_eq!(a.level(1).fanout, 256);
        assert_eq!(a.level(2).fanout, 1);
        let b = Arch::accel_b();
        assert_eq!(b.level(1).capacity_words, Some(64 * 1024 / 2));
        assert_eq!(b.level(2).capacity_words, Some(128));
        assert_eq!(b.total_spatial_lanes(), 1024);
    }

    #[test]
    fn instances_multiply_fanouts() {
        let b = Arch::accel_b();
        assert_eq!(b.instances(0), 1);
        assert_eq!(b.instances(1), 1);
        assert_eq!(b.instances(2), 256);
    }

    #[test]
    fn energy_monotonically_decreases_inward() {
        for arch in [Arch::accel_a(), Arch::accel_b()] {
            for w in arch.levels().windows(2) {
                assert!(w[0].energy_per_access > w[1].energy_per_access);
            }
        }
    }

    #[test]
    fn validation_rejects_bad_hierarchies() {
        assert_eq!(Arch::new("e", vec![], 1.0, 2).unwrap_err(), ArchError::Empty);
        let err = Arch::new(
            "u",
            vec![
                MemLevel::new("DRAM", None, 1, 200.0, 16.0),
                MemLevel::new("L2", None, 4, 6.0, 16.0),
            ],
            1.0,
            2,
        )
        .unwrap_err();
        assert_eq!(err, ArchError::UnboundedInnerLevel(1));
        let err = Arch::new("z", vec![MemLevel::new("DRAM", None, 0, 200.0, 16.0)], 1.0, 2)
            .unwrap_err();
        assert_eq!(err, ArchError::ZeroFanout(0));
        assert!(format!("{err}").contains("fanout"));
    }

    #[test]
    fn display_lists_levels() {
        let s = Arch::accel_a().to_string();
        assert!(s.contains("GlobalBuffer"));
        assert!(s.contains("Accel-A"));
    }
}
