//! Sparse-accelerator capability description (§4.5).
//!
//! Flexible sparse accelerators (the class Sparseloop models) add hardware
//! and software optimizations on top of the dense substrate: compressed
//! tensor formats, compute gating (idle the ALU on a zero, saving energy but
//! not time) and compute skipping (skip the cycle entirely). The sparse cost
//! model consumes this description; the dense model ignores it.


/// Capabilities of a flexible sparse accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseCaps {
    /// ALUs skip zero-operand cycles entirely (affects latency and energy).
    /// Without skipping, only gating applies (energy saved, cycles not).
    pub skipping: bool,
    /// Zero-operand MACs are power-gated (energy saved even without
    /// skipping).
    pub gating: bool,
    /// Compressed tensors are stored/moved in a compressed-sparse format;
    /// footprints and traffic scale with density.
    pub compressed: bool,
    /// Metadata overhead of the compressed format, as extra words per
    /// nonzero (e.g. 0.5 for bitmask-ish, 1.0 for coordinate formats).
    pub metadata_per_nnz: f64,
    /// Per-output-element fiber-intersection/scan cost, in cycles, charged
    /// to *inner-product-style* mappings per reduction tile visited. This is
    /// the density-independent floor that makes inner product lose at high
    /// sparsity (§4.5.3).
    pub intersection_cost: f64,
    /// Per-partial-product merge premium (multiplier ≥ 1) charged to
    /// *outer-product-style* mappings: every partial product traverses the
    /// merge/accumulation network instead of a local register. This is what
    /// makes outer product lose at low sparsity (§4.5.3).
    pub merge_overhead: f64,
}

impl SparseCaps {
    /// A flexible sparse accelerator with both gating and skipping,
    /// coordinate-style compression, and SCNN/OuterSPACE-like datapath
    /// overheads. Used for Tables 2-4.
    pub fn flexible() -> Self {
        SparseCaps {
            skipping: true,
            gating: true,
            compressed: true,
            metadata_per_nnz: 0.5,
            intersection_cost: 0.3,
            merge_overhead: 3.0,
        }
    }

    /// Gating only (saves energy, not cycles) — a weaker design point used
    /// in ablations.
    pub fn gating_only() -> Self {
        SparseCaps { skipping: false, ..SparseCaps::flexible() }
    }

    /// No sparse support at all; running a sparse workload on this config
    /// behaves identically to the dense model.
    pub fn none() -> Self {
        SparseCaps {
            skipping: false,
            gating: false,
            compressed: false,
            metadata_per_nnz: 0.0,
            intersection_cost: 0.0,
            merge_overhead: 1.0,
        }
    }
}

impl Default for SparseCaps {
    fn default() -> Self {
        SparseCaps::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_capability() {
        let f = SparseCaps::flexible();
        assert!(f.skipping && f.gating && f.compressed);
        let g = SparseCaps::gating_only();
        assert!(!g.skipping && g.gating);
        let n = SparseCaps::none();
        assert!(!n.skipping && !n.gating && !n.compressed);
        assert_eq!(n.merge_overhead, 1.0);
        assert_eq!(SparseCaps::default(), n);
    }
}
