//! NPU hardware configuration (§2.2 of the paper).
//!
//! An accelerator is modeled as a hierarchy of storage levels — outermost
//! (DRAM) first — each with a capacity, a per-word access energy, a
//! per-instance bandwidth, and a *fanout*: how many instances of the next
//! level (or, at the innermost level, how many ALUs) one instance feeds.
//!
//! The paper's two configurations (Table 1) are provided as presets:
//!
//! * [`Arch::accel_a`] — 512 KB shared buffer, 64 KB private buffer per PE,
//!   256 PEs, 1 ALU per PE (the Mind Mappings configuration).
//! * [`Arch::accel_b`] — 64 KB shared buffer, 256 B private buffer per PE,
//!   256 PEs, 4 ALUs per PE.
//!
//! # Example
//!
//! ```
//! let arch = arch::Arch::accel_b();
//! assert_eq!(arch.num_levels(), 3);
//! assert_eq!(arch.total_spatial_lanes(), 256 * 4);
//! ```

mod config;
mod sparse;

pub use config::{Arch, ArchError, MemLevel};
pub use sparse::SparseCaps;
