//! Hardened ingestion of user-supplied architecture and workload specs.
//!
//! The build environment is fully offline (no serde/toml), so this crate
//! implements a small, *strict* TOML subset by hand: `key = value` pairs,
//! `[section]` tables, `[[level]]` arrays-of-tables, `#` comments, quoted
//! strings, integers (with `_` separators), floats, and booleans. Strict
//! means bad input fails fast with an actionable, line-numbered
//! [`SpecError`] instead of a deep-engine panic: unknown fields and
//! sections are rejected, duplicates are rejected, and every physical
//! sanity rule (zero capacity, zero fanout, unbounded inner levels, empty
//! or zero dimension bounds, operator/dimension-set mismatches) has its
//! own error variant.
//!
//! # Architecture spec
//!
//! ```toml
//! kind = "arch"            # optional; inferred from [[level]]
//! name = "edge-npu"
//! mac_energy = 1.0         # pJ per MAC
//! word_bytes = 2
//!
//! [[level]]                # outermost (DRAM) first
//! name = "DRAM"
//! fanout = 1
//! energy_per_access = 200.0
//! bandwidth = 16.0         # words/cycle; capacity_words omitted = unbounded
//! ```
//!
//! # Problem spec
//!
//! ```toml
//! kind = "problem"         # optional; inferred from [dims]
//! name = "Resnet Conv_3"
//! op = "CONV2D"            # CONV2D | PWCONV | DWCONV | GEMM
//!
//! [dims]
//! B = 16
//! K = 128
//! C = 128
//! Y = 28
//! X = 28
//! R = 3
//! S = 3
//! ```
//!
//! # Example
//!
//! ```
//! let text = "op = \"GEMM\"\n[dims]\nB = 1\nM = 4\nK = 4\nN = 4\n";
//! let p = spec::parse_problem(text).unwrap();
//! assert_eq!(p.total_macs(), 64);
//! ```

use arch::{Arch, ArchError, MemLevel};
use problem::{DimName, OperatorKind, Problem};
use std::fmt;

/// Spec-error taxonomy: every way user input can be malformed gets a
/// distinct, named variant so CLI messages (and tests) can be precise.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Syntactically malformed line.
    Parse { line: usize, message: String },
    /// A `[section]` this format does not define.
    UnknownSection { section: String, line: usize },
    /// A plain `[section]` opened twice.
    DuplicateSection { section: String, line: usize },
    /// A key this format does not define.
    UnknownField { section: String, field: String, line: usize },
    /// The same key assigned twice in one table.
    DuplicateField { section: String, field: String, line: usize },
    /// A required key is absent.
    MissingField { section: String, field: String },
    /// A key exists but its value has the wrong type or range.
    BadValue { field: String, expected: &'static str, got: String, line: usize },
    /// `kind` is neither `"arch"` nor `"problem"`, or neither could be
    /// inferred from the sections present.
    UnknownKind { found: String },
    /// An architecture with no memory levels.
    EmptyHierarchy,
    /// A memory level declaring `capacity_words = 0`.
    ZeroCapacity { level: String },
    /// A non-DRAM level with no capacity bound.
    UnboundedInnerLevel { level: String },
    /// A fanout inconsistent with a physical hierarchy (zero).
    FanoutMismatch { level: String, fanout: u64 },
    /// A problem with no `[dims]` entries at all.
    EmptyDims,
    /// A dimension bound of zero.
    ZeroDimBound { dim: String, line: usize },
    /// A dimension letter outside B, K, C, Y, X, R, S, M, N.
    UnknownDim { dim: String, line: usize },
    /// An operator tag outside CONV2D, PWCONV, DWCONV, GEMM.
    UnknownOperator { op: String },
    /// The dimension set does not match what the operator requires.
    DimSetMismatch { op: String, message: String },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SpecError::UnknownSection { section, line } => {
                write!(f, "line {line}: unknown section `[{section}]`")
            }
            SpecError::DuplicateSection { section, line } => {
                write!(f, "line {line}: section `[{section}]` given twice")
            }
            SpecError::UnknownField { section, field, line } => {
                write!(f, "line {line}: unknown field `{field}` in {section}")
            }
            SpecError::DuplicateField { section, field, line } => {
                write!(f, "line {line}: field `{field}` given twice in {section}")
            }
            SpecError::MissingField { section, field } => {
                write!(f, "missing required field `{field}` in {section}")
            }
            SpecError::BadValue { field, expected, got, line } => {
                write!(f, "line {line}: `{field}` expects {expected}, got `{got}`")
            }
            SpecError::UnknownKind { found } => write!(
                f,
                "cannot tell whether this is an arch or a problem spec \
                 (kind = `{found}`); say `kind = \"arch\"` or `kind = \"problem\"`, \
                 or add a `[[level]]` / `[dims]` section"
            ),
            SpecError::EmptyHierarchy => {
                write!(f, "architecture has no `[[level]]` sections; at least one memory level is required")
            }
            SpecError::ZeroCapacity { level } => {
                write!(f, "level `{level}`: capacity_words = 0 can hold no data; use a positive capacity or omit it for an unbounded (DRAM) level")
            }
            SpecError::UnboundedInnerLevel { level } => {
                write!(f, "level `{level}`: only the outermost (DRAM) level may omit capacity_words")
            }
            SpecError::FanoutMismatch { level, fanout } => {
                write!(f, "level `{level}`: fanout = {fanout} is not a physical hierarchy (every level needs at least one instance)")
            }
            SpecError::EmptyDims => {
                write!(f, "problem has no dimension bounds; add a `[dims]` section with at least one entry")
            }
            SpecError::ZeroDimBound { dim, line } => {
                write!(f, "line {line}: dimension `{dim}` has bound 0; every bound must be at least 1")
            }
            SpecError::UnknownDim { dim, line } => {
                write!(f, "line {line}: unknown dimension `{dim}` (expected one of B, K, C, Y, X, R, S, M, N)")
            }
            SpecError::UnknownOperator { op } => {
                write!(f, "unknown operator `{op}` (expected CONV2D, PWCONV, DWCONV, or GEMM)")
            }
            SpecError::DimSetMismatch { op, message } => {
                write!(f, "dimension set does not match operator `{op}`: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A successfully ingested spec.
#[derive(Debug, Clone)]
pub enum Spec {
    /// An architecture description.
    Arch(Arch),
    /// A workload description.
    Problem(Problem),
}

// ---------------------------------------------------------------------------
// Lexing/parsing of the TOML subset into a document model.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum RawValue {
    Str(String),
    /// Numeric token, kept raw so integers stay exact (`_` separators kept).
    Num(String),
    Bool(bool),
}

#[derive(Debug, Clone)]
struct Entry {
    key: String,
    value: RawValue,
    line: usize,
}

#[derive(Debug, Clone)]
struct Section {
    name: String,
    array: bool,
    entries: Vec<Entry>,
}

#[derive(Debug, Clone, Default)]
struct Doc {
    root: Vec<Entry>,
    sections: Vec<Section>,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_value(raw: &str, line: usize) -> Result<RawValue, SpecError> {
    let perr = |m: String| SpecError::Parse { line, message: m };
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return Err(perr("unterminated string".to_string()));
        };
        let tail = rest[end + 1..].trim();
        if !(tail.is_empty() || tail.starts_with('#')) {
            return Err(perr(format!("unexpected trailing `{tail}` after string")));
        }
        return Ok(RawValue::Str(rest[..end].to_string()));
    }
    // Bare token: strip a trailing comment, then it must be one word.
    let bare = raw.split('#').next().unwrap_or("").trim();
    if bare.is_empty() {
        return Err(perr("missing value after `=`".to_string()));
    }
    if bare.split_whitespace().count() != 1 {
        return Err(perr(format!("unquoted value `{bare}` contains whitespace")));
    }
    match bare {
        "true" => Ok(RawValue::Bool(true)),
        "false" => Ok(RawValue::Bool(false)),
        _ => Ok(RawValue::Num(bare.to_string())),
    }
}

fn parse_doc(text: &str) -> Result<Doc, SpecError> {
    // Specs now also arrive over the network (`mapex serve`'s validate /
    // `*_toml` request fields) and from Windows editors: tolerate a
    // leading UTF-8 BOM rather than reporting a confusing `bad key` on
    // line 1. (`lines()` already absorbs CRLF endings.)
    let text = text.strip_prefix('\u{feff}').unwrap_or(text);
    let mut doc = Doc::default();
    let mut in_section = false;
    for (i, raw_line) in text.lines().enumerate() {
        let line = i + 1;
        let perr = |m: String| SpecError::Parse { line, message: m };
        let trimmed = raw_line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix("[[") {
            let Some(name) = inner.strip_suffix("]]") else {
                return Err(perr("malformed `[[section]]` header".to_string()));
            };
            let name = name.trim();
            if !valid_name(name) {
                return Err(perr(format!("bad section name `{name}`")));
            }
            if doc.sections.iter().any(|s| s.name == name && !s.array) {
                return Err(perr(format!("`[{name}]` and `[[{name}]]` used for the same name")));
            }
            doc.sections.push(Section { name: name.to_string(), array: true, entries: vec![] });
            in_section = true;
        } else if let Some(inner) = trimmed.strip_prefix('[') {
            let Some(name) = inner.strip_suffix(']') else {
                return Err(perr("malformed `[section]` header".to_string()));
            };
            let name = name.trim();
            if !valid_name(name) {
                return Err(perr(format!("bad section name `{name}`")));
            }
            if let Some(prev) = doc.sections.iter().find(|s| s.name == name) {
                return Err(if prev.array {
                    perr(format!("`[{name}]` and `[[{name}]]` used for the same name"))
                } else {
                    SpecError::DuplicateSection { section: name.to_string(), line }
                });
            }
            doc.sections.push(Section { name: name.to_string(), array: false, entries: vec![] });
            in_section = true;
        } else if let Some((key, value)) = trimmed.split_once('=') {
            let key = key.trim();
            if !valid_name(key) {
                return Err(perr(format!("bad key `{key}`")));
            }
            let entry = Entry { key: key.to_string(), value: parse_value(value, line)?, line };
            let bucket = if in_section {
                &mut doc.sections.last_mut().expect("in_section implies a section").entries
            } else {
                &mut doc.root
            };
            bucket.push(entry);
        } else {
            return Err(perr(format!("expected `key = value` or a section header, got `{trimmed}`")));
        }
    }
    Ok(doc)
}

// ---------------------------------------------------------------------------
// Typed field access over a table.
// ---------------------------------------------------------------------------

/// A table (root or section) with strict, consume-tracking field access:
/// duplicate keys and leftover (unknown) keys are errors.
struct Fields<'a> {
    section: String,
    entries: &'a [Entry],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(section: &str, entries: &'a [Entry]) -> Fields<'a> {
        Fields { section: section.to_string(), entries, used: vec![false; entries.len()] }
    }

    fn take(&mut self, key: &str) -> Result<Option<&'a Entry>, SpecError> {
        let mut found: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.key == key {
                if found.is_some() {
                    return Err(SpecError::DuplicateField {
                        section: self.section.clone(),
                        field: key.to_string(),
                        line: e.line,
                    });
                }
                found = Some(i);
            }
        }
        Ok(found.map(|i| {
            self.used[i] = true;
            &self.entries[i]
        }))
    }

    fn require(&mut self, key: &str) -> Result<&'a Entry, SpecError> {
        self.take(key)?.ok_or_else(|| SpecError::MissingField {
            section: self.section.clone(),
            field: key.to_string(),
        })
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<String>, SpecError> {
        self.take(key)?.map(as_str).transpose()
    }

    /// Errors on any field never consumed — the "unknown field" guarantee.
    fn finish(self) -> Result<(), SpecError> {
        for (i, e) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(SpecError::UnknownField {
                    section: self.section,
                    field: e.key.clone(),
                    line: e.line,
                });
            }
        }
        Ok(())
    }
}

fn bad(e: &Entry, expected: &'static str) -> SpecError {
    let got = match &e.value {
        RawValue::Str(s) => format!("\"{s}\""),
        RawValue::Num(s) => s.clone(),
        RawValue::Bool(b) => b.to_string(),
    };
    SpecError::BadValue { field: e.key.clone(), expected, got, line: e.line }
}

fn as_str(e: &Entry) -> Result<String, SpecError> {
    match &e.value {
        RawValue::Str(s) => Ok(s.clone()),
        _ => Err(bad(e, "a quoted string")),
    }
}

fn as_u64(e: &Entry) -> Result<u64, SpecError> {
    match &e.value {
        RawValue::Num(s) if !s.contains(['.', 'e', 'E', '+', '-']) => {
            s.replace('_', "").parse().map_err(|_| bad(e, "a non-negative integer"))
        }
        _ => Err(bad(e, "a non-negative integer")),
    }
}

fn as_f64(e: &Entry) -> Result<f64, SpecError> {
    let RawValue::Num(s) = &e.value else { return Err(bad(e, "a finite number")) };
    match s.replace('_', "").parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(bad(e, "a finite number")),
    }
}

fn as_positive_f64(e: &Entry) -> Result<f64, SpecError> {
    match as_f64(e)? {
        v if v > 0.0 => Ok(v),
        _ => Err(bad(e, "a positive number")),
    }
}

// ---------------------------------------------------------------------------
// Spec construction.
// ---------------------------------------------------------------------------

const TOP: &str = "the top-level table";

fn build_arch(doc: &Doc) -> Result<Arch, SpecError> {
    let mut root = Fields::new(TOP, &doc.root);
    root.opt_str("kind")?;
    let name = root.opt_str("name")?.unwrap_or_else(|| "custom-arch".to_string());
    let mac_energy = as_positive_f64(root.require("mac_energy")?)?;
    let word_entry = root.require("word_bytes")?;
    let word_bytes = as_u64(word_entry)?;
    if word_bytes == 0 {
        return Err(bad(word_entry, "a positive integer"));
    }
    root.finish()?;

    let mut levels = Vec::new();
    for s in &doc.sections {
        if s.name != "level" {
            let line = s.entries.first().map_or(1, |e| e.line.saturating_sub(1));
            return Err(SpecError::UnknownSection { section: s.name.clone(), line });
        }
        let idx = levels.len();
        let section = format!("`[[level]]` #{}", idx + 1);
        let mut f = Fields::new(&section, &s.entries);
        let lname = as_str(f.require("name")?)?;
        let capacity = f.take("capacity_words")?.map(as_u64).transpose()?;
        let fanout = as_u64(f.require("fanout")?)?;
        let energy_entry = f.require("energy_per_access")?;
        let energy = as_f64(energy_entry)?;
        if energy < 0.0 {
            return Err(bad(energy_entry, "a non-negative number"));
        }
        let bandwidth = as_positive_f64(f.require("bandwidth")?)?;
        f.finish()?;

        if capacity == Some(0) {
            return Err(SpecError::ZeroCapacity { level: lname });
        }
        if fanout == 0 {
            return Err(SpecError::FanoutMismatch { level: lname, fanout });
        }
        if idx > 0 && capacity.is_none() {
            return Err(SpecError::UnboundedInnerLevel { level: lname });
        }
        levels.push(MemLevel::new(lname, capacity, fanout, energy, bandwidth));
    }
    if levels.is_empty() {
        return Err(SpecError::EmptyHierarchy);
    }

    let level_name = |i: usize| levels.get(i).map_or_else(|| i.to_string(), |l: &MemLevel| l.name.clone());
    Arch::new(name, levels.clone(), mac_energy, word_bytes).map_err(|e| match e {
        ArchError::Empty => SpecError::EmptyHierarchy,
        ArchError::UnboundedInnerLevel(i) => SpecError::UnboundedInnerLevel { level: level_name(i) },
        ArchError::ZeroFanout(i) => SpecError::FanoutMismatch { level: level_name(i), fanout: 0 },
    })
}

fn required_dims(op: OperatorKind) -> &'static [DimName] {
    use DimName::*;
    match op {
        OperatorKind::Conv2d => &[B, K, C, Y, X, R, S],
        OperatorKind::PointwiseConv2d => &[B, K, C, Y, X],
        OperatorKind::DepthwiseConv2d => &[B, C, Y, X, R, S],
        OperatorKind::Gemm => &[B, M, K, N],
    }
}

fn build_problem(doc: &Doc) -> Result<Problem, SpecError> {
    let mut root = Fields::new(TOP, &doc.root);
    root.opt_str("kind")?;
    let name = root.opt_str("name")?.unwrap_or_else(|| "custom-problem".to_string());
    let op_tag = as_str(root.require("op")?)?;
    root.finish()?;
    let op = OperatorKind::from_tag(&op_tag)
        .ok_or_else(|| SpecError::UnknownOperator { op: op_tag.clone() })?;

    let mut dims_section = None;
    for s in &doc.sections {
        if s.name == "dims" {
            dims_section = Some(s);
        } else {
            let line = s.entries.first().map_or(1, |e| e.line.saturating_sub(1));
            return Err(SpecError::UnknownSection { section: s.name.clone(), line });
        }
    }
    let entries: &[Entry] = dims_section.map_or(&[], |s| &s.entries);
    if entries.is_empty() {
        return Err(SpecError::EmptyDims);
    }

    let mut bounds: Vec<(DimName, u64)> = Vec::new();
    for e in entries {
        let dim = DimName::ALL
            .into_iter()
            .find(|d| d.letter().to_string() == e.key)
            .ok_or_else(|| SpecError::UnknownDim { dim: e.key.clone(), line: e.line })?;
        if bounds.iter().any(|(d, _)| *d == dim) {
            return Err(SpecError::DuplicateField {
                section: "`[dims]`".to_string(),
                field: e.key.clone(),
                line: e.line,
            });
        }
        let bound = as_u64(e)?;
        if bound == 0 {
            return Err(SpecError::ZeroDimBound { dim: e.key.clone(), line: e.line });
        }
        bounds.push((dim, bound));
    }

    // The operator fixes the dimension set exactly: missing letters would
    // panic deep in the constructors, and extras would be silently dropped
    // — both are rejected here instead.
    let required = required_dims(op);
    let missing: Vec<String> = required
        .iter()
        .filter(|d| !bounds.iter().any(|(have, _)| have == *d))
        .map(|d| d.letter().to_string())
        .collect();
    let extra: Vec<String> = bounds
        .iter()
        .filter(|(d, _)| !required.contains(d))
        .map(|(d, _)| d.letter().to_string())
        .collect();
    if !missing.is_empty() || !extra.is_empty() {
        let mut parts = Vec::new();
        if !missing.is_empty() {
            parts.push(format!("missing {}", missing.join(", ")));
        }
        if !extra.is_empty() {
            parts.push(format!("unexpected {}", extra.join(", ")));
        }
        let letters: Vec<String> = required.iter().map(|d| d.letter().to_string()).collect();
        return Err(SpecError::DimSetMismatch {
            op: op_tag,
            message: format!("{} (needs exactly {})", parts.join("; "), letters.join(", ")),
        });
    }

    let get = |d: DimName| bounds.iter().find(|(have, _)| *have == d).expect("checked").1;
    use DimName::*;
    Ok(match op {
        OperatorKind::Conv2d => {
            Problem::conv2d(name, get(B), get(K), get(C), get(Y), get(X), get(R), get(S))
        }
        OperatorKind::PointwiseConv2d => {
            Problem::pointwise_conv2d(name, get(B), get(K), get(C), get(Y), get(X))
        }
        OperatorKind::DepthwiseConv2d => {
            Problem::depthwise_conv2d(name, get(B), get(C), get(Y), get(X), get(R), get(S))
        }
        OperatorKind::Gemm => Problem::gemm(name, get(B), get(M), get(K), get(N)),
    })
}

/// Parses a spec of either kind, using the explicit `kind = "..."` key when
/// present and inferring from the sections (`[[level]]` → arch, `[dims]` →
/// problem) otherwise.
///
/// # Errors
///
/// Any [`SpecError`]; see the taxonomy on that type.
pub fn parse_any(text: &str) -> Result<Spec, SpecError> {
    let doc = parse_doc(text)?;
    let kind = doc.root.iter().find(|e| e.key == "kind");
    let kind = match kind {
        Some(e) => as_str(e)?,
        None => {
            let has_levels = doc.sections.iter().any(|s| s.name == "level");
            let has_dims = doc.sections.iter().any(|s| s.name == "dims");
            match (has_levels, has_dims) {
                (true, false) => "arch".to_string(),
                (false, true) => "problem".to_string(),
                _ => return Err(SpecError::UnknownKind { found: "(unspecified)".to_string() }),
            }
        }
    };
    match kind.as_str() {
        "arch" => build_arch(&doc).map(Spec::Arch),
        "problem" => build_problem(&doc).map(Spec::Problem),
        other => Err(SpecError::UnknownKind { found: other.to_string() }),
    }
}

/// Parses an architecture spec.
///
/// # Errors
///
/// Any [`SpecError`]; see the taxonomy on that type.
pub fn parse_arch(text: &str) -> Result<Arch, SpecError> {
    build_arch(&parse_doc(text)?)
}

/// Parses a problem spec.
///
/// # Errors
///
/// Any [`SpecError`]; see the taxonomy on that type.
pub fn parse_problem(text: &str) -> Result<Problem, SpecError> {
    build_problem(&parse_doc(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARCH: &str = r#"
kind = "arch"
name = "edge-npu"
mac_energy = 1.0
word_bytes = 2

[[level]]
name = "DRAM"
fanout = 1
energy_per_access = 200.0
bandwidth = 16.0

[[level]]
name = "GlobalBuffer"
capacity_words = 512_000   # 1 MiB at 2 B/word
fanout = 16
energy_per_access = 6.0
bandwidth = 32.0

[[level]]
name = "LocalBuffer"
capacity_words = 256
fanout = 64
energy_per_access = 0.5
bandwidth = 4.0
"#;

    const PROBLEM: &str = r#"
kind = "problem"
name = "Resnet Conv_3"
op = "CONV2D"

[dims]
B = 16
K = 128
C = 128
Y = 28
X = 28
R = 3
S = 3
"#;

    #[test]
    fn parses_a_full_arch() {
        let a = parse_arch(ARCH).expect("valid arch");
        assert_eq!(a.name(), "edge-npu");
        assert_eq!(a.num_levels(), 3);
        assert_eq!(a.level(1).capacity_words, Some(512_000));
        assert_eq!(a.level(2).fanout, 64);
    }

    #[test]
    fn parses_a_full_problem() {
        let p = parse_problem(PROBLEM).expect("valid problem");
        assert_eq!(p, problem::zoo::resnet_conv3());
    }

    #[test]
    fn parse_any_infers_kind_without_the_key() {
        let arch_text = ARCH.replace("kind = \"arch\"\n", "");
        assert!(matches!(parse_any(&arch_text), Ok(Spec::Arch(_))));
        let prob_text = PROBLEM.replace("kind = \"problem\"\n", "");
        assert!(matches!(parse_any(&prob_text), Ok(Spec::Problem(_))));
        assert!(matches!(
            parse_any("name = \"x\"\n"),
            Err(SpecError::UnknownKind { .. })
        ));
        assert!(matches!(
            parse_any("kind = \"workload\"\n"),
            Err(SpecError::UnknownKind { found }) if found == "workload"
        ));
    }

    #[test]
    fn rejects_unknown_fields_and_sections() {
        let text = ARCH.replace("word_bytes = 2", "word_bytes = 2\nvoltage = 3");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::UnknownField { field, .. }) if field == "voltage"
        ));
        let text = ARCH.replace("name = \"DRAM\"", "name = \"DRAM\"\nlatency = 1");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::UnknownField { field, .. }) if field == "latency"
        ));
        let text = format!("{PROBLEM}\n[extras]\nfoo = 1\n");
        assert!(matches!(
            parse_problem(&text),
            Err(SpecError::UnknownSection { section, .. }) if section == "extras"
        ));
    }

    #[test]
    fn rejects_duplicates() {
        let text = ARCH.replace("mac_energy = 1.0", "mac_energy = 1.0\nmac_energy = 2.0");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::DuplicateField { field, .. }) if field == "mac_energy"
        ));
        let text = PROBLEM.replace("B = 16", "B = 16\nB = 8");
        assert!(matches!(
            parse_problem(&text),
            Err(SpecError::DuplicateField { field, .. }) if field == "B"
        ));
        let text = format!("{PROBLEM}\n[dims]\nB = 1\n");
        assert!(matches!(parse_problem(&text), Err(SpecError::DuplicateSection { .. })));
    }

    #[test]
    fn reports_missing_required_fields() {
        let text = ARCH.replace("mac_energy = 1.0\n", "");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::MissingField { field, .. }) if field == "mac_energy"
        ));
        let text = ARCH.replace("fanout = 16\n", "");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::MissingField { field, .. }) if field == "fanout"
        ));
    }

    #[test]
    fn bad_values_name_the_field_and_line() {
        let text = ARCH.replace("word_bytes = 2", "word_bytes = \"two\"");
        match parse_arch(&text) {
            Err(SpecError::BadValue { field, line, .. }) => {
                assert_eq!(field, "word_bytes");
                assert!(line > 0);
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
        let text = ARCH.replace("bandwidth = 16.0", "bandwidth = -1.0");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::BadValue { field, .. }) if field == "bandwidth"
        ));
        let text = ARCH.replace("capacity_words = 256", "capacity_words = 2.5");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::BadValue { field, .. }) if field == "capacity_words"
        ));
    }

    #[test]
    fn arch_taxonomy_zero_capacity_fanout_unbounded_empty() {
        let text = ARCH.replace("capacity_words = 256", "capacity_words = 0");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::ZeroCapacity { level }) if level == "LocalBuffer"
        ));
        let text = ARCH.replace("fanout = 64", "fanout = 0");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::FanoutMismatch { level, fanout: 0 }) if level == "LocalBuffer"
        ));
        let text = ARCH.replace("capacity_words = 512_000   # 1 MiB at 2 B/word\n", "");
        assert!(matches!(
            parse_arch(&text),
            Err(SpecError::UnboundedInnerLevel { level }) if level == "GlobalBuffer"
        ));
        assert!(matches!(
            parse_arch("kind = \"arch\"\nmac_energy = 1.0\nword_bytes = 2\n"),
            Err(SpecError::EmptyHierarchy)
        ));
    }

    #[test]
    fn problem_taxonomy_dims_and_operators() {
        let text = PROBLEM.replace("K = 128", "K = 0");
        assert!(matches!(
            parse_problem(&text),
            Err(SpecError::ZeroDimBound { dim, .. }) if dim == "K"
        ));
        let text = PROBLEM.replace("K = 128", "Q = 128");
        assert!(matches!(
            parse_problem(&text),
            Err(SpecError::UnknownDim { dim, .. }) if dim == "Q"
        ));
        let text = PROBLEM.replace("op = \"CONV2D\"", "op = \"CONV3D\"");
        assert!(matches!(
            parse_problem(&text),
            Err(SpecError::UnknownOperator { op }) if op == "CONV3D"
        ));
        assert!(matches!(
            parse_problem("op = \"GEMM\"\n[dims]\n"),
            Err(SpecError::EmptyDims)
        ));
        assert!(matches!(parse_problem("op = \"GEMM\"\n"), Err(SpecError::EmptyDims)));
    }

    #[test]
    fn dim_set_must_match_operator_exactly() {
        // Missing S for CONV2D.
        let text = PROBLEM.replace("S = 3\n", "");
        match parse_problem(&text) {
            Err(SpecError::DimSetMismatch { op, message }) => {
                assert_eq!(op, "CONV2D");
                assert!(message.contains("missing S"), "{message}");
            }
            other => panic!("expected DimSetMismatch, got {other:?}"),
        }
        // Extra M for CONV2D (would be silently dropped by a lax parser).
        let text = PROBLEM.replace("S = 3", "S = 3\nM = 4");
        match parse_problem(&text) {
            Err(SpecError::DimSetMismatch { message, .. }) => {
                assert!(message.contains("unexpected M"), "{message}");
            }
            other => panic!("expected DimSetMismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        match parse_arch("kind = \"arch\"\nwhat is this\n") {
            Err(SpecError::Parse { line: 2, .. }) => {}
            other => panic!("expected Parse at line 2, got {other:?}"),
        }
        assert!(matches!(
            parse_arch("name = \"unterminated\nmac_energy = 1.0\n"),
            Err(SpecError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_arch("[[level\n"),
            Err(SpecError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn comments_whitespace_and_underscores_are_tolerated() {
        let text = "# a problem\nop = \"GEMM\"  # tag\n\n[dims]\nB = 1\nM = 1_024\nK = 64\nN = 8\n";
        let p = parse_problem(text).expect("valid");
        let m = p.dims().iter().find(|d| d.name == DimName::M).expect("has M");
        assert_eq!(m.bound, 1024);
    }

    #[test]
    fn errors_display_actionably() {
        let e = SpecError::ZeroCapacity { level: "L1".to_string() };
        assert!(e.to_string().contains("can hold no data"));
        let e = SpecError::UnknownDim { dim: "Q".to_string(), line: 7 };
        assert!(e.to_string().contains("line 7"));
        let e = SpecError::DimSetMismatch { op: "GEMM".to_string(), message: "missing N".into() };
        assert!(e.to_string().contains("GEMM"));
    }

    #[test]
    fn parsed_arch_matches_handwritten_construction() {
        // The parsed arch is exactly what the equivalent constructor calls
        // produce — ingestion adds validation, never reinterpretation.
        let a = parse_arch(ARCH).expect("arch");
        let by_hand = Arch::new(
            "edge-npu",
            vec![
                MemLevel::new("DRAM", None, 1, 200.0, 16.0),
                MemLevel::new("GlobalBuffer", Some(512_000), 16, 6.0, 32.0),
                MemLevel::new("LocalBuffer", Some(256), 64, 0.5, 4.0),
            ],
            1.0,
            2,
        )
        .expect("valid by construction");
        assert_eq!(a, by_hand);
    }

    #[test]
    fn leading_bom_and_crlf_are_tolerated() {
        // Network clients and Windows editors both produce these; neither
        // changes the spec's meaning.
        let plain = "kind = \"problem\"\nname = \"g\"\nop = \"GEMM\"\n\
                     [dims]\nB = 2\nM = 8\nK = 8\nN = 8\n";
        let bom = format!("\u{feff}{plain}");
        let crlf = plain.replace('\n', "\r\n");
        let want = parse_problem(plain).expect("plain parses");
        assert_eq!(parse_problem(&bom).expect("BOM parses").name(), want.name());
        assert_eq!(parse_problem(&crlf).expect("CRLF parses").name(), want.name());
        // A BOM anywhere *else* is still garbage, with a line number.
        let mid = plain.replace("op =", "\u{feff}op =");
        assert!(matches!(parse_problem(&mid), Err(SpecError::Parse { line: 3, .. })));
    }
}
