//! Shared hand-written autodiff utilities: the Adam optimizer state used by
//! the MLP layers and a central finite-difference gradient checker used by
//! both the surrogate's own tests and the smooth-relaxation gradient suite.

/// First/second-moment Adam accumulators for one parameter block.
///
/// Factored out of the MLP's `Dense` layer so every hand-written gradient
/// consumer (network training, relaxed-cost descent experiments) shares one
/// bias-corrected update rule instead of re-deriving it.
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamState {
    const B1: f64 = 0.9;
    const B2: f64 = 0.999;
    const EPS: f64 = 1e-8;

    /// Zeroed state for `n` parameters.
    pub fn new(n: usize) -> Self {
        AdamState { m: vec![0.0; n], v: vec![0.0; n] }
    }

    /// Number of tracked parameters.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// Whether the state tracks no parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// One bias-corrected Adam update at optimizer step `t` (1-based).
    /// `grads` are raw accumulated gradients; `batch` divides them first
    /// (mean over the minibatch), matching the historical MLP semantics.
    ///
    /// # Panics
    ///
    /// Panics if `params` / `grads` length differs from the state.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, t: usize, batch: f64) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        let bc1 = 1.0 - Self::B1.powi(t as i32);
        let bc2 = 1.0 - Self::B2.powi(t as i32);
        for i in 0..params.len() {
            let g = grads[i] / batch;
            self.m[i] = Self::B1 * self.m[i] + (1.0 - Self::B1) * g;
            self.v[i] = Self::B2 * self.v[i] + (1.0 - Self::B2) * g * g;
            params[i] -= lr * (self.m[i] / bc1) / ((self.v[i] / bc2).sqrt() + Self::EPS);
        }
    }
}

/// Central finite-difference gradient of `f` at `x`: the reference every
/// reverse-mode implementation in this workspace is checked against.
pub fn finite_difference_gradient<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x: &[f64],
    eps: f64,
) -> Vec<f64> {
    let mut g = Vec::with_capacity(x.len());
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        probe[i] = x[i] + eps;
        let up = f(&probe);
        probe[i] = x[i] - eps;
        let dn = f(&probe);
        probe[i] = x[i];
        g.push((up - dn) / (2.0 * eps));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_gradient_of_quadratic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = finite_difference_gradient(f, &[2.0, 5.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-6);
        assert!((g[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_descends_a_convex_bowl() {
        let mut p = vec![4.0, -3.0];
        let mut st = AdamState::new(2);
        assert_eq!(st.len(), 2);
        assert!(!st.is_empty());
        for t in 1..=500 {
            let g: Vec<f64> = p.iter().map(|v| 2.0 * v).collect();
            st.step(&mut p, &g, 0.05, t, 1.0);
        }
        assert!(p.iter().all(|v| v.abs() < 1e-2), "{p:?}");
    }
}
