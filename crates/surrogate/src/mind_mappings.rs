//! The gradient-based mapper (Mind Mappings, §4.3): gradient descent on a
//! trained differentiable surrogate, projecting the continuous mapping
//! relaxation back onto the legal map space at every step.
//!
//! Reproduced behaviors (paper Figs. 3-4): fast initial progress thanks to
//! direct gradient feedback, a tendency to settle into local optima, and
//! degraded quality on accelerator configurations outside the surrogate's
//! training data.

use crate::model::Surrogate;
use mappers::{Budget, Evaluator, Mapper, Recorder, SearchResult};
use mapping::features::{features, mapping_from_features};
use mapping::{MapSpace, Mapping};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

/// Gradient-search hyper-parameters.
#[derive(Debug, Clone)]
pub struct MindMappingsConfig {
    /// Step size in feature space per gradient step (features are log2
    /// tile factors and normalized order positions).
    pub lr: f64,
    /// Amplitude of the exploration noise added to each step (annealed
    /// away over the run); mimics the paper's SGD jitter without turning
    /// the method into random search.
    pub noise: f64,
    /// Surrogate-only gradient steps taken between consecutive real
    /// cost-model evaluations. Surrogate queries are orders of magnitude
    /// cheaper than real samples (the whole point of the method), so the
    /// descent runs mostly on the surrogate.
    pub inner_steps: usize,
    /// Evaluations without predicted improvement before restarting the
    /// trajectory from a new random point.
    pub restart_patience: usize,
    /// Record evaluated samples' features (Fig. 4 PCA harness).
    pub record_samples: bool,
}

impl Default for MindMappingsConfig {
    fn default() -> Self {
        MindMappingsConfig {
            lr: 0.5,
            noise: 0.25,
            inner_steps: 16,
            restart_patience: 15,
            record_samples: false,
        }
    }
}

/// The Mind-Mappings-style mapper. Holds a pre-trained [`Surrogate`]
/// (training is offline, exactly as in the paper — its cost is *not*
/// charged against the search budget).
#[derive(Debug, Clone)]
pub struct MindMappings {
    surrogate: Arc<Surrogate>,
    /// Search configuration.
    pub config: MindMappingsConfig,
    seeds: Vec<Mapping>,
}

impl MindMappings {
    /// Wraps a trained surrogate.
    pub fn new(surrogate: Arc<Surrogate>) -> Self {
        MindMappings { surrogate, config: MindMappingsConfig::default(), seeds: Vec::new() }
    }

    /// Accesses the surrogate (e.g. to inspect `trained_on`).
    pub fn surrogate(&self) -> &Surrogate {
        &self.surrogate
    }
}

impl Mapper for MindMappings {
    fn name(&self) -> &str {
        "Mind-Mappings"
    }

    fn set_seeds(&mut self, seeds: Vec<Mapping>) {
        self.seeds = seeds;
    }

    fn search(
        &self,
        space: &MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        let mut rec = Recorder::new(evaluator, budget);
        rec.record_samples(self.config.record_samples);
        let problem = space.problem();

        let start = match self.seeds.first() {
            Some(s) => s.clone(),
            None => space.random(rng),
        };
        let mut x = features(&start);
        let mut velocity = vec![0.0f64; x.len()];
        let total = budget.max_samples.unwrap_or(5_000) as f64;
        let mut best_pred = f64::INFINITY;
        let mut stall = 0usize;

        while !rec.done() {
            // Descend on the surrogate (cheap) for several steps between
            // real cost-model evaluations (expensive, budget-charged).
            let progress = (rec.evaluated() as f64 / total).min(1.0);
            let noise = self.config.noise * (1.0 - progress);
            for _ in 0..self.config.inner_steps.max(1) {
                let g = self.surrogate.edp_gradient(problem, &x);
                // Normalize to a unit-infinity-norm step: log-EDP gradients
                // span orders of magnitude and raw steps stall or explode.
                let gmax = g.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-12);
                for ((xi, vi), gi) in x.iter_mut().zip(&mut velocity).zip(&g) {
                    *vi = 0.8 * *vi - self.config.lr * gi / gmax;
                    *xi += *vi;
                    if noise > 0.0 {
                        *xi += rng.gen_range(-noise..noise);
                    }
                    // Keep the relaxation in a representable range: log2
                    // tile factors are bounded by the largest dimension;
                    // order positions live in [0, 1].
                    *xi = xi.clamp(-2.0, 16.0);
                }
            }
            let restart = match mapping_from_features(problem, space.arch(), &x) {
                Some(m) => {
                    rec.evaluate(&m);
                    let pred = self.surrogate.predict_edp_log(problem, &x);
                    if pred < best_pred - 1e-3 {
                        best_pred = pred;
                        stall = 0;
                    } else {
                        stall += 1;
                    }
                    stall >= self.config.restart_patience
                }
                None => true,
            };
            if restart {
                x = features(&space.random(rng));
                velocity.iter_mut().for_each(|v| *v = 0.0);
                best_pred = f64::INFINITY;
                stall = 0;
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainConfig;
    use arch::Arch;
    use costmodel::{CostModel, DenseModel};
    use mappers::{EdpEvaluator, RandomMapper};
    use problem::Problem;
    use rand::SeedableRng;

    fn trained(p: &Problem, a: &Arch, seed: u64) -> Arc<Surrogate> {
        let model = DenseModel::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = TrainConfig { samples_per_workload: 2500, epochs: 20, ..TrainConfig::default() };
        let (s, _) = Surrogate::train(&[&model], &cfg, &mut rng);
        Arc::new(s)
    }

    #[test]
    fn gradient_search_beats_random_on_trained_arch() {
        // Fig. 3(a)(b) top, early phase: gradient-based progresses faster
        // than random for the trained accelerator configuration.
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        let sur = trained(&p, &a, 0);
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p, a);
        let eval = EdpEvaluator::new(&model);
        let mut wins = 0;
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mm = MindMappings::new(sur.clone())
                .search(&space, &eval, Budget::samples(250), &mut rng);
            let mut rng = SmallRng::seed_from_u64(seed);
            let rnd =
                RandomMapper::new().search(&space, &eval, Budget::samples(250), &mut rng);
            if mm.best_score <= rnd.best_score {
                wins += 1;
            }
        }
        assert!(wins >= 3, "mind mappings won only {wins}/5 vs random");
    }

    #[test]
    fn surrogate_transfer_to_unseen_arch_degrades() {
        // §4.3.2: the surrogate does not generalize across accelerator
        // configurations. Measured directly: a surrogate trained on
        // Accel-A ranks Accel-B mappings much worse than one trained on
        // Accel-B.
        let p = Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let sur_a = trained(&p, &Arch::accel_a(), 1);
        let sur_b = trained(&p, &Arch::accel_b(), 2);
        let b = Arch::accel_b();
        let model_b = DenseModel::new(p.clone(), b.clone());
        let space_b = MapSpace::new(p.clone(), b);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut pts = Vec::new();
        while pts.len() < 80 {
            let m = space_b.random(&mut rng);
            let Ok(c) = model_b.evaluate(&m) else { continue };
            let f = mapping::features::features(&m);
            pts.push((sur_a.predict_edp_log(&p, &f), sur_b.predict_edp_log(&p, &f), c.edp().log10()));
        }
        // Mean absolute log10-EDP prediction error on Accel-B mappings:
        // the Accel-A surrogate's notion of latency/energy magnitudes is
        // calibrated to a 1000x-larger buffer hierarchy and must be far
        // less accurate than the natively trained one.
        let err = |get: &dyn Fn(&(f64, f64, f64)) -> f64| {
            pts.iter().map(|p| (get(p) - p.2).abs()).sum::<f64>() / pts.len() as f64
        };
        let native = err(&|p| p.1);
        let transfer = err(&|p| p.0);
        assert!(
            transfer > native * 1.5,
            "transferred error {transfer:.3} not clearly above native {native:.3}"
        );
    }

    #[test]
    fn search_counts_samples_and_returns_legal_best() {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        let sur = trained(&p, &a, 3);
        let model = DenseModel::new(p.clone(), a.clone());
        let space = MapSpace::new(p.clone(), a.clone());
        let eval = EdpEvaluator::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        let r = MindMappings::new(sur).search(&space, &eval, Budget::samples(100), &mut rng);
        assert!(r.evaluated <= 101);
        let (m, c) = r.best.expect("found something");
        assert!(m.is_legal(&p, &a));
        assert!((model.evaluate(&m).unwrap().edp() - c.edp()).abs() < 1e-9);
    }
}
