//! Gradient-based map-space search (Mind Mappings, §4.3) and its
//! neural-network substrate.
//!
//! Contains a from-scratch MLP with backpropagation and Adam ([`Mlp`]), a
//! differentiable [`Surrogate`] cost model trained on samples from the
//! analytical cost model, and the [`MindMappings`] mapper that performs
//! gradient descent on the surrogate with projection back onto the legal
//! map space.
//!
//! # Example
//!
//! ```no_run
//! use surrogate::{MindMappings, Surrogate, TrainConfig};
//! use costmodel::DenseModel;
//! use mappers::{Budget, EdpEvaluator, Mapper};
//! use mapping::MapSpace;
//! use rand::{rngs::SmallRng, SeedableRng};
//! use std::sync::Arc;
//!
//! let p = problem::zoo::resnet_conv4();
//! let a = arch::Arch::accel_a();
//! let model = DenseModel::new(p.clone(), a.clone());
//! let mut rng = SmallRng::seed_from_u64(0);
//! let (sur, report) = Surrogate::train(&[&model], &TrainConfig::default(), &mut rng);
//! println!("holdout MSE: {}", report.holdout_mse);
//! let space = MapSpace::new(p, a);
//! let result = MindMappings::new(Arc::new(sur))
//!     .search(&space, &EdpEvaluator::new(&model), Budget::samples(5_000), &mut rng);
//! ```

pub mod autodiff;
mod mind_mappings;
mod model;
mod nn;

pub use autodiff::{finite_difference_gradient, AdamState};
pub use mind_mappings::{MindMappings, MindMappingsConfig};
pub use model::{Surrogate, TrainConfig, TrainReport};
pub use nn::Mlp;
