//! A small from-scratch multilayer perceptron with backpropagation and
//! Adam — the substrate for the Mind-Mappings-style differentiable
//! surrogate (§4.3: "trains a neural-network-based surrogate model ... uses
//! the loss gradient to update its solution").

use crate::autodiff::AdamState;
use rand::Rng;

/// One fully connected layer with its Adam state.
#[derive(Debug, Clone)]
struct Dense {
    inputs: usize,
    outputs: usize,
    /// Row-major `outputs × inputs`.
    w: Vec<f64>,
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    adam_w: AdamState,
    adam_b: AdamState,
}

impl Dense {
    fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        // He initialization (ReLU activations).
        let scale = (2.0 / inputs as f64).sqrt();
        let w = (0..inputs * outputs).map(|_| rng.gen_range(-1.0..1.0) * scale).collect();
        Dense {
            inputs,
            outputs,
            w,
            b: vec![0.0; outputs],
            gw: vec![0.0; inputs * outputs],
            gb: vec![0.0; outputs],
            adam_w: AdamState::new(inputs * outputs),
            adam_b: AdamState::new(outputs),
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }

    /// Backprop through this layer: accumulates parameter gradients and
    /// returns the gradient w.r.t. the input.
    fn backward(&mut self, x: &[f64], grad_out: &[f64]) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.inputs];
        for (o, &g) in grad_out.iter().enumerate().take(self.outputs) {
            self.gb[o] += g;
            let row = o * self.inputs;
            for (i, gi) in grad_in.iter_mut().enumerate() {
                self.gw[row + i] += g * x[i];
                *gi += g * self.w[row + i];
            }
        }
        grad_in
    }

    /// Input gradient only (inference-time; parameters untouched).
    fn input_grad(&self, grad_out: &[f64]) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.inputs];
        for (o, &g) in grad_out.iter().enumerate().take(self.outputs) {
            let row = o * self.inputs;
            for (i, gi) in grad_in.iter_mut().enumerate() {
                *gi += g * self.w[row + i];
            }
        }
        grad_in
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn adam_step(&mut self, lr: f64, t: usize, batch: f64) {
        self.adam_w.step(&mut self.w, &self.gw, lr, t, batch);
        self.adam_b.step(&mut self.b, &self.gb, lr, t, batch);
    }
}

/// A multilayer perceptron with ReLU hidden activations and a linear
/// output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`sizes[0]` inputs,
    /// `sizes.last()` outputs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes.windows(2).map(|w| Dense::new(w[0], w[1], rng)).collect();
        Mlp { layers }
    }

    /// Input dimensionality.
    pub fn input_len(&self) -> usize {
        self.layers[0].inputs
    }

    /// Output dimensionality.
    pub fn output_len(&self) -> usize {
        self.layers.last().expect("non-empty").outputs
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let last = self.layers.len() - 1;
        for (li, l) in self.layers.iter().enumerate() {
            l.forward(&cur, &mut next);
            if li != last {
                for v in &mut next {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Forward pass keeping the per-layer inputs (pre-activation inputs to
    /// each layer) for backprop.
    fn forward_cached(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let last = self.layers.len() - 1;
        for (li, l) in self.layers.iter().enumerate() {
            inputs.push(cur.clone());
            l.forward(&cur, &mut next);
            if li != last {
                for v in &mut next {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        (inputs, cur)
    }

    /// One training example of squared-error loss `0.5 * Σ (out - y)²`:
    /// accumulates parameter gradients and returns the loss.
    pub fn accumulate_grad(&mut self, x: &[f64], y: &[f64]) -> f64 {
        let (inputs, out) = self.forward_cached(x);
        let mut grad: Vec<f64> = out.iter().zip(y).map(|(o, t)| o - t).collect();
        let loss = 0.5 * grad.iter().map(|g| g * g).sum::<f64>();
        for li in (0..self.layers.len()).rev() {
            // ReLU derivative for hidden layers: gate by the *post*
            // activation, which equals the next layer's cached input.
            if li != self.layers.len() - 1 {
                let post = &inputs[li + 1];
                for (g, &p) in grad.iter_mut().zip(post) {
                    if p <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[li].backward(&inputs[li], &grad);
        }
        loss
    }

    /// Gradient of `Σ weights·outputs` w.r.t. the *input* vector, without
    /// touching parameters — the core of gradient-based mapping search.
    pub fn input_gradient(&self, x: &[f64], output_weights: &[f64]) -> Vec<f64> {
        let (inputs, _) = self.forward_cached(x);
        let mut grad = output_weights.to_vec();
        for li in (0..self.layers.len()).rev() {
            if li != self.layers.len() - 1 {
                let post = &inputs[li + 1];
                for (g, &p) in grad.iter_mut().zip(post) {
                    if p <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[li].input_grad(&grad);
        }
        grad
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Applies one Adam update using the accumulated gradients (averaged
    /// over `batch` examples) at optimizer step `t` (1-based).
    pub fn adam_step(&mut self, lr: f64, t: usize, batch: usize) {
        for l in &mut self.layers {
            l.adam_step(lr, t, batch as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mlp = Mlp::new(&[4, 8, 2], &mut rng);
        assert_eq!(mlp.input_len(), 4);
        assert_eq!(mlp.output_len(), 2);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(mlp.forward(&[0.0; 4]).len(), 2);
    }

    #[test]
    fn parameter_gradient_matches_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let x = [0.3, -0.7, 1.1];
        let y = [0.5, -0.2];
        mlp.zero_grad();
        mlp.accumulate_grad(&x, &y);
        // Check a handful of weights in each layer numerically.
        let eps = 1e-6;
        for li in 0..mlp.layers.len() {
            for wi in [0usize, 1, 3] {
                let analytic = mlp.layers[li].gw[wi];
                let orig = mlp.layers[li].w[wi];
                mlp.layers[li].w[wi] = orig + eps;
                let out = mlp.forward(&x);
                let lp: f64 = 0.5 * out.iter().zip(&y).map(|(o, t)| (o - t) * (o - t)).sum::<f64>();
                mlp.layers[li].w[wi] = orig - eps;
                let out = mlp.forward(&x);
                let lm: f64 = 0.5 * out.iter().zip(&y).map(|(o, t)| (o - t) * (o - t)).sum::<f64>();
                mlp.layers[li].w[wi] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "layer {li} w{wi}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mlp = Mlp::new(&[3, 6, 1], &mut rng);
        let x = [0.4, 0.9, -0.3];
        let g = mlp.input_gradient(&x, &[1.0]);
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let numeric = (mlp.forward(&xp)[0] - mlp.forward(&xm)[0]) / (2.0 * eps);
            assert!((g[i] - numeric).abs() < 1e-5, "input {i}: {} vs {numeric}", g[i]);
        }
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let target = |x: &[f64]| 2.0 * x[0] - 1.5 * x[1] + 0.3;
        let data: Vec<[f64; 2]> = (0..200)
            .map(|_| [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let mut t = 0;
        for _epoch in 0..300 {
            mlp.zero_grad();
            let mut loss = 0.0;
            for x in &data {
                loss += mlp.accumulate_grad(x, &[target(x)]);
            }
            t += 1;
            mlp.adam_step(1e-2, t, data.len());
            if loss / (data.len() as f64) < 1e-5 {
                break;
            }
        }
        let mse: f64 = data
            .iter()
            .map(|x| {
                let e = mlp.forward(x)[0] - target(x);
                e * e
            })
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < 2e-2, "MSE {mse} too high");
    }
}
