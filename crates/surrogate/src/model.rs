//! The differentiable surrogate cost model (Mind Mappings §4.3): an MLP
//! trained offline on cost-model samples that predicts `log10(latency)` and
//! `log10(energy)` from workload + mapping features.

use crate::nn::Mlp;
use costmodel::CostModel;
use mapping::features::{feature_len, features};
use mapping::MapSpace;
use problem::Problem;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// Surrogate training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Cost-model samples to collect per training workload ("offline
    /// sampling of millions of data points" in the paper; scaled down to
    /// match our fast analytical model).
    pub samples_per_workload: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Fraction of data held out for validation.
    pub holdout: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            samples_per_workload: 8_000,
            hidden: vec![64, 64],
            epochs: 30,
            batch: 64,
            lr: 1e-3,
            holdout: 0.1,
        }
    }
}

/// Training outcome diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean squared error on the training set (normalized targets).
    pub train_mse: f64,
    /// Mean squared error on the holdout set (normalized targets).
    pub holdout_mse: f64,
    /// Number of training examples.
    pub examples: usize,
}

/// A trained surrogate bound to the accelerator configuration whose data it
/// was trained on (the paper's key limitation: it does *not* generalize to
/// other accelerator configurations, §4.3.2).
#[derive(Debug, Clone)]
pub struct Surrogate {
    mlp: Mlp,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: Vec<f64>,
    y_std: Vec<f64>,
    num_dims: usize,
    num_levels: usize,
    /// Name of the architecture the training data came from.
    pub trained_on: String,
}

impl Surrogate {
    /// Collects random-mapping samples from each model and trains the MLP.
    /// All models must share the same problem dimensionality and level
    /// count (e.g. several CONV2D layers on one accelerator).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or signatures differ.
    pub fn train(
        models: &[&dyn CostModel],
        cfg: &TrainConfig,
        rng: &mut SmallRng,
    ) -> (Surrogate, TrainReport) {
        assert!(!models.is_empty(), "need at least one training workload");
        let num_dims = models[0].problem().num_dims();
        let num_levels = models[0].arch().num_levels();
        let trained_on = models[0].arch().name().to_string();
        let in_len = num_dims + feature_len(num_dims, num_levels);

        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<[f64; 2]> = Vec::new();
        for model in models {
            assert_eq!(model.problem().num_dims(), num_dims, "mixed dimensionality");
            assert_eq!(model.arch().num_levels(), num_levels, "mixed hierarchies");
            let space = MapSpace::new(model.problem().clone(), model.arch().clone());
            let mut collected = 0;
            while collected < cfg.samples_per_workload {
                let m = space.random(rng);
                let Ok(cost) = model.evaluate(&m) else { continue };
                xs.push(Self::assemble_input(model.problem(), &features(&m)));
                ys.push([cost.latency_cycles.log10(), (cost.energy_uj.max(1e-30)).log10()]);
                collected += 1;
            }
        }

        // Normalize inputs and targets.
        let n = xs.len() as f64;
        let mut x_mean = vec![0.0; in_len];
        let mut x_std = vec![0.0; in_len];
        for x in &xs {
            for (m, v) in x_mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        x_mean.iter_mut().for_each(|m| *m /= n);
        for x in &xs {
            for i in 0..in_len {
                x_std[i] += (x[i] - x_mean[i]).powi(2);
            }
        }
        x_std.iter_mut().for_each(|s| {
            *s = (*s / n).sqrt();
            // Constant features (e.g. spatial factors at fanout-1 levels)
            // get unit scale so they stay exactly zero after normalization
            // instead of amplifying noise by ~1e9.
            if *s < 1e-8 {
                *s = 1.0;
            }
        });
        let mut y_mean = vec![0.0; 2];
        let mut y_std = vec![0.0; 2];
        for y in &ys {
            y_mean[0] += y[0];
            y_mean[1] += y[1];
        }
        y_mean.iter_mut().for_each(|m| *m /= n);
        for y in &ys {
            y_std[0] += (y[0] - y_mean[0]).powi(2);
            y_std[1] += (y[1] - y_mean[1]).powi(2);
        }
        y_std.iter_mut().for_each(|s| *s = (*s / n).sqrt().max(1e-9));

        let norm_x = |x: &[f64]| -> Vec<f64> {
            x.iter().enumerate().map(|(i, v)| (v - x_mean[i]) / x_std[i]).collect()
        };
        let data: Vec<(Vec<f64>, [f64; 2])> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| {
                (norm_x(x), [(y[0] - y_mean[0]) / y_std[0], (y[1] - y_mean[1]) / y_std[1]])
            })
            .collect();

        let mut indices: Vec<usize> = (0..data.len()).collect();
        indices.shuffle(rng);
        let holdout_n = ((data.len() as f64) * cfg.holdout) as usize;
        let (val_idx, train_idx) = indices.split_at(holdout_n);

        let mut sizes = vec![in_len];
        sizes.extend(&cfg.hidden);
        sizes.push(2);
        let mut mlp = Mlp::new(&sizes, rng);

        let mut t = 0usize;
        let mut train_mse = f64::INFINITY;
        let mut order: Vec<usize> = train_idx.to_vec();
        for _epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(cfg.batch) {
                mlp.zero_grad();
                for &i in chunk {
                    epoch_loss += mlp.accumulate_grad(&data[i].0, &data[i].1);
                }
                t += 1;
                mlp.adam_step(cfg.lr, t, chunk.len());
            }
            train_mse = epoch_loss / train_idx.len().max(1) as f64;
        }
        let holdout_mse = if val_idx.is_empty() {
            train_mse
        } else {
            val_idx
                .iter()
                .map(|&i| {
                    let out = mlp.forward(&data[i].0);
                    0.5 * out
                        .iter()
                        .zip(&data[i].1)
                        .map(|(o, t)| (o - t) * (o - t))
                        .sum::<f64>()
                })
                .sum::<f64>()
                / val_idx.len() as f64
        };

        let report = TrainReport { train_mse, holdout_mse, examples: data.len() };
        (
            Surrogate { mlp, x_mean, x_std, y_mean, y_std, num_dims, num_levels, trained_on },
            report,
        )
    }

    /// The raw (workload + mapping) input vector.
    fn assemble_input(problem: &Problem, mapping_feats: &[f64]) -> Vec<f64> {
        let mut x: Vec<f64> = problem.bounds().iter().map(|&b| (b as f64).log2()).collect();
        x.extend_from_slice(mapping_feats);
        x
    }

    /// Predicted `(log10 latency, log10 energy)`.
    ///
    /// # Panics
    ///
    /// Panics if the problem's dimensionality differs from the training
    /// signature.
    pub fn predict_logs(&self, problem: &Problem, mapping_feats: &[f64]) -> (f64, f64) {
        assert_eq!(problem.num_dims(), self.num_dims, "dimensionality mismatch");
        let x = Self::assemble_input(problem, mapping_feats);
        let xn: Vec<f64> =
            x.iter().enumerate().map(|(i, v)| (v - self.x_mean[i]) / self.x_std[i]).collect();
        let out = self.mlp.forward(&xn);
        (out[0] * self.y_std[0] + self.y_mean[0], out[1] * self.y_std[1] + self.y_mean[1])
    }

    /// Predicted `log10(EDP)`.
    pub fn predict_edp_log(&self, problem: &Problem, mapping_feats: &[f64]) -> f64 {
        let (l, e) = self.predict_logs(problem, mapping_feats);
        l + e
    }

    /// Gradient of predicted `log10(EDP)` with respect to the *mapping*
    /// features (the workload part of the input is fixed during search).
    pub fn edp_gradient(&self, problem: &Problem, mapping_feats: &[f64]) -> Vec<f64> {
        let x = Self::assemble_input(problem, mapping_feats);
        let xn: Vec<f64> =
            x.iter().enumerate().map(|(i, v)| (v - self.x_mean[i]) / self.x_std[i]).collect();
        // d(log10 EDP)/d out = (y_std[0], y_std[1]) since EDPlog = Σ yi*std+mean.
        let grad_xn = self.mlp.input_gradient(&xn, &[self.y_std[0], self.y_std[1]]);
        // Chain through normalization, drop the workload prefix.
        grad_xn
            .iter()
            .enumerate()
            .skip(self.num_dims)
            .map(|(i, g)| g / self.x_std[i])
            .collect()
    }

    /// Expected mapping-feature vector length.
    pub fn mapping_feature_len(&self) -> usize {
        feature_len(self.num_dims, self.num_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use costmodel::DenseModel;
    use rand::SeedableRng;

    fn quick_cfg() -> TrainConfig {
        TrainConfig { samples_per_workload: 1500, epochs: 15, ..TrainConfig::default() }
    }

    #[test]
    fn surrogate_learns_cost_landscape() {
        let p = problem::Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3);
        let a = Arch::accel_b();
        let model = DenseModel::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(0);
        let (sur, report) = Surrogate::train(&[&model], &quick_cfg(), &mut rng);
        assert!(report.holdout_mse < 0.25, "holdout MSE {:.3} too high", report.holdout_mse);
        // Spot-check: prediction within ~0.5 orders of magnitude on fresh
        // samples, and ranks a good mapping below a bad one.
        let space = MapSpace::new(p.clone(), a);
        let mut errs = Vec::new();
        let mut pairs = Vec::new();
        for _ in 0..50 {
            let m = space.random(&mut rng);
            let Ok(c) = costmodel::CostModel::evaluate(&model, &m) else { continue };
            let pred = sur.predict_edp_log(&p, &features(&m));
            let truth = c.edp().log10();
            errs.push((pred - truth).abs());
            pairs.push((pred, truth));
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.6, "mean |log10 error| {mean_err:.3}");
        // Rank correlation (concordant fraction) above chance.
        let mut concordant = 0;
        let mut total = 0;
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                total += 1;
                if (pairs[i].0 - pairs[j].0).signum() == (pairs[i].1 - pairs[j].1).signum() {
                    concordant += 1;
                }
            }
        }
        assert!(
            concordant as f64 / total as f64 > 0.75,
            "rank agreement {concordant}/{total}"
        );
    }

    #[test]
    fn gradient_matches_finite_difference_of_prediction() {
        let p = problem::Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        let model = DenseModel::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = TrainConfig { samples_per_workload: 300, epochs: 3, ..TrainConfig::default() };
        let (sur, _) = Surrogate::train(&[&model], &cfg, &mut rng);
        let space = MapSpace::new(p.clone(), a);
        let m = space.random(&mut rng);
        let feats = features(&m);
        let g = sur.edp_gradient(&p, &feats);
        assert_eq!(g.len(), feats.len());
        let eps = 1e-5;
        for i in [0usize, 5, 20] {
            let mut fp = feats.clone();
            fp[i] += eps;
            let mut fm = feats.clone();
            fm[i] -= eps;
            let numeric =
                (sur.predict_edp_log(&p, &fp) - sur.predict_edp_log(&p, &fm)) / (2.0 * eps);
            assert!((g[i] - numeric).abs() < 1e-4, "feat {i}: {} vs {numeric}", g[i]);
        }
    }

    #[test]
    fn records_training_architecture() {
        let p = problem::Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let model = DenseModel::new(p, Arch::accel_a());
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = TrainConfig { samples_per_workload: 200, epochs: 2, ..TrainConfig::default() };
        let (sur, report) = Surrogate::train(&[&model], &cfg, &mut rng);
        assert_eq!(sur.trained_on, "Accel-A");
        assert_eq!(report.examples, 200);
    }
}
