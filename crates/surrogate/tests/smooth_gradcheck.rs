//! Gradient-check property suite for the smooth relaxation in
//! `costmodel::smooth`: reverse-mode gradients of `ln EDP` must agree with
//! central finite differences across seeded random legal points, on both
//! architecture presets, dense and sparse.
//!
//! Legal mappings sit on the integer lattice, where every relaxation gate
//! (smoothstep non-unit indicators, loop-position gates) is at a flat 0/1
//! endpoint — so the check exercises exactly the points DOSA projects
//! through. A second pass nudges the points off-lattice to exercise the
//! gate interiors.

use arch::{Arch, SparseCaps};
use costmodel::SmoothContext;
use mapping::MapSpace;
use problem::{Density, Problem};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use surrogate::finite_difference_gradient;

const EPS: f64 = 1e-6;

fn check_points(sctx: &SmoothContext, space: &MapSpace, seed: u64, n: usize, nudge: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for k in 0..n {
        let m = space.random(&mut rng);
        let mut feats = mapping::features::features(&m);
        if nudge {
            for (i, f) in feats.iter_mut().enumerate() {
                *f += 0.05 + 0.021 * ((i + k) % 7) as f64;
            }
        }
        let (_, analytic) = sctx.cost_and_grad(&feats);
        let f = |x: &[f64]| sctx.cost(x).edp().ln();
        let central = finite_difference_gradient(f, &feats, EPS);
        let mid = f(&feats);
        for i in 0..feats.len() {
            // The relaxation is piecewise smooth: at a kink (e.g. the
            // roofline max or the soft-spill hinge landing exactly on a
            // lattice point) the reverse-mode subgradient must match one of
            // the one-sided derivatives, while the central difference
            // averages the two branches. Accept central (tight tolerance)
            // or either one-sided slope (O(eps) truncation tolerance).
            let mut probe = feats.clone();
            probe[i] = feats[i] + EPS;
            let fwd = (f(&probe) - mid) / EPS;
            probe[i] = feats[i] - EPS;
            let bwd = (mid - f(&probe)) / EPS;
            let ok = [(central[i], 1e-4), (fwd, 5e-4), (bwd, 5e-4)]
                .iter()
                .any(|&(n, tol)| (analytic[i] - n).abs() < tol * (1.0 + n.abs()));
            assert!(
                ok,
                "{} point {k} feature {i}: reverse-mode {} vs central {} fwd {fwd} bwd {bwd}",
                sctx.problem().name(),
                analytic[i],
                central[i]
            );
        }
    }
}

fn cases() -> Vec<(Problem, Arch, Density, SparseCaps)> {
    let mut out = Vec::new();
    for arch in [Arch::accel_a(), Arch::accel_b()] {
        for p in [problem::zoo::resnet_conv4(), Problem::gemm("Tiny GEMM", 2, 32, 32, 32)] {
            out.push((p.clone(), arch.clone(), Density::DENSE, SparseCaps::none()));
            out.push((p, arch.clone(), Density::weight_sparse(0.3), SparseCaps::flexible()));
        }
    }
    out
}

#[test]
fn reverse_mode_matches_finite_difference_on_lattice() {
    for (i, (p, a, density, caps)) in cases().into_iter().enumerate() {
        let sctx = SmoothContext::new(&p, &a, density, &caps);
        let space = MapSpace::new(p, a);
        check_points(&sctx, &space, 40 + i as u64, 6, false);
    }
}

#[test]
fn reverse_mode_matches_finite_difference_off_lattice() {
    for (i, (p, a, density, caps)) in cases().into_iter().enumerate() {
        let sctx = SmoothContext::new(&p, &a, density, &caps);
        let space = MapSpace::new(p, a);
        check_points(&sctx, &space, 70 + i as u64, 6, true);
    }
}
