//! Seeded property-based differential harness: the analytical engine vs.
//! the brute-force reference simulator on hundreds of random *legal*
//! temporal mappings.
//!
//! This is the continuously-enforced oracle behind the cost model's trust
//! story (see DESIGN.md "Trust boundary & invariants"): for every sampled
//! mapping, every per-level read and write count the closed-form
//! multiplicity analysis predicts must equal what actually happens when
//! the loop nest executes. The generator is deliberately in-tree and
//! seeded — the sweep is reproducible in CI and bounded well under a
//! minute.

use arch::Arch;
use costmodel::{CostModel, DenseModel};
use mapping::{MapSpace, Mapping};
use problem::Problem;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use refsim::{demote_spatial, simulate};

/// Mappings per (problem, arch) case; 8 cases × 30 = 240 ≥ the 200 the
/// acceptance criteria require.
const TRIALS_PER_CASE: usize = 30;
const REQUIRED_TOTAL: usize = 200;
const SEED: u64 = 0x5eed_d1ff;

/// Small, fully enumerable workloads covering every operator family the
/// problem crate models.
fn problems() -> Vec<Problem> {
    vec![
        Problem::conv2d("conv", 2, 4, 4, 5, 5, 3, 3),
        Problem::gemm("gemm", 2, 8, 8, 8),
        Problem::depthwise_conv2d("dw", 2, 6, 5, 5, 3, 3),
        Problem::pointwise_conv2d("pw", 2, 8, 4, 6, 6),
    ]
}

/// Draws a random legal *temporal* mapping: legality-filtered sampling,
/// spatial factors folded away (extent-preserving, so no repair), then an
/// independent shuffle of every level's loop order — `MapSpace::random`
/// only randomizes orders at fanout boundaries, and the order is exactly
/// the stationarity-deciding input the oracle must stress.
fn random_temporal(space: &MapSpace, rng: &mut SmallRng) -> Mapping {
    let mut m = demote_spatial(&space.random(rng));
    let d = m.num_dims();
    for level in m.levels_mut() {
        let mut order: Vec<usize> = (0..d).collect();
        order.shuffle(rng);
        level.order = order;
    }
    m
}

fn assert_agreement(p: &Problem, a: &Arch, m: &Mapping) {
    let model = DenseModel::new(p.clone(), a.clone());
    let analytical = model.evaluate_detailed(m).expect("legal mapping");
    let simulated = simulate(p, a, m).expect("simulable");
    assert_eq!(analytical.macs as u64, simulated.macs, "MAC counts differ for\n{m}");
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0);
    for (li, (an, si)) in analytical.per_level.iter().zip(&simulated.per_level).enumerate() {
        assert!(
            close(an.reads, si.reads),
            "level {li} reads: analytical {} vs simulated {} on {} / {} for\n{m}",
            an.reads,
            si.reads,
            p.name(),
            a.name(),
        );
        assert!(
            close(an.writes, si.writes),
            "level {li} writes: analytical {} vs simulated {} on {} / {} for\n{m}",
            an.writes,
            si.writes,
            p.name(),
            a.name(),
        );
    }
}

#[test]
fn analytical_engine_agrees_with_refsim_on_random_legal_mappings() {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut checked = 0usize;
    for p in &problems() {
        for a in [Arch::accel_a(), Arch::accel_b()] {
            let space = MapSpace::new(p.clone(), a.clone());
            for _ in 0..TRIALS_PER_CASE {
                let m = random_temporal(&space, &mut rng);
                assert!(m.is_legal(p, &a), "generator produced an illegal mapping");
                assert_agreement(p, &a, &m);
                checked += 1;
            }
        }
    }
    assert!(checked >= REQUIRED_TOTAL, "only {checked} mappings checked");
}

/// The harness is seeded: two runs draw the identical mapping sequence, so
/// a CI failure is reproducible locally from the seed alone.
#[test]
fn harness_is_reproducible() {
    let p = Problem::gemm("gemm", 2, 8, 8, 8);
    let space = MapSpace::new(p.clone(), Arch::accel_b());
    let mut a = SmallRng::seed_from_u64(SEED);
    let mut b = SmallRng::seed_from_u64(SEED);
    for _ in 0..10 {
        assert_eq!(
            format!("{:?}", random_temporal(&space, &mut a)),
            format!("{:?}", random_temporal(&space, &mut b)),
        );
    }
}
