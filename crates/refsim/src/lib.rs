//! Reference loop-nest simulator.
//!
//! Executes a mapping's loop nest iteration by iteration, tracking the
//! resident data tile of every (storage level, tensor) pair and counting
//! fill/drain events *by observation* instead of by formula. On problems
//! small enough to enumerate, this validates the analytical cost model the
//! way the paper's Timeloop was "validated against real chips": every
//! refetch the analytical multiplicity machinery predicts must actually
//! happen in the executed nest, and none besides.
//!
//! # Scope: temporal mappings only
//!
//! The simulator enumerates a *sequential* loop nest. Spatial loops add
//! per-instance buffers and multicast accounting that the analytical model
//! covers with closed forms; simulating them would require one resident
//! tile per instance, which this brute-force oracle deliberately does not
//! model. [`simulate`] therefore **rejects any mapping with a spatial
//! factor above 1** with [`SimError::SpatialUnsupported`] — it never
//! silently returns wrong counts. Use [`demote_spatial`] to fold spatial
//! factors into temporal ones first: demotion keeps every level's tile
//! extents (and therefore footprints and legality) unchanged, it only
//! serializes the parallelism — the temporal machinery is the part with
//! order-dependent reuse subtleties worth brute-force checking.
//!
//! # Example
//!
//! ```
//! use refsim::simulate;
//!
//! let p = problem::Problem::gemm("g", 1, 4, 4, 4);
//! let a = arch::Arch::accel_b();
//! let m = mapping::Mapping::trivial(&p, &a);
//! let counts = simulate(&p, &a, &m).unwrap();
//! assert_eq!(counts.macs, 64);
//! ```

use arch::Arch;
use mapping::{Mapping, MappingError};
use problem::{Problem, TensorKind};
use std::collections::HashSet;

/// Traffic observed at one storage level by simulation, mirroring
/// [`costmodel::LevelTraffic`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimLevelTraffic {
    /// Words read out of this level.
    pub reads: f64,
    /// Words written into this level.
    pub writes: f64,
}

/// Simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCounts {
    /// Per-level traffic, outermost first.
    pub per_level: Vec<SimLevelTraffic>,
    /// Executed multiply-accumulates.
    pub macs: u64,
}

/// Error cases for [`simulate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The mapping is illegal for the problem/architecture.
    Illegal(MappingError),
    /// The mapping uses spatial loops, which the sequential simulator does
    /// not model (see the [module docs](self)); run [`demote_spatial`]
    /// first.
    SpatialUnsupported,
    /// The iteration space is too large to enumerate (guard rail).
    TooLarge(u128),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Illegal(e) => write!(f, "illegal mapping: {e}"),
            SimError::SpatialUnsupported => write!(
                f,
                "mapping has spatial loops, which the sequential reference \
                 simulator does not model; demote them to temporal loops \
                 first (refsim::demote_spatial)"
            ),
            SimError::TooLarge(n) => write!(f, "iteration space too large: {n}"),
        }
    }
}

/// Folds every spatial factor into the temporal factor at the same level,
/// returning a purely temporal mapping [`simulate`] accepts.
///
/// Per level, `temporal[d] × spatial[d]` is preserved, so every level's
/// tile extents — and with them footprints, capacity legality, and the
/// per-dimension factor products — are unchanged; only the parallelism is
/// serialized. A legal mapping therefore stays legal (a spatial product of
/// 1 trivially satisfies any fanout) and needs no capacity repair.
pub fn demote_spatial(m: &Mapping) -> Mapping {
    let mut out = m.clone();
    for level in out.levels_mut() {
        for dim in 0..level.spatial.len() {
            level.temporal[dim] *= level.spatial[dim];
            level.spatial[dim] = 1;
        }
    }
    out
}

impl std::error::Error for SimError {}

/// Hard cap on enumerable iterations.
pub const MAX_ITERATIONS: u128 = 50_000_000;

/// Runs the mapping's loop nest and counts per-level traffic.
///
/// # Errors
///
/// Returns [`SimError::Illegal`] for illegal mappings,
/// [`SimError::SpatialUnsupported`] for mappings with spatial loops (fold
/// them away with [`demote_spatial`] first), or [`SimError::TooLarge`] for
/// iteration spaces beyond [`MAX_ITERATIONS`].
pub fn simulate(problem: &Problem, arch: &Arch, m: &Mapping) -> Result<SimCounts, SimError> {
    m.validate(problem, arch).map_err(SimError::Illegal)?;
    if m.levels().iter().any(|l| l.spatial_product() > 1) {
        return Err(SimError::SpatialUnsupported);
    }
    let total = problem.total_macs();
    if total > MAX_ITERATIONS {
        return Err(SimError::TooLarge(total));
    }

    let nl = arch.num_levels();
    let tensors = problem.tensors();

    // The temporal loop list, outermost first: (dim, bound, level).
    let loops: Vec<(usize, u64, usize)> = m
        .nest()
        .iter()
        .filter(|l| !l.spatial && l.bound > 1)
        .map(|l| (l.dim, l.bound, l.level))
        .collect();

    // There are nl boundaries: child level i in 1..=nl, parent i-1, where
    // i == nl is the per-MAC virtual register level (tile_extents(nl) is
    // the unit tile). The tile id of tensor T at child level i is the
    // tuple of values of loops at levels < i over dims relevant to T. A
    // fill happens whenever the id changes; outputs additionally
    // distinguish first-time ids (no accumulation read) from revisits.
    let mut footprint: Vec<Vec<f64>> = Vec::with_capacity(nl);
    for i in 1..=nl {
        let ext = m.tile_extents(i);
        footprint.push(tensors.iter().map(|t| t.projection.footprint_f64(&ext)).collect());
    }

    // Precompute, per boundary and tensor, which loop positions form the id.
    let id_positions: Vec<Vec<Vec<usize>>> = (1..=nl)
        .map(|i| {
            tensors
                .iter()
                .map(|t| {
                    loops
                        .iter()
                        .enumerate()
                        .filter(|(_, &(dim, _, level))| {
                            level < i && t.projection.depends_on(dim)
                        })
                        .map(|(pos, _)| pos)
                        .collect()
                })
                .collect()
        })
        .collect();

    let nt = tensors.len();
    let mut prev_id: Vec<Vec<Option<Vec<u64>>>> = vec![vec![None; nt]; nl];
    let mut seen_out: Vec<HashSet<Vec<u64>>> = vec![HashSet::new(); nl];
    let mut fills = vec![vec![0u64; nt]; nl]; // id changes per boundary/tensor
    let mut out_revisits = vec![0u64; nl];

    // Odometer over the loop list (innermost advances fastest).
    let mut counters = vec![0u64; loops.len()];
    let mut macs = 0u64;
    let out_idx = tensors
        .iter()
        .position(|t| t.kind == TensorKind::Output)
        .expect("problems have one output");

    loop {
        macs += 1;
        for bi in 0..nl {
            for (ti, _) in tensors.iter().enumerate() {
                let id: Vec<u64> =
                    id_positions[bi][ti].iter().map(|&pos| counters[pos]).collect();
                if prev_id[bi][ti].as_ref() != Some(&id) {
                    fills[bi][ti] += 1;
                    if ti == out_idx && !seen_out[bi].insert(id.clone()) {
                        out_revisits[bi] += 1;
                    }
                    prev_id[bi][ti] = Some(id);
                }
            }
        }
        // Advance the odometer.
        let mut pos = loops.len();
        loop {
            if pos == 0 {
                // Done: assemble traffic exactly as the analytical engine
                // does for the no-spatial case.
                let mut per_level = vec![SimLevelTraffic::default(); nl];
                for bi in 0..nl {
                    let child = bi + 1; // child level index in 1..=nl
                    for (ti, t) in tensors.iter().enumerate() {
                        let f = footprint[bi][ti];
                        let n = fills[bi][ti] as f64;
                        match t.kind {
                            TensorKind::Input | TensorKind::Weight => {
                                per_level[child - 1].reads += n * f;
                                if child < nl {
                                    per_level[child].writes += n * f;
                                }
                            }
                            TensorKind::Output => {
                                let drains = n * f;
                                let refills = out_revisits[bi] as f64 * f;
                                per_level[child - 1].writes += drains;
                                per_level[child - 1].reads += refills;
                                if child < nl {
                                    per_level[child].reads += drains;
                                    per_level[child].writes += refills;
                                }
                            }
                        }
                    }
                }
                return Ok(SimCounts { per_level, macs });
            }
            pos -= 1;
            counters[pos] += 1;
            if counters[pos] < loops[pos].1 {
                break;
            }
            counters[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_gemm_macs() {
        let p = Problem::gemm("g", 1, 4, 4, 4);
        let a = Arch::accel_b();
        let m = Mapping::trivial(&p, &a);
        let c = simulate(&p, &a, &m).expect("simulable");
        assert_eq!(c.macs, 64);
        assert_eq!(c.per_level.len(), 3);
    }

    #[test]
    fn rejects_spatial_mappings() {
        let p = Problem::gemm("g", 1, 4, 4, 4);
        let a = Arch::accel_b();
        let mut m = Mapping::trivial(&p, &a);
        m.levels_mut()[0].temporal[1] = 2;
        m.levels_mut()[1].spatial[1] = 2;
        assert_eq!(simulate(&p, &a, &m), Err(SimError::SpatialUnsupported));
        assert!(simulate(&p, &a, &m).unwrap_err().to_string().contains("demote"));
        // Demotion makes the same mapping simulable without repair.
        let t = demote_spatial(&m);
        assert!(t.is_legal(&p, &a));
        assert!(simulate(&p, &a, &t).is_ok());
    }

    #[test]
    fn demote_spatial_preserves_extents_and_legality() {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        let s = mapping::MapSpace::new(p.clone(), a.clone());
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(4);
        for _ in 0..50 {
            let m = s.random(&mut rng);
            let t = demote_spatial(&m);
            assert!(t.is_legal(&p, &a), "demotion broke legality");
            assert_eq!(t.used_lanes(), 1);
            for li in 0..a.num_levels() {
                assert_eq!(m.tile_extents(li), t.tile_extents(li), "extents changed at {li}");
            }
        }
    }

    #[test]
    fn rejects_oversized_problems() {
        let p = Problem::conv2d("big", 16, 256, 256, 14, 14, 3, 3);
        let a = Arch::accel_b();
        let m = Mapping::trivial(&p, &a);
        assert!(matches!(simulate(&p, &a, &m), Err(SimError::TooLarge(_))));
    }
}
