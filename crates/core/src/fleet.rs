//! Fleet mode: coordinator/worker fan-out for `mapex serve`.
//!
//! A coordinator (`mapex serve --coordinator`) accepts the same client
//! ops as a standalone daemon, but shards `sweep` (per-layer fan-out)
//! and `search` (population-island fan-out) across workers
//! (`mapex serve --worker <coordinator-addr>`) that register over the
//! same JSON-lines protocol. This module holds the topology-agnostic
//! pieces; `mse::service` wires them to sockets and executes shards.
//!
//! Robustness model, in decreasing order of importance:
//!
//! 1. **Exactly-once accounting.** Every shard id is dispatched at-least
//!    once and *consumed* exactly once: the first result for a shard id
//!    wins, later copies are counted and discarded. The sweep driver
//!    flushes layers strictly in order into the fsync'd checkpoint, so a
//!    coordinator restart resumes bit-identically.
//! 2. **Leases, not connections, define liveness.** A worker that stops
//!    heartbeating past [`FleetConfig::lease_ms`] loses its lease: its
//!    in-flight shards are re-enqueued. Its connection is *not* closed —
//!    a zombie that eventually answers produces a discarded duplicate,
//!    not a protocol error (and closing it could race a valid result).
//! 3. **Retry on worker death.** A dropped connection or expired lease
//!    re-dispatches in-flight shards; a shard result carrying a
//!    *transient* error is retried up to [`FleetConfig::shard_retries`]
//!    times before the job fails. Permanent errors fail the job at once.
//! 4. **Work stealing.** With no pending work and an idle worker, the
//!    oldest outstanding shard is re-issued to the idle worker; first
//!    answer wins (duplicates discarded by shard id).
//! 5. **No split-brain.** Shard ids carry a per-coordinator epoch; a
//!    restarted coordinator cannot mistake a result computed for its
//!    predecessor for one of its own (it lands in `stale_results`).
//!
//! Everything here is deterministic where it matters: shard *results*
//! depend only on (problem, arch, density, mapper, samples, seed, layer
//! index), never on which worker ran them, when, or how many attempts
//! it took.

use crate::json;
use crate::runtime::LayerCheckpoint;
use crate::service::ErrorKind;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which of the three serve topologies this daemon plays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeRole {
    /// A single process serving clients directly (the default).
    Standalone,
    /// Accepts client ops and shards `sweep`/`search` across registered
    /// workers (falling back to local execution when none are live).
    Coordinator,
    /// Registers with a coordinator and executes shards for it, while
    /// still serving direct client ops on its own listener.
    Worker {
        /// `host:port` of the coordinator to register with.
        coordinator: String,
    },
}

impl ServeRole {
    /// Canonical wire name (`health`/`stats` responses).
    pub fn name(&self) -> &'static str {
        match self {
            ServeRole::Standalone => "standalone",
            ServeRole::Coordinator => "coordinator",
            ServeRole::Worker { .. } => "worker",
        }
    }
}

/// Fleet timing and retry knobs (coordinator and worker share the
/// structure; each side reads the fields relevant to its role).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker → coordinator heartbeat period. The coordinator tells each
    /// registering worker this value, so the coordinator's setting wins.
    pub heartbeat_ms: u64,
    /// Lease: a worker silent for this long loses its in-flight shards
    /// (they are re-enqueued for other workers). Must comfortably exceed
    /// `heartbeat_ms`.
    pub lease_ms: u64,
    /// Work stealing: with nothing pending and an idle worker, a shard
    /// outstanding longer than this is re-issued to the idle worker.
    pub steal_after_ms: u64,
    /// In-flight shards a worker is sent before the coordinator waits
    /// for results (per worker).
    pub shard_slots: usize,
    /// Cap on the worker's exponential reconnect backoff.
    pub reconnect_max_ms: u64,
    /// Re-dispatches allowed for a shard that keeps failing with
    /// *transient* errors before the job fails.
    pub shard_retries: usize,
    /// Test hook: a worker sleeps this long before executing each shard
    /// (straggler injection for the work-stealing and lease-expiry chaos
    /// tests). Honored only when the daemon runs with
    /// `ServeConfig::fault_injection`; never set in production.
    pub shard_delay_ms: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            heartbeat_ms: 500,
            lease_ms: 2_500,
            steal_after_ms: 3_000,
            shard_slots: 2,
            reconnect_max_ms: 2_000,
            shard_retries: 2,
            shard_delay_ms: 0,
        }
    }
}

/// What kind of work one shard carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKind {
    /// One layer of a network sweep; `index` is the *global* layer index
    /// (per-layer seeds derive from it, so results are position-exact).
    Layer {
        /// Global layer index within the sweep.
        index: usize,
    },
    /// One population island of a fanned-out search; `index` picks the
    /// island's derived seed.
    Island {
        /// Island index within the fan-out.
        index: usize,
    },
}

/// Architecture over the wire: preset name or full TOML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchWire {
    /// Built-in preset (`accel-a` / `accel-b`).
    Preset(String),
    /// Full TOML spec text (hardened `spec` ingestion on the worker).
    Toml(String),
}

/// One self-contained unit of fleet work. Everything a worker needs to
/// produce a bit-exact result is in here — workers hold no sweep state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Globally unique id: `<epoch>-<job>-<index>`; duplicates and stale
    /// results are recognized by it.
    pub id: String,
    /// Layer or island, with its position.
    pub kind: ShardKind,
    /// Workload in `problem::codec` one-liner form.
    pub problem: String,
    /// Architecture (preset or TOML).
    pub arch: ArchWire,
    /// Weight density in (0, 1]; 1.0 = dense.
    pub weight_density: f64,
    /// Input density in (0, 1]; 1.0 = dense.
    pub input_density: f64,
    /// Mapper name (validated on both ends).
    pub mapper: String,
    /// Sample budget for this shard.
    pub samples: usize,
    /// Layer shards: the sweep's *base* seed (the worker derives the
    /// layer seed from the global index). Island shards: the island's
    /// already-derived seed.
    pub seed: u64,
    /// Retry-with-reseed attempts inside the worker (island shards).
    pub retries: usize,
    /// Hard deadline for island shards; `None` for layer shards (sweep
    /// determinism forbids wall-clock budgets).
    pub deadline_ms: Option<u64>,
    /// Warm-start seed mapping (`mapping::codec` spec), already rescaled and
    /// guard-validated by the coordinator's [`crate::store::WarmStore`]. It
    /// rides in the payload so re-dispatch, work stealing, and resharding
    /// never lose the prior; workers re-check legality and treat an
    /// unusable seed as absent.
    pub warm_seed: Option<String>,
}

/// Successful search outcome in wire-portable form (mirrors the fields
/// of the service's `search` response).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOk {
    /// The incumbent was salvaged by the watchdog rather than converged.
    pub degraded: bool,
    /// Terminal `RunStatus` name.
    pub status: String,
    /// Best EDP.
    pub score: f64,
    /// Latency of the best mapping (cycles).
    pub latency_cycles: f64,
    /// Energy of the best mapping (µJ).
    pub energy_uj: f64,
    /// Best mapping in `mapping::codec` spec form.
    pub mapping: String,
    /// Evaluations consumed.
    pub evaluated: usize,
    /// Wall-clock milliseconds (informational; not compared).
    pub elapsed_ms: u64,
    /// Attempts the resilient runner used.
    pub attempts: usize,
    /// Evaluation-cache hits during the run.
    pub cache_hits: u64,
}

/// Payload of a successful shard result.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardData {
    /// A finished sweep layer, already in checkpoint form.
    Layer(LayerCheckpoint),
    /// A finished search island.
    Island(SearchOk),
}

/// A failed shard, carrying the service error taxonomy across the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Transient (re-dispatchable) or permanent (fails the job).
    pub kind: ErrorKind,
    /// Service error code (e.g. `mapper-panicked`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// What came back for one shard.
pub type ShardOutcome = Result<ShardData, ShardError>;

// ---------------------------------------------------------------------------
// Wire codec for shard dispatch and results
// ---------------------------------------------------------------------------

/// Renders the coordinator → worker dispatch line for `spec`.
pub(crate) fn render_shard(spec: &ShardSpec) -> String {
    let (kind, index) = match spec.kind {
        ShardKind::Layer { index } => ("layer", index),
        ShardKind::Island { index } => ("island", index),
    };
    let mut s = format!(
        "{{\"op\": \"shard\", \"shard\": {}, \"kind\": \"{kind}\", \"index\": {index}, \
         \"problem\": {}, ",
        json::escape(&spec.id),
        json::escape(&spec.problem),
    );
    match &spec.arch {
        ArchWire::Preset(name) => s.push_str(&format!("\"arch\": {}, ", json::escape(name))),
        ArchWire::Toml(toml) => s.push_str(&format!("\"arch_toml\": {}, ", json::escape(toml))),
    }
    s.push_str(&format!(
        "\"weight_density\": {}, \"input_density\": {}, \"mapper\": {}, \"samples\": {}, \
         \"seed\": \"{}\", \"retries\": {}, ",
        json::num(spec.weight_density),
        json::num(spec.input_density),
        json::escape(&spec.mapper),
        spec.samples,
        spec.seed,
        spec.retries,
    ));
    if let Some(ws) = &spec.warm_seed {
        s.push_str(&format!("\"warm_seed\": {}, ", json::escape(ws)));
    }
    match spec.deadline_ms {
        Some(ms) => s.push_str(&format!("\"deadline_ms\": {ms}}}")),
        None => s.push_str("\"deadline_ms\": null}"),
    }
    s
}

/// Parses a dispatch line back into a [`ShardSpec`] (worker side).
pub(crate) fn parse_shard(doc: &json::Value) -> Result<ShardSpec, String> {
    let str_field = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("shard missing string `{key}`"))
    };
    let id = str_field("shard")?;
    let index = doc
        .get("index")
        .and_then(json::Value::as_usize)
        .ok_or_else(|| "shard missing `index`".to_string())?;
    let kind = match doc.get("kind").and_then(json::Value::as_str) {
        Some("layer") => ShardKind::Layer { index },
        Some("island") => ShardKind::Island { index },
        other => return Err(format!("shard has bad `kind` {other:?}")),
    };
    let arch = if let Some(toml) = doc.get("arch_toml").and_then(json::Value::as_str) {
        ArchWire::Toml(toml.to_string())
    } else {
        ArchWire::Preset(str_field("arch")?)
    };
    let density = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("shard missing `{key}`"))
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(json::Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| "shard has bad `deadline_ms`".to_string())?),
    };
    Ok(ShardSpec {
        id,
        kind,
        problem: str_field("problem")?,
        arch,
        weight_density: density("weight_density")?,
        input_density: density("input_density")?,
        mapper: str_field("mapper")?,
        samples: doc
            .get("samples")
            .and_then(json::Value::as_usize)
            .ok_or_else(|| "shard missing `samples`".to_string())?,
        seed: doc
            .get("seed")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| "shard missing `seed`".to_string())?,
        retries: doc.get("retries").and_then(json::Value::as_usize).unwrap_or(0),
        deadline_ms,
        warm_seed: doc
            .get("warm_seed")
            .and_then(json::Value::as_str)
            .map(str::to_string),
    })
}

/// Renders the worker → coordinator result line for shard `id`.
pub(crate) fn render_shard_result(id: &str, outcome: &ShardOutcome) -> String {
    let head = format!("{{\"op\": \"shard-result\", \"shard\": {}", json::escape(id));
    match outcome {
        Ok(ShardData::Layer(l)) => {
            let mapping = match &l.mapping {
                Some(m) => json::escape(m),
                None => "null".to_string(),
            };
            format!(
                "{head}, \"ok\": true, \"kind\": \"layer\", \"name\": {}, \"init_score\": {}, \
                 \"best_score\": {}, \"converge_sample\": {}, \"evaluated\": {}, \
                 \"elapsed_secs\": {}, \"mapping\": {mapping}, \"latency_cycles\": {}, \
                 \"energy_uj\": {}}}",
                json::escape(&l.name),
                json::num(l.init_score),
                json::num(l.best_score),
                l.converge_sample,
                l.evaluated,
                json::num(l.elapsed_secs),
                json::num(l.latency_cycles),
                json::num(l.energy_uj),
            )
        }
        Ok(ShardData::Island(r)) => format!(
            "{head}, \"ok\": true, \"kind\": \"island\", \"degraded\": {}, \"status\": {}, \
             \"score\": {}, \"latency_cycles\": {}, \"energy_uj\": {}, \"mapping\": {}, \
             \"evaluated\": {}, \"elapsed_ms\": {}, \"attempts\": {}, \"cache_hits\": {}}}",
            r.degraded,
            json::escape(&r.status),
            json::num(r.score),
            json::num(r.latency_cycles),
            json::num(r.energy_uj),
            json::escape(&r.mapping),
            r.evaluated,
            r.elapsed_ms,
            r.attempts,
            r.cache_hits,
        ),
        Err(e) => format!(
            "{head}, \"ok\": false, \"error_kind\": {}, \"code\": {}, \"message\": {}}}",
            json::escape(match e.kind {
                ErrorKind::Transient => "transient",
                ErrorKind::Permanent => "permanent",
            }),
            json::escape(&e.code),
            json::escape(&e.message),
        ),
    }
}

/// Parses a result line into `(shard_id, outcome)` (coordinator side).
pub(crate) fn parse_shard_result(doc: &json::Value) -> Result<(String, ShardOutcome), String> {
    let id = doc
        .get("shard")
        .and_then(json::Value::as_str)
        .ok_or_else(|| "shard-result missing `shard`".to_string())?
        .to_string();
    let ok = doc
        .get("ok")
        .and_then(json::Value::as_bool)
        .ok_or_else(|| "shard-result missing `ok`".to_string())?;
    if !ok {
        let kind = match doc.get("error_kind").and_then(json::Value::as_str) {
            Some("permanent") => ErrorKind::Permanent,
            _ => ErrorKind::Transient,
        };
        let code = doc
            .get("code")
            .and_then(json::Value::as_str)
            .unwrap_or("shard-failed")
            .to_string();
        let message = doc
            .get("message")
            .and_then(json::Value::as_str)
            .unwrap_or("")
            .to_string();
        return Ok((id, Err(ShardError { kind, code, message })));
    }
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("shard-result missing `{key}`"))
    };
    let count = |key: &str| -> Result<usize, String> {
        doc.get(key)
            .and_then(json::Value::as_usize)
            .ok_or_else(|| format!("shard-result missing `{key}`"))
    };
    match doc.get("kind").and_then(json::Value::as_str) {
        Some("layer") => {
            let mapping = match doc.get("mapping") {
                None | Some(json::Value::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| "shard-result has bad `mapping`".to_string())?
                        .to_string(),
                ),
            };
            Ok((
                id,
                Ok(ShardData::Layer(LayerCheckpoint {
                    name: doc
                        .get("name")
                        .and_then(json::Value::as_str)
                        .ok_or_else(|| "shard-result missing `name`".to_string())?
                        .to_string(),
                    init_score: num("init_score")?,
                    best_score: num("best_score")?,
                    converge_sample: count("converge_sample")?,
                    evaluated: count("evaluated")?,
                    elapsed_secs: num("elapsed_secs")?,
                    mapping,
                    latency_cycles: num("latency_cycles")?,
                    energy_uj: num("energy_uj")?,
                })),
            ))
        }
        Some("island") => Ok((
            id,
            Ok(ShardData::Island(SearchOk {
                degraded: doc.get("degraded").and_then(json::Value::as_bool).unwrap_or(false),
                status: doc
                    .get("status")
                    .and_then(json::Value::as_str)
                    .unwrap_or("succeeded")
                    .to_string(),
                score: num("score")?,
                latency_cycles: num("latency_cycles")?,
                energy_uj: num("energy_uj")?,
                mapping: doc
                    .get("mapping")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| "shard-result missing `mapping`".to_string())?
                    .to_string(),
                evaluated: count("evaluated")?,
                elapsed_ms: doc.get("elapsed_ms").and_then(json::Value::as_u64).unwrap_or(0),
                attempts: count("attempts")?,
                cache_hits: doc.get("cache_hits").and_then(json::Value::as_u64).unwrap_or(0),
            })),
        )),
        other => Err(format!("shard-result has bad `kind` {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Coordinator state
// ---------------------------------------------------------------------------

/// Fleet-level counters, surfaced through the `stats` op.
#[derive(Debug, Default)]
pub(crate) struct FleetCounters {
    pub dispatched: AtomicU64,
    pub redispatched: AtomicU64,
    pub stolen: AtomicU64,
    pub duplicates_discarded: AtomicU64,
    pub stale_results: AtomicU64,
    pub workers_lost: AtomicU64,
    pub workers_joined: AtomicU64,
}

struct WorkerEntry {
    writer: Arc<Mutex<TcpStream>>,
    last_seen: Instant,
    in_flight: HashSet<String>,
    slots: usize,
    draining: bool,
}

struct ShardState {
    job: u64,
    spec: ShardSpec,
    /// Workers this shard was sent to (ids may no longer be live).
    assigned: Vec<u64>,
    /// When the shard was first (or most recently re-)issued; the steal
    /// clock.
    issued: Option<Instant>,
    /// Transient-failure re-dispatches still allowed.
    attempts_left: usize,
    outcome: Option<ShardOutcome>,
    /// The driver already took the outcome; the entry stays to recognize
    /// late duplicates.
    consumed: bool,
    /// Being executed inline by the coordinator (liveness fallback);
    /// never stolen or re-dispatched.
    local: bool,
}

struct FleetInner {
    next_worker: u64,
    next_job: u64,
    workers: HashMap<u64, WorkerEntry>,
    shards: HashMap<String, ShardState>,
    pending: VecDeque<String>,
    /// Writers of lease-expired workers: kept open (a late result is a
    /// countable duplicate, not a reset), closed at shutdown.
    zombies: Vec<Arc<Mutex<TcpStream>>>,
}

/// The coordinator's scheduler: worker registry, shard table, dispatch /
/// re-dispatch / steal decisions. Socket I/O stays in `mse::service`;
/// every method here is lock-and-return.
pub(crate) struct Fleet {
    cfg: FleetConfig,
    /// Distinguishes this coordinator incarnation's shard ids from a
    /// predecessor's after a restart on the same address.
    epoch: u64,
    inner: Mutex<FleetInner>,
    cv: Condvar,
    pub(crate) counters: FleetCounters,
    stop: AtomicBool,
}

/// Writes one line; unlike the service's fire-and-forget `write_line`,
/// failures are surfaced so the caller can declare the worker dead.
fn send_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    match crate::chaos::net_send_fault() {
        Some(crate::chaos::NetFault::Reset) => {
            let _ = w.shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "chaos: connection reset",
            ));
        }
        Some(crate::chaos::NetFault::Short(n)) => {
            // Torn frame: the peer sees a line with no terminator and must
            // treat the connection as dead, not parse the fragment.
            let cut = n.min(line.len());
            let _ = w.write_all(&line.as_bytes()[..cut]);
            let _ = w.flush();
            let _ = w.shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "chaos: torn frame",
            ));
        }
        Some(crate::chaos::NetFault::Delay(d)) => std::thread::sleep(d),
        None => {}
    }
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

impl Fleet {
    pub(crate) fn new(cfg: FleetConfig) -> Self {
        // Epoch: unique per coordinator incarnation (pid + boot time),
        // so shard ids from a previous life on the same port are
        // recognized as stale instead of being mis-consumed.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::process::id().hash(&mut h);
        if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            t.as_nanos().hash(&mut h);
        }
        Fleet {
            cfg,
            epoch: h.finish(),
            inner: Mutex::new(FleetInner {
                next_worker: 1,
                next_job: 1,
                workers: HashMap::new(),
                shards: HashMap::new(),
                pending: VecDeque::new(),
                zombies: Vec::new(),
            }),
            cv: Condvar::new(),
            counters: FleetCounters::default(),
            stop: AtomicBool::new(false),
        }
    }

    pub(crate) fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FleetInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a worker connection; returns its id.
    pub(crate) fn register(&self, writer: Arc<Mutex<TcpStream>>, slots: usize) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_worker;
        inner.next_worker += 1;
        inner.workers.insert(
            id,
            WorkerEntry {
                writer,
                last_seen: Instant::now(),
                in_flight: HashSet::new(),
                slots: slots.max(1),
                draining: false,
            },
        );
        self.counters.workers_joined.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
        id
    }

    /// Renews a worker's lease (heartbeat or any message from it).
    pub(crate) fn touch(&self, worker: u64) {
        if let Some(w) = self.lock().workers.get_mut(&worker) {
            w.last_seen = Instant::now();
        }
    }

    /// Worker announced a drain: no new dispatches, in-flight results
    /// still accepted.
    pub(crate) fn deregister(&self, worker: u64) {
        if let Some(w) = self.lock().workers.get_mut(&worker) {
            w.draining = true;
        }
    }

    /// Re-enqueues the given shard ids unless already answered, already
    /// pending, or still in flight on some live worker. Caller holds the
    /// lock. Returns how many were re-enqueued.
    fn requeue_orphans(inner: &mut FleetInner, ids: &[String]) -> u64 {
        let mut n = 0;
        for id in ids {
            let Some(st) = inner.shards.get_mut(id) else { continue };
            if st.outcome.is_some() || st.local {
                continue;
            }
            let covered = st.assigned.iter().any(|wid| {
                inner.workers.get(wid).is_some_and(|w| w.in_flight.contains(id))
            });
            if covered || inner.pending.contains(id) {
                continue;
            }
            st.issued = None;
            inner.pending.push_back(id.clone());
            n += 1;
        }
        n
    }

    /// Worker connection died: drop the entry and re-dispatch its
    /// unanswered in-flight shards. Idempotent (lease expiry and the
    /// reader thread's EOF can both report the same worker).
    pub(crate) fn disconnected(&self, worker: u64) {
        let mut inner = self.lock();
        let Some(entry) = inner.workers.remove(&worker) else { return };
        self.counters.workers_lost.fetch_add(1, Ordering::Relaxed);
        let orphans: Vec<String> = entry.in_flight.iter().cloned().collect();
        let n = Self::requeue_orphans(&mut inner, &orphans);
        self.counters.redispatched.fetch_add(n, Ordering::Relaxed);
        drop(inner);
        self.cv.notify_all();
    }

    /// Workers currently holding a live lease and accepting work.
    pub(crate) fn live_workers(&self) -> usize {
        self.lock().workers.values().filter(|w| !w.draining).count()
    }

    /// Records a result from `worker` (0 = unknown/none). First answer
    /// wins; duplicates and stale (unknown-id) results are counted and
    /// dropped; transient failures with attempts left are re-enqueued.
    pub(crate) fn result(&self, worker: u64, shard_id: &str, outcome: ShardOutcome) {
        let mut inner = self.lock();
        if let Some(w) = inner.workers.get_mut(&worker) {
            w.last_seen = Instant::now();
            w.in_flight.remove(shard_id);
        }
        let Some(st) = inner.shards.get_mut(shard_id) else {
            self.counters.stale_results.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if st.outcome.is_some() {
            self.counters.duplicates_discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match outcome {
            Err(e) if e.kind == ErrorKind::Transient && st.attempts_left > 0 => {
                st.attempts_left -= 1;
                st.issued = None;
                if !inner.pending.contains(&shard_id.to_string()) {
                    inner.pending.push_back(shard_id.to_string());
                }
                self.counters.redispatched.fetch_add(1, Ordering::Relaxed);
            }
            out => {
                st.outcome = Some(out);
            }
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Allocates a job id (shard ids embed it).
    pub(crate) fn new_job(&self) -> u64 {
        let mut inner = self.lock();
        let job = inner.next_job;
        inner.next_job += 1;
        job
    }

    /// The shard id for `(job, index)` under this coordinator's epoch.
    pub(crate) fn shard_id(&self, job: u64, index: usize) -> String {
        format!("{:x}-{job}-{index}", self.epoch)
    }

    /// Enqueues a job's shards for dispatch.
    pub(crate) fn submit(&self, job: u64, specs: Vec<ShardSpec>) {
        let mut inner = self.lock();
        for spec in specs {
            let id = spec.id.clone();
            inner.shards.insert(
                id.clone(),
                ShardState {
                    job,
                    spec,
                    assigned: Vec::new(),
                    issued: None,
                    attempts_left: self.cfg.shard_retries,
                    outcome: None,
                    consumed: false,
                    local: false,
                },
            );
            inner.pending.push_back(id);
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Consumes the outcome of one shard, exactly once. The entry stays
    /// behind (marked consumed) so later duplicates are still recognized;
    /// [`Fleet::finish_job`] removes it.
    pub(crate) fn take_outcome(&self, shard_id: &str) -> Option<ShardOutcome> {
        let mut inner = self.lock();
        let st = inner.shards.get_mut(shard_id)?;
        if st.consumed {
            return None;
        }
        let out = st.outcome.clone()?;
        st.consumed = true;
        Some(out)
    }

    /// Liveness fallback: with zero live workers, the driver claims a
    /// pending shard of its job and executes it inline, so a coordinator
    /// with no fleet still completes every sweep.
    pub(crate) fn claim_local(&self, job: u64) -> Option<ShardSpec> {
        let mut inner = self.lock();
        if inner.workers.values().any(|w| !w.draining) {
            return None;
        }
        let pos = inner.pending.iter().position(|id| {
            inner.shards.get(id).is_some_and(|st| st.job == job && st.outcome.is_none())
        })?;
        let id = inner.pending.remove(pos)?;
        let st = inner.shards.get_mut(&id)?;
        st.local = true;
        Some(st.spec.clone())
    }

    /// Stores the outcome of a locally executed shard.
    pub(crate) fn complete_local(&self, shard_id: &str, outcome: ShardOutcome) {
        let mut inner = self.lock();
        if let Some(st) = inner.shards.get_mut(shard_id) {
            if st.outcome.is_none() {
                st.outcome = Some(outcome);
            }
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Drops a finished (or abandoned) job's shard table entries; late
    /// results for them become `stale_results`.
    pub(crate) fn finish_job(&self, job: u64) {
        let mut inner = self.lock();
        let ids: Vec<String> = inner
            .shards
            .iter()
            .filter(|(_, st)| st.job == job)
            .map(|(id, _)| id.clone())
            .collect();
        for id in &ids {
            inner.shards.remove(id);
        }
        inner.pending.retain(|id| !ids.contains(id));
    }

    /// Parks the driver until something changes (result, worker event) or
    /// the timeout passes.
    pub(crate) fn wait(&self, timeout: Duration) {
        let inner = self.lock();
        let _ = self.cv.wait_timeout(inner, timeout);
    }

    /// One supervisor pass: expire leases, dispatch pending shards, steal
    /// for stragglers. Socket writes happen after the lock is dropped; a
    /// failed write reports the worker as disconnected.
    fn tick(&self) {
        let lease = Duration::from_millis(self.cfg.lease_ms);
        let mut sends: Vec<(u64, Arc<Mutex<TcpStream>>, String)> = Vec::new();
        {
            let mut inner = self.lock();
            // Lease expiry: silent workers lose their shards but keep
            // their connection (see module docs on zombies).
            let expired: Vec<u64> = inner
                .workers
                .iter()
                .filter(|(_, w)| w.last_seen.elapsed() > lease)
                .map(|(id, _)| *id)
                .collect();
            for wid in expired {
                if let Some(entry) = inner.workers.remove(&wid) {
                    self.counters.workers_lost.fetch_add(1, Ordering::Relaxed);
                    inner.zombies.push(Arc::clone(&entry.writer));
                    let orphans: Vec<String> = entry.in_flight.iter().cloned().collect();
                    let n = Self::requeue_orphans(&mut inner, &orphans);
                    self.counters.redispatched.fetch_add(n, Ordering::Relaxed);
                }
            }
            // Dispatch: least-loaded live worker with a free slot.
            while !inner.pending.is_empty() {
                let target = inner
                    .workers
                    .iter()
                    .filter(|(_, w)| !w.draining && w.in_flight.len() < w.slots)
                    .min_by_key(|(_, w)| w.in_flight.len())
                    .map(|(id, _)| *id);
                let Some(wid) = target else { break };
                let Some(id) = inner.pending.pop_front() else { break };
                let Some(st) = inner.shards.get_mut(&id) else { continue };
                if st.outcome.is_some() || st.local {
                    continue;
                }
                st.assigned.push(wid);
                st.issued = Some(Instant::now());
                let line = render_shard(&st.spec);
                let w = inner.workers.get_mut(&wid).expect("target vanished under lock");
                w.in_flight.insert(id);
                sends.push((wid, Arc::clone(&w.writer), line));
                self.counters.dispatched.fetch_add(1, Ordering::Relaxed);
            }
            // Steal: nothing pending, an idle slot somewhere, and an
            // outstanding shard past the straggler threshold → re-issue
            // the oldest one to a worker that does not already hold it.
            if inner.pending.is_empty() {
                let threshold = Duration::from_millis(self.cfg.steal_after_ms);
                let victim = inner
                    .shards
                    .iter()
                    .filter(|(_, st)| {
                        st.outcome.is_none()
                            && !st.local
                            && st.issued.is_some_and(|t| t.elapsed() > threshold)
                    })
                    .min_by_key(|(_, st)| st.issued)
                    .map(|(id, _)| id.clone());
                if let Some(id) = victim {
                    let assigned = inner.shards[&id].assigned.clone();
                    let thief = inner
                        .workers
                        .iter()
                        .filter(|(wid, w)| {
                            !w.draining
                                && w.in_flight.len() < w.slots
                                && !assigned.contains(wid)
                        })
                        .min_by_key(|(_, w)| w.in_flight.len())
                        .map(|(wid, _)| *wid);
                    if let Some(wid) = thief {
                        let st = inner.shards.get_mut(&id).expect("victim vanished under lock");
                        st.assigned.push(wid);
                        st.issued = Some(Instant::now());
                        let line = render_shard(&st.spec);
                        let w =
                            inner.workers.get_mut(&wid).expect("thief vanished under lock");
                        w.in_flight.insert(id);
                        sends.push((wid, Arc::clone(&w.writer), line));
                        self.counters.stolen.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        for (wid, writer, line) in sends {
            if send_line(&writer, &line).is_err() {
                self.disconnected(wid);
            }
        }
    }

    /// Stops the supervisor and severs every worker connection (live and
    /// zombie) so their reader threads unblock.
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let writers: Vec<Arc<Mutex<TcpStream>>> = {
            let mut inner = self.lock();
            let mut all: Vec<Arc<Mutex<TcpStream>>> =
                inner.workers.values().map(|w| Arc::clone(&w.writer)).collect();
            all.append(&mut inner.zombies);
            all
        };
        for w in writers {
            let s = w.lock().unwrap_or_else(|e| e.into_inner());
            let _ = s.shutdown(Shutdown::Both);
        }
        self.cv.notify_all();
    }

    /// Runs the supervisor until [`Fleet::shutdown`].
    pub(crate) fn spawn_supervisor(fleet: Arc<Fleet>) -> JoinHandle<()> {
        std::thread::spawn(move || {
            while !fleet.stop.load(Ordering::SeqCst) {
                fleet.tick();
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Worker side: the link to the coordinator
// ---------------------------------------------------------------------------

/// Partial-line-preserving reader over a `TcpStream` with a read
/// timeout: `poll` returns a complete line, "nothing yet", or EOF,
/// without ever losing buffered bytes across timeouts.
struct TimeoutLineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum Polled {
    Line(Vec<u8>),
    Idle,
    Closed,
}

impl TimeoutLineReader {
    const MAX_LINE: usize = 1 << 20;

    fn new(stream: TcpStream) -> Self {
        TimeoutLineReader { stream, buf: Vec::new() }
    }

    fn take_line(&mut self) -> Option<Vec<u8>> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
        line.pop();
        Some(line)
    }

    fn poll(&mut self) -> Polled {
        if let Some(line) = self.take_line() {
            return Polled::Line(line);
        }
        match crate::chaos::net_recv_fault() {
            Some(crate::chaos::NetFault::Reset) => {
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                return Polled::Closed;
            }
            Some(crate::chaos::NetFault::Delay(d)) => std::thread::sleep(d),
            // Short reads are the normal case for a line protocol.
            Some(crate::chaos::NetFault::Short(_)) | None => {}
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Polled::Closed,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                if self.buf.len() > Self::MAX_LINE {
                    // A line protocol cannot resynchronize mid-line.
                    return Polled::Closed;
                }
                match self.take_line() {
                    Some(line) => Polled::Line(line),
                    None => Polled::Idle,
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                Polled::Idle
            }
            Err(_) => Polled::Closed,
        }
    }
}

/// The worker's side of the fleet: one manager thread owns the
/// connection (connect → register → heartbeat → receive shards, with
/// capped-backoff reconnect); shard executor threads in `mse::service`
/// pop from `queue` and push results through [`WorkerLink::send_result`].
pub(crate) struct WorkerLink {
    cfg: FleetConfig,
    coordinator: String,
    slots: usize,
    writer: Mutex<Option<Arc<Mutex<TcpStream>>>>,
    connected: AtomicBool,
    /// Chaos hook: hard-kill the link and never reconnect (simulated
    /// worker death, from the coordinator's point of view).
    severed: AtomicBool,
    /// Chaos hook: stop heartbeating while everything else keeps running
    /// (forces lease expiry with a live connection → duplicate results).
    muted: AtomicBool,
    /// Chaos hook: execute shards but drop their results.
    discard: AtomicBool,
    queue: Mutex<VecDeque<ShardSpec>>,
    cv: Condvar,
    busy: AtomicU64,
    /// True once the first registration succeeded; later successful
    /// registrations are reconnects.
    connected_once: AtomicBool,
    reconnects: AtomicU64,
}

impl WorkerLink {
    pub(crate) fn new(cfg: FleetConfig, coordinator: String, slots: usize) -> Self {
        WorkerLink {
            cfg,
            coordinator,
            slots: slots.max(1),
            writer: Mutex::new(None),
            connected: AtomicBool::new(false),
            severed: AtomicBool::new(false),
            muted: AtomicBool::new(false),
            discard: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            busy: AtomicU64::new(0),
            connected_once: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
        }
    }

    pub(crate) fn connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Times this link re-established a lost coordinator connection
    /// (the first successful registration is not counted).
    pub(crate) fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::SeqCst)
    }

    /// Queued or executing shards remain.
    pub(crate) fn pending_work(&self) -> bool {
        !self.queue.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
            || self.busy.load(Ordering::SeqCst) > 0
    }

    /// Pops the next shard, marking the caller busy. The caller must
    /// invoke [`WorkerLink::finish_shard`] when done.
    pub(crate) fn next_shard(&self, timeout: Duration) -> Option<ShardSpec> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.is_empty() {
            let (guard, _) = self
                .cv
                .wait_timeout(q, timeout)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        let spec = q.pop_front()?;
        self.busy.fetch_add(1, Ordering::SeqCst);
        Some(spec)
    }

    pub(crate) fn finish_shard(&self) {
        self.busy.fetch_sub(1, Ordering::SeqCst);
    }

    /// Ships a result line to the coordinator (best effort: a dead link
    /// means lease expiry will re-dispatch the shard elsewhere).
    pub(crate) fn send_result(&self, line: &str) {
        if self.discard.load(Ordering::SeqCst) {
            return;
        }
        let writer = self.writer.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(w) = writer {
            let _ = send_line(&w, line);
        }
    }

    /// Chaos: kill the connection now and never reconnect.
    pub(crate) fn sever(&self) {
        self.severed.store(true, Ordering::SeqCst);
        self.discard.store(true, Ordering::SeqCst);
        if let Some(w) = self.writer.lock().unwrap_or_else(|e| e.into_inner()).clone() {
            let s = w.lock().unwrap_or_else(|e| e.into_inner());
            let _ = s.shutdown(Shutdown::Both);
        }
        self.cv.notify_all();
    }

    /// Chaos: stop heartbeating (connection and execution continue).
    pub(crate) fn mute(&self) {
        self.muted.store(true, Ordering::SeqCst);
    }

    /// Runs the connection manager until drain completes or the link is
    /// severed. `drain` is the daemon's should-drain predicate.
    pub(crate) fn spawn_manager(
        link: Arc<WorkerLink>,
        drain: impl Fn() -> bool + Send + 'static,
    ) -> JoinHandle<()> {
        std::thread::spawn(move || link.manage(&drain))
    }

    fn done(&self, drain: &impl Fn() -> bool) -> bool {
        self.severed.load(Ordering::SeqCst) || (drain() && !self.pending_work())
    }

    fn manage(&self, drain: &impl Fn() -> bool) {
        let mut backoff = 100u64;
        while !self.done(drain) {
            let Ok(stream) = TcpStream::connect(&self.coordinator) else {
                std::thread::sleep(Duration::from_millis(backoff));
                backoff = (backoff * 2).min(self.cfg.reconnect_max_ms.max(100));
                continue;
            };
            let _ = stream.set_nodelay(true);
            let Ok(write_half) = stream.try_clone() else { continue };
            let writer = Arc::new(Mutex::new(write_half));
            if send_line(&writer, &format!("{{\"op\": \"register-worker\", \"slots\": {}}}", self.slots))
                .is_err()
            {
                continue;
            }
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            *self.writer.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&writer));
            self.connected.store(true, Ordering::SeqCst);
            if self.connected_once.swap(true, Ordering::SeqCst) {
                self.reconnects.fetch_add(1, Ordering::SeqCst);
            }
            backoff = 100;
            let mut heartbeat = Duration::from_millis(self.cfg.heartbeat_ms.max(10));
            let mut reader = TimeoutLineReader::new(stream);
            let mut last_beat = Instant::now();
            let mut deregistered = false;
            loop {
                if self.severed.load(Ordering::SeqCst) {
                    break;
                }
                if drain() && !deregistered {
                    let _ = send_line(&writer, "{\"op\": \"deregister\"}");
                    deregistered = true;
                }
                if deregistered && !self.pending_work() {
                    self.connected.store(false, Ordering::SeqCst);
                    return;
                }
                match reader.poll() {
                    Polled::Closed => break,
                    Polled::Idle => {}
                    Polled::Line(bytes) => {
                        if let Ok(text) = std::str::from_utf8(&bytes) {
                            if let Ok(doc) = json::parse(text) {
                                match doc.get("op").and_then(json::Value::as_str) {
                                    Some("registered") => {
                                        // The coordinator's cadence wins.
                                        if let Some(ms) = doc
                                            .get("heartbeat_ms")
                                            .and_then(json::Value::as_u64)
                                        {
                                            heartbeat = Duration::from_millis(ms.max(10));
                                        }
                                    }
                                    Some("shard") => match parse_shard(&doc) {
                                        Ok(spec) if !deregistered => {
                                            let mut q = self
                                                .queue
                                                .lock()
                                                .unwrap_or_else(|e| e.into_inner());
                                            q.push_back(spec);
                                            drop(q);
                                            self.cv.notify_one();
                                        }
                                        Ok(spec) => {
                                            // Draining: refuse so the
                                            // coordinator re-dispatches
                                            // now, not at lease expiry.
                                            self.send_result(&render_shard_result(
                                                &spec.id,
                                                &Err(ShardError {
                                                    kind: ErrorKind::Transient,
                                                    code: "worker-draining".to_string(),
                                                    message: "worker is draining".to_string(),
                                                }),
                                            ));
                                        }
                                        Err(_) => {}
                                    },
                                    _ => {}
                                }
                            }
                        }
                    }
                }
                if !self.muted.load(Ordering::SeqCst) && last_beat.elapsed() >= heartbeat {
                    if let Some(stall) = crate::chaos::heartbeat_stall() {
                        // Stay silent past the due beat — the coordinator
                        // must expire the lease, not hang on us.
                        std::thread::sleep(stall);
                        last_beat = Instant::now();
                        continue;
                    }
                    if send_line(&writer, "{\"op\": \"heartbeat\"}").is_err() {
                        break;
                    }
                    last_beat = Instant::now();
                }
            }
            // Connection lost: queued shards belong to a coordinator
            // incarnation we can no longer answer; drop them (it will
            // re-dispatch under its own epoch).
            self.connected.store(false, Ordering::SeqCst);
            *self.writer.lock().unwrap_or_else(|e| e.into_inner()) = None;
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).clear();
            if self.done(drain) {
                return;
            }
            std::thread::sleep(Duration::from_millis(backoff));
            backoff = (backoff * 2).min(self.cfg.reconnect_max_ms.max(100));
        }
        self.connected.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_spec(id: &str, index: usize) -> ShardSpec {
        ShardSpec {
            id: id.to_string(),
            kind: ShardKind::Layer { index },
            problem: "GEMM;g;B=2,M=8,K=8,N=8".to_string(),
            arch: ArchWire::Preset("accel-b".to_string()),
            weight_density: 1.0,
            input_density: 1.0,
            mapper: "gamma".to_string(),
            samples: 100,
            seed: u64::MAX - 3,
            retries: 0,
            deadline_ms: None,
            warm_seed: None,
        }
    }

    #[test]
    fn shard_wire_round_trips() {
        let spec = layer_spec("abc-1-0", 4);
        let parsed = parse_shard(&json::parse(&render_shard(&spec)).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        let island = ShardSpec {
            kind: ShardKind::Island { index: 2 },
            arch: ArchWire::Toml("[arch]\nname = \"x\"".to_string()),
            deadline_ms: Some(1_500),
            retries: 3,
            weight_density: 0.5,
            warm_seed: Some("o:0,1,2,3;t:1,2,1,4;s:1,1,1,1".to_string()),
            ..spec
        };
        let parsed = parse_shard(&json::parse(&render_shard(&island)).unwrap()).unwrap();
        assert_eq!(parsed, island);
    }

    #[test]
    fn shard_result_wire_round_trips() {
        let layer = ShardData::Layer(LayerCheckpoint {
            name: "conv \"1\"".to_string(),
            init_score: f64::INFINITY,
            best_score: 1.25e9,
            converge_sample: 7,
            evaluated: 100,
            elapsed_secs: 0.0,
            mapping: Some("L0: K4".to_string()),
            latency_cycles: 1.0e6,
            energy_uj: 3.5,
        });
        let line = render_shard_result("e-1-0", &Ok(layer.clone()));
        let (id, out) = parse_shard_result(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(id, "e-1-0");
        assert_eq!(out, Ok(layer));

        let err = ShardError {
            kind: ErrorKind::Transient,
            code: "mapper-panicked".to_string(),
            message: "boom".to_string(),
        };
        let line = render_shard_result("e-1-1", &Err(err.clone()));
        let (id, out) = parse_shard_result(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(id, "e-1-1");
        assert_eq!(out, Err(err));
    }

    #[test]
    fn duplicate_and_stale_results_are_discarded() {
        let fleet = Fleet::new(FleetConfig::default());
        let job = fleet.new_job();
        let id = fleet.shard_id(job, 0);
        fleet.submit(job, vec![layer_spec(&id, 0)]);
        let ok = Ok(ShardData::Layer(LayerCheckpoint {
            name: "l".to_string(),
            init_score: 1.0,
            best_score: 1.0,
            converge_sample: 0,
            evaluated: 1,
            elapsed_secs: 0.0,
            mapping: None,
            latency_cycles: 1.0,
            energy_uj: 1.0,
        }));
        fleet.result(0, &id, ok.clone());
        fleet.result(0, &id, ok.clone());
        assert_eq!(fleet.counters.duplicates_discarded.load(Ordering::Relaxed), 1);
        assert!(fleet.take_outcome(&id).is_some());
        assert!(fleet.take_outcome(&id).is_none(), "outcome consumed twice");
        fleet.finish_job(job);
        fleet.result(0, &id, ok);
        assert_eq!(fleet.counters.stale_results.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn transient_shard_failures_requeue_until_exhausted() {
        let fleet = Fleet::new(FleetConfig { shard_retries: 1, ..FleetConfig::default() });
        let job = fleet.new_job();
        let id = fleet.shard_id(job, 0);
        fleet.submit(job, vec![layer_spec(&id, 0)]);
        let fail = || {
            Err(ShardError {
                kind: ErrorKind::Transient,
                code: "mapper-panicked".to_string(),
                message: "x".to_string(),
            })
        };
        fleet.result(0, &id, fail());
        assert!(fleet.take_outcome(&id).is_none(), "transient failure surfaced too early");
        fleet.result(0, &id, fail());
        match fleet.take_outcome(&id) {
            Some(Err(e)) => assert_eq!(e.code, "mapper-panicked"),
            other => panic!("expected surfaced failure, got {other:?}"),
        }
    }

    #[test]
    fn local_claim_only_without_live_workers() {
        let fleet = Fleet::new(FleetConfig::default());
        let job = fleet.new_job();
        let id = fleet.shard_id(job, 0);
        fleet.submit(job, vec![layer_spec(&id, 0)]);
        let spec = fleet.claim_local(job).expect("no workers: local claim must succeed");
        assert_eq!(spec.id, id);
        assert!(fleet.claim_local(job).is_none(), "shard claimed twice");
    }
}
