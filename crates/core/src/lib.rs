//! Map-space exploration (MSE) for NPUs — the framework of the paper's
//! Fig. 2, plus its two proposed techniques: **warm-start** (§5.1) and
//! **sparsity-aware search** (§5.2).
//!
//! The [`Mse`] driver binds a cost model (dense or sparse), a mapper, and a
//! budget. [`warmstart`] provides the replay-buffer/similarity machinery to
//! carry optimized mappings across a network's layers; [`sparsity`]
//! provides the density-sweep objective that finds one mapping robust
//! across runtime activation sparsities.
//!
//! # Example
//!
//! ```
//! use mse::Mse;
//! use costmodel::DenseModel;
//! use mappers::{Budget, Gamma};
//!
//! let model = DenseModel::new(
//!     problem::Problem::conv2d("demo", 2, 16, 16, 14, 14, 3, 3),
//!     arch::Arch::accel_b(),
//! );
//! let result = Mse::new(&model).run(&Gamma::new(), Budget::samples(500), 0);
//! println!("best EDP: {:.3e} cycles*uJ", result.best_score);
//! ```

pub mod chaos;
mod driver;
pub mod eval;
pub mod fault;
pub mod fleet;
pub mod json;
pub mod runtime;
pub mod service;
pub mod sparsity;
pub mod store;
pub mod warmstart;

pub use chaos::{Bug, Campaign, CampaignReport, FaultPlan, Harness, Scenario};
pub use driver::{convergence_sample, samples_to_reach, Mse};
pub use eval::{CachedEvaluator, EvalCache, EvalConfig, EvalPool, PoolEvaluator};
pub use fault::{panic_message, quiet_sentinel_panics, WatchdogEvaluator, WatchdogStop};
pub use fleet::{FleetConfig, ServeRole};
pub use runtime::{
    run_network_checkpointed, run_network_checkpointed_parallel, CheckpointError, LayerCheckpoint,
    RunPolicy, SweepCheckpoint,
};
pub use service::{serve, ErrorKind, ServeConfig, ServeStats, ServerHandle};
pub use store::{CompactReport, StoreRecord, StoreStats, VerifyReport, WarmStore, BANDIT_ARMS};
pub use sparsity::{
    density_sweep, weight_density_sweep, SparsityAwareEvaluator, StaticDensityEvaluator,
    DEFAULT_SEARCH_DENSITIES,
};
pub use warmstart::{
    run_network, run_network_parallel, InitStrategy, LayerOutcome, ReplayBuffer,
};
