//! Sparsity-aware MSE (§5.2): search for a single mapping that performs
//! well across a *range* of activation densities, instead of one mapping
//! per density.
//!
//! During search, each candidate mapping is scored by the weighted sum of
//! its EDP across a sweep of imposed activation densities, with weights
//! `1/density` (the paper's heuristic: hardware performance correlates
//! positively with density, so sparser points are up-weighted to keep them
//! from being drowned out).

use arch::{Arch, SparseCaps};
use costmodel::{Cost, CostModel, SparseModel};
use mappers::Evaluator;
use problem::{Density, Problem};

/// The paper's default density sweep for search time (Table 4 blue cells):
/// "we use 5 density levels: 1.0, 0.8, 0.5, 0.2, and 0.1, which are picked
/// by heuristics".
pub const DEFAULT_SEARCH_DENSITIES: [f64; 5] = [1.0, 0.8, 0.5, 0.2, 0.1];

/// Density-sweep evaluator implementing the sparsity-aware objective.
pub struct SparsityAwareEvaluator {
    models: Vec<(f64, SparseModel)>,
}

impl SparsityAwareEvaluator {
    /// Builds the evaluator for activation sparsity over the given density
    /// levels (use [`DEFAULT_SEARCH_DENSITIES`] to match the paper).
    ///
    /// # Panics
    ///
    /// Panics if `densities` is empty or contains values outside `(0, 1]`.
    pub fn new(problem: Problem, arch: Arch, caps: SparseCaps, densities: &[f64]) -> Self {
        assert!(!densities.is_empty(), "need at least one density level");
        let models = densities
            .iter()
            .map(|&d| {
                assert!(d > 0.0 && d <= 1.0, "density {d} outside (0, 1]");
                (d, SparseModel::new(problem.clone(), arch.clone(), caps, Density::input_sparse(d)))
            })
            .collect();
        SparsityAwareEvaluator { models }
    }

    /// The density levels being swept.
    pub fn densities(&self) -> Vec<f64> {
        self.models.iter().map(|(d, _)| *d).collect()
    }
}

impl Evaluator for SparsityAwareEvaluator {
    fn evaluate(&self, m: &mapping::Mapping) -> Option<(Cost, f64)> {
        let mut score = 0.0;
        let mut dense_cost: Option<Cost> = None;
        for (density, model) in &self.models {
            let cost = model.evaluate(m).ok()?;
            // Weighted sum: Perf_d / d (§5.2.2).
            score += cost.edp() / density;
            if *density == 1.0 || dense_cost.is_none() {
                dense_cost = Some(cost);
            }
        }
        Some((dense_cost.expect("at least one density"), score))
    }
}

/// Evaluator for the "static-density" baselines of Table 4: ordinary EDP
/// at one fixed assumed density.
pub struct StaticDensityEvaluator {
    model: SparseModel,
}

impl StaticDensityEvaluator {
    /// Builds the evaluator assuming activations have density `density`.
    pub fn new(problem: Problem, arch: Arch, caps: SparseCaps, density: f64) -> Self {
        StaticDensityEvaluator {
            model: SparseModel::new(problem, arch, caps, Density::input_sparse(density)),
        }
    }
}

impl Evaluator for StaticDensityEvaluator {
    fn evaluate(&self, m: &mapping::Mapping) -> Option<(Cost, f64)> {
        let cost = self.model.evaluate(m).ok()?;
        Some((cost, cost.edp()))
    }
}

/// Tests a fixed mapping across a sweep of activation densities, returning
/// `(density, EDP)` rows — the row structure of Table 4.
pub fn density_sweep(
    problem: &Problem,
    arch: &Arch,
    caps: SparseCaps,
    m: &mapping::Mapping,
    densities: &[f64],
) -> Vec<(f64, f64)> {
    densities
        .iter()
        .map(|&d| {
            let model =
                SparseModel::new(problem.clone(), arch.clone(), caps, Density::input_sparse(d));
            let edp = model.evaluate(m).map(|c| c.edp()).unwrap_or(f64::INFINITY);
            (d, edp)
        })
        .collect()
}

/// Tests a fixed mapping across *weight* densities — the cross-testing
/// protocol of Table 2.
pub fn weight_density_sweep(
    problem: &Problem,
    arch: &Arch,
    caps: SparseCaps,
    m: &mapping::Mapping,
    densities: &[f64],
) -> Vec<(f64, f64)> {
    densities
        .iter()
        .map(|&d| {
            let model =
                SparseModel::new(problem.clone(), arch.clone(), caps, Density::weight_sparse(d));
            let edp = model.evaluate(m).map(|c| c.edp()).unwrap_or(f64::INFINITY);
            (d, edp)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Mse;
    use mappers::{Budget, Gamma};
    use mapping::MapSpace;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (Problem, Arch) {
        (Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3), Arch::accel_b())
    }

    #[test]
    fn sparsity_aware_score_upweights_sparse_levels() {
        let (p, a) = setup();
        let eval =
            SparsityAwareEvaluator::new(p.clone(), a.clone(), SparseCaps::flexible(), &[1.0, 0.1]);
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(0);
        let m = space.random(&mut rng);
        let (_, score) = eval.evaluate(&m).unwrap();
        let e1 = SparseModel::new(p.clone(), a.clone(), SparseCaps::flexible(), Density::input_sparse(1.0))
            .evaluate(&m)
            .unwrap()
            .edp();
        let e01 = SparseModel::new(p, a, SparseCaps::flexible(), Density::input_sparse(0.1))
            .evaluate(&m)
            .unwrap()
            .edp();
        assert!((score - (e1 / 1.0 + e01 / 0.1)).abs() / score < 1e-12);
    }

    #[test]
    fn sweep_is_monotone_in_density() {
        let (p, a) = setup();
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(1);
        let m = space.random(&mut rng);
        let rows = density_sweep(&p, &a, SparseCaps::flexible(), &m, &[1.0, 0.5, 0.2, 0.1]);
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1 * 0.999, "EDP not monotone: {w:?}");
        }
    }

    #[test]
    fn sparsity_aware_search_generalizes_better_than_static_dense() {
        // The Table 4 headline: across a density sweep, the sparsity-aware
        // mapping is no worse than ~its static-density rivals at the
        // densities those were NOT tuned for.
        let (p, a) = setup();
        let caps = SparseCaps::flexible();
        let model_dense =
            SparseModel::new(p.clone(), a.clone(), caps, Density::input_sparse(1.0));
        let mse = Mse::new(&model_dense);
        let budget = Budget::samples(800);

        let aware_eval =
            SparsityAwareEvaluator::new(p.clone(), a.clone(), caps, &DEFAULT_SEARCH_DENSITIES);
        let aware =
            mse.run_with_evaluator(&Gamma::new(), &aware_eval, budget, 3).best.unwrap().0;

        let static_eval = StaticDensityEvaluator::new(p.clone(), a.clone(), caps, 1.0);
        let static_dense =
            mse.run_with_evaluator(&Gamma::new(), &static_eval, budget, 3).best.unwrap().0;

        let test_densities = [0.5, 0.2, 0.1, 0.05];
        let aware_rows = density_sweep(&p, &a, caps, &aware, &test_densities);
        let static_rows = density_sweep(&p, &a, caps, &static_dense, &test_densities);
        // Geometric-mean EDP across sparse test densities.
        let geo = |rows: &[(f64, f64)]| {
            (rows.iter().map(|(_, e)| e.ln()).sum::<f64>() / rows.len() as f64).exp()
        };
        let ga = geo(&aware_rows);
        let gs = geo(&static_rows);
        assert!(
            ga <= gs * 1.15,
            "sparsity-aware geomean {ga:.3e} clearly worse than static-dense {gs:.3e}"
        );
    }

    #[test]
    fn static_density_mapper_name_passthrough() {
        let (p, a) = setup();
        let eval = StaticDensityEvaluator::new(p.clone(), a.clone(), SparseCaps::flexible(), 0.5);
        let space = MapSpace::new(p, a);
        let mut rng = SmallRng::seed_from_u64(2);
        let m = space.random(&mut rng);
        assert!(eval.evaluate(&m).is_some());
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_zero_density() {
        let (p, a) = setup();
        SparsityAwareEvaluator::new(p, a, SparseCaps::flexible(), &[0.0]);
    }
}
