//! The resilient search runtime: guarded mapper execution and
//! checkpointed network sweeps.
//!
//! Production MSE runs race portfolios of third-party mappers against
//! cost models for hours; one buggy mapper or one NaN-poisoned cost must
//! not take the whole run down. This module layers four defenses over the
//! plain [`Mse`] driver:
//!
//! 1. **Panic isolation** — every mapper run executes under
//!    [`std::panic::catch_unwind`]; a panic becomes a structured
//!    [`RunError::MapperPanicked`] inside a [`RunOutcome`] instead of an
//!    abort.
//! 2. **Watchdog budget enforcement** — the evaluator handed to the
//!    mapper is a [`WatchdogEvaluator`] that counts evaluations and wall
//!    clock itself and hard-stops a mapper that ignores its [`Budget`]
//!    (with a grace window, so well-behaved mappers are bit-identical
//!    with or without the watchdog).
//! 3. **Retry with reseed** — attempts that panic or end with an empty /
//!    non-finite result are retried up to [`RunPolicy::retries`] times
//!    with deterministically perturbed seeds; every attempt is recorded
//!    in the outcome's audit trail.
//! 4. **Checkpoint / resume** — [`run_network_checkpointed`] writes an
//!    atomic JSON checkpoint after every layer of a sweep, and a resumed
//!    run skips completed layers while reproducing the exact result a
//!    fresh run would have produced (per-layer seeds depend only on the
//!    layer index, and the replay buffer is rebuilt from the checkpoint).

use crate::driver::Mse;
use crate::eval::{CachedEvaluator, EvalCache, EvalConfig, EvalPool, PoolEvaluator};
use crate::json;
use crate::fault::{panic_message, quiet_sentinel_panics, WatchdogEvaluator, WatchdogStop};
use crate::warmstart::{
    run_network_from, run_network_parallel_from, InitStrategy, LayerOutcome, ReplayBuffer,
};
use arch::Arch;
use costmodel::{Cost, CostModel, GuardAudit};
use mappers::{
    score_cmp, AttemptRecord, Budget, ConvergencePoint, EdpEvaluator, Evaluator, Mapper,
    RunError, RunOutcome, RunStatus, SearchResult,
};
use problem::Problem;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

/// Process-wide count of checkpoint loads that only succeeded via the
/// `.bak` sibling — each one is a torn or missing primary that the rolling
/// backup absorbed. Surfaced by `health`/`stats` so operators see
/// near-miss corruption before it becomes data loss.
static BAK_RESCUES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total [`SweepCheckpoint::load`] calls rescued by the `.bak` fallback
/// since process start.
pub fn checkpoint_bak_rescues() -> u64 {
    BAK_RESCUES.load(std::sync::atomic::Ordering::Relaxed)
}

/// Knobs of the guarded runner.
#[derive(Debug, Clone, Copy)]
pub struct RunPolicy {
    /// Additional attempts (with perturbed seeds) after a failed first
    /// attempt. `0` disables retry.
    pub retries: usize,
    /// Watchdog slack on the sample budget: population-based mappers
    /// legitimately finish the generation in flight when the budget runs
    /// out, so the hard stop only fires this many evaluations past the
    /// limit.
    pub grace_evals: usize,
    /// Evaluation-stack configuration: worker-pool width and cache
    /// capacity. Defaults to [`EvalConfig::serial`] (one lane, no cache) —
    /// the historical behavior — so library callers opt in explicitly;
    /// the CLI runs [`EvalConfig::full`] unless `--threads` says
    /// otherwise. Results are bit-identical across configurations by
    /// construction; only throughput (and cache counters) change.
    pub eval: EvalConfig,
    /// Absolute hard deadline shared by *all* attempts: once it passes,
    /// the watchdog stops the mapper immediately (no 2x slack) and the
    /// shadow incumbent is salvaged. `None` (the default) keeps plain
    /// budget enforcement. Set by the service layer, where a request's
    /// deadline is a promise to the client, not a hint to the mapper.
    pub deadline: Option<Instant>,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            retries: 2,
            grace_evals: 1024,
            eval: EvalConfig::serial(),
            deadline: None,
        }
    }
}

impl RunPolicy {
    /// Policy with a given retry count and the default grace window.
    pub fn with_retries(retries: usize) -> Self {
        RunPolicy { retries, ..RunPolicy::default() }
    }

    /// Same policy with a different evaluation-stack configuration.
    pub fn with_eval(mut self, eval: EvalConfig) -> Self {
        self.eval = eval;
        self
    }

    /// Same policy with a hard absolute deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Deterministic seed perturbation for retry attempt `attempt` (attempt 0
/// is the caller's seed unchanged). Splitmix64-style mixing: retries land
/// far from the original stream and from each other.
pub fn reseed(seed: u64, attempt: u64) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Mse<'_> {
    /// Runs `mapper` under the full defensive stack (panic isolation,
    /// watchdog, retry-with-reseed) with the default EDP objective. Never
    /// panics on a misbehaving mapper or cost model; the outcome records
    /// what happened.
    pub fn run_guarded(
        &self,
        mapper: &dyn Mapper,
        budget: Budget,
        seed: u64,
        policy: RunPolicy,
    ) -> RunOutcome {
        let evaluator = EdpEvaluator::new(self.model());
        self.run_guarded_with_evaluator(mapper, &evaluator, budget, seed, policy)
    }

    /// [`Mse::run_guarded`] with a custom objective.
    pub fn run_guarded_with_evaluator(
        &self,
        mapper: &dyn Mapper,
        evaluator: &dyn Evaluator,
        budget: Budget,
        seed: u64,
        policy: RunPolicy,
    ) -> RunOutcome {
        self.run_resilient(mapper, evaluator, budget, seed, policy, None)
    }

    /// [`Mse::run_guarded_with_evaluator`] with an invariant-guard audit:
    /// `audit` is the [`GuardAudit`] side of the `GuardedModel` the
    /// evaluator scores against. Each attempt's quarantined-evaluation
    /// count lands in its [`AttemptRecord`], and an attempt whose every
    /// scored mapping was quarantined reports
    /// [`RunError::InvariantViolation`] (with the first violation's
    /// invariant/level/observed/bound) instead of a bare
    /// [`RunError::NoLegalMapping`] — distinguishing "the model is lying"
    /// from "the space has no legal point".
    pub fn run_guarded_audited(
        &self,
        mapper: &dyn Mapper,
        evaluator: &dyn Evaluator,
        budget: Budget,
        seed: u64,
        policy: RunPolicy,
        audit: &dyn GuardAudit,
    ) -> RunOutcome {
        self.run_resilient(mapper, evaluator, budget, seed, policy, Some(audit))
    }

    fn run_resilient(
        &self,
        mapper: &dyn Mapper,
        evaluator: &dyn Evaluator,
        budget: Budget,
        seed: u64,
        policy: RunPolicy,
        audit: Option<&dyn GuardAudit>,
    ) -> RunOutcome {
        let pool = EvalPool::new(policy.eval);
        let cache = EvalCache::new(policy.eval.cache_capacity);
        self.run_resilient_shared(mapper, evaluator, budget, seed, policy, audit, &pool, &cache)
    }

    /// The full defensive stack against an *externally owned* evaluation
    /// engine: the worker pool and memo cache are the caller's, so they
    /// outlive this run. This is the serving entry point — `mapex serve`
    /// keeps one [`EvalPool`] for the whole daemon and one [`EvalCache`]
    /// per (problem, arch, density) model key, so repeated requests hit
    /// warm caches while results stay bit-identical to a cold run.
    ///
    /// `audit` is optional: `Some` enables the per-attempt quarantine
    /// accounting of [`Mse::run_guarded_audited`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_resilient_shared(
        &self,
        mapper: &dyn Mapper,
        evaluator: &dyn Evaluator,
        budget: Budget,
        seed: u64,
        policy: RunPolicy,
        audit: Option<&dyn GuardAudit>,
        pool: &EvalPool,
        cache: &EvalCache,
    ) -> RunOutcome {
        quiet_sentinel_panics();
        let space = self.space();
        // Evaluation stack, innermost first: the caller's evaluator, a
        // worker pool for batch dispatch, a memo cache (on the submitting
        // thread, so hit sequences are thread-count independent), and the
        // per-attempt watchdog outermost so its counts include cache hits
        // and stay identical to an uncached serial run. Pool and cache
        // persist across retry attempts.
        let pooled;
        let inner: &dyn Evaluator = if pool.lanes() > 1 {
            pooled = PoolEvaluator::new(pool, evaluator);
            &pooled
        } else {
            evaluator
        };
        let cached;
        let stack: &dyn Evaluator = if cache.enabled() {
            cached = CachedEvaluator::new(cache, inner);
            &cached
        } else {
            inner
        };
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        // Best truncated result salvaged from panicked attempts, kept in
        // case every attempt fails.
        let mut salvaged: Option<SearchResult> = None;
        for attempt in 0..=policy.retries {
            let attempt_seed = reseed(seed, attempt as u64);
            let rejections_before = audit.map_or(0, |a| a.report().rejections);
            let watchdog = WatchdogEvaluator::with_deadline(
                stack,
                budget,
                policy.grace_evals,
                policy.deadline,
            );
            let started = Instant::now();
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = SmallRng::seed_from_u64(attempt_seed);
                mapper.search(&space, &watchdog, budget, &mut rng)
            }));
            // Per-attempt guard activity: quarantine count from the
            // counters, violation details from the drained log.
            let quarantined = audit
                .map_or(0, |a| (a.report().rejections - rejections_before) as usize);
            let violations = audit.map_or_else(Vec::new, |a| a.take_violations());
            match run {
                Ok(mut result) => {
                    result.cache = cache.stats();
                    let error = if result.best.is_none() {
                        match violations.first() {
                            // Nothing scored *and* the guard was busy: the
                            // model, not the space, is the problem.
                            Some(v) if quarantined > 0 => Some(RunError::InvariantViolation {
                                invariant: v.invariant.name().to_string(),
                                level: v.level,
                                observed: v.observed,
                                bound: v.bound,
                                quarantined,
                            }),
                            _ => Some(RunError::NoLegalMapping),
                        }
                    } else if !result.best_score.is_finite() {
                        Some(RunError::NonFiniteScore { score: result.best_score })
                    } else {
                        None
                    };
                    let accepted = error.is_none();
                    attempts.push(AttemptRecord {
                        seed: attempt_seed,
                        error,
                        evaluated: result.evaluated,
                        elapsed: result.elapsed,
                        best_score: result.best_score,
                        quarantined,
                    });
                    if accepted {
                        let status = if attempt == 0 {
                            RunStatus::Succeeded
                        } else {
                            RunStatus::Recovered
                        };
                        return RunOutcome {
                            mapper: mapper.name().to_string(),
                            status,
                            attempts,
                            result: Some(result),
                        };
                    }
                }
                Err(payload) => {
                    let evaluated = watchdog.evaluated();
                    let best_score = watchdog.best_score();
                    if let Some(stop) = payload.downcast_ref::<WatchdogStop>() {
                        attempts.push(AttemptRecord {
                            seed: attempt_seed,
                            error: Some(RunError::BudgetOverrun { evaluated: stop.evaluated }),
                            evaluated,
                            elapsed: started.elapsed(),
                            best_score,
                            quarantined,
                        });
                        // No retry: a mapper that ignores its budget once
                        // will ignore it again. Hand back whatever the
                        // shadow incumbent caught before the stop.
                        return RunOutcome {
                            mapper: mapper.name().to_string(),
                            status: RunStatus::WatchdogStopped,
                            attempts,
                            result: watchdog.salvage().map(|mut s| {
                                s.cache = cache.stats();
                                s
                            }),
                        };
                    }
                    attempts.push(AttemptRecord {
                        seed: attempt_seed,
                        error: Some(RunError::MapperPanicked {
                            message: panic_message(&*payload),
                        }),
                        evaluated,
                        elapsed: started.elapsed(),
                        best_score,
                        quarantined,
                    });
                    if let Some(s) = watchdog.salvage() {
                        let better = salvaged
                            .as_ref()
                            .is_none_or(|cur| score_cmp(s.best_score, cur.best_score).is_lt());
                        if better {
                            salvaged = Some(s);
                        }
                    }
                }
            }
        }
        RunOutcome {
            mapper: mapper.name().to_string(),
            status: RunStatus::Failed,
            attempts,
            result: salvaged.map(|mut s| {
                s.cache = cache.stats();
                s
            }),
        }
    }

    /// Guarded portfolio run: every mapper gets the full defensive stack,
    /// results come back ordered best-first (NaN-safe), and one crashing
    /// or runaway mapper cannot poison its peers' results.
    pub fn run_portfolio_resilient(
        &self,
        mappers: &[&dyn Mapper],
        budget: Budget,
        seed: u64,
        policy: RunPolicy,
    ) -> Vec<RunOutcome> {
        let mut out: Vec<RunOutcome> =
            mappers.iter().map(|m| self.run_guarded(*m, budget, seed, policy)).collect();
        out.sort_by(|a, b| score_cmp(a.best_score(), b.best_score()));
        out
    }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be loaded, written, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint.
    Io(std::io::Error),
    /// The file is not a well-formed checkpoint.
    Corrupt(String),
    /// The checkpoint is well-formed but belongs to a different sweep
    /// (seed, budget, strategy, or layer sequence differs).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Mismatch(msg) => {
                write!(f, "checkpoint does not match this sweep: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One completed layer inside a [`SweepCheckpoint`]: enough to rebuild
/// the layer's [`LayerOutcome`] and its replay-buffer contribution
/// exactly. Convergence history and per-sample features are not carried —
/// they do not influence later layers.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCheckpoint {
    /// Workload name (must match the sweep's layer list on resume).
    pub name: String,
    /// EDP of the initialization point.
    pub init_score: f64,
    /// Best score the layer's search reached.
    pub best_score: f64,
    /// The paper's 99.5%-convergence sample index.
    pub converge_sample: usize,
    /// Evaluations the layer consumed.
    pub evaluated: usize,
    /// Wall-clock seconds the layer consumed (informational).
    pub elapsed_secs: f64,
    /// Best mapping in `mapping::codec` spec form; `None` when the layer
    /// found no legal mapping.
    pub mapping: Option<String>,
    /// Latency of the best mapping (cycles).
    pub latency_cycles: f64,
    /// Energy of the best mapping (µJ).
    pub energy_uj: f64,
}

impl LayerCheckpoint {
    /// Captures a finished layer. Public so a fleet worker can ship its
    /// shard result in exactly the form the coordinator checkpoints.
    pub fn from_outcome(o: &LayerOutcome) -> Self {
        let (mapping, cost) = match &o.result.best {
            Some((m, c)) => (Some(mapping::codec::to_spec(m)), *c),
            None => (None, Cost { latency_cycles: f64::NAN, energy_uj: f64::NAN }),
        };
        LayerCheckpoint {
            name: o.name.clone(),
            init_score: o.init_score,
            best_score: o.result.best_score,
            converge_sample: o.converge_sample,
            evaluated: o.result.evaluated,
            elapsed_secs: o.result.elapsed.as_secs_f64(),
            mapping,
            latency_cycles: cost.latency_cycles,
            energy_uj: cost.energy_uj,
        }
    }

    /// Rebuilds the layer's [`LayerOutcome`] (inverse of
    /// [`LayerCheckpoint::from_outcome`] up to non-deterministic fields).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when the stored mapping spec no longer
    /// parses.
    pub fn to_outcome(&self) -> Result<LayerOutcome, CheckpointError> {
        let best = match &self.mapping {
            Some(spec) => {
                let m = mapping::codec::from_spec(spec).map_err(|e| {
                    CheckpointError::Corrupt(format!("layer {}: bad mapping spec: {e}", self.name))
                })?;
                Some((m, Cost { latency_cycles: self.latency_cycles, energy_uj: self.energy_uj }))
            }
            None => None,
        };
        let pareto = best.clone().into_iter().collect();
        Ok(LayerOutcome {
            name: self.name.clone(),
            init_score: self.init_score,
            result: SearchResult {
                best,
                best_score: self.best_score,
                history: vec![ConvergencePoint {
                    samples: self.evaluated,
                    seconds: self.elapsed_secs,
                    best_score: self.best_score,
                }],
                samples: Vec::new(),
                pareto,
                evaluated: self.evaluated,
                pruned: 0,
                elapsed: Duration::from_secs_f64(self.elapsed_secs.max(0.0)),
                cache: mappers::CacheStats::default(),
            },
            converge_sample: self.converge_sample,
        })
    }
}

/// On-disk state of a partially completed network sweep. Serialized as
/// JSON (hand-rolled: the build environment is offline, so no serde) and
/// written atomically — a crash mid-write leaves the previous checkpoint
/// intact, never a torn file.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// Base seed of the sweep.
    pub seed: u64,
    /// Init strategy, as its canonical name.
    pub strategy: String,
    /// Sample budget per layer, if any.
    pub budget_samples: Option<usize>,
    /// Wall-clock budget per layer in seconds, if any.
    pub budget_seconds: Option<f64>,
    /// Completed layers, in sweep order.
    pub layers: Vec<LayerCheckpoint>,
}

/// Canonical checkpoint name of an [`InitStrategy`].
pub fn strategy_name(s: InitStrategy) -> &'static str {
    match s {
        InitStrategy::Random => "random",
        InitStrategy::PreviousLayer => "previous-layer",
        InitStrategy::BySimilarity => "by-similarity",
    }
}

impl SweepCheckpoint {
    /// Empty checkpoint for a fresh sweep.
    pub fn new(seed: u64, strategy: InitStrategy, budget: Budget) -> Self {
        SweepCheckpoint {
            seed,
            strategy: strategy_name(strategy).to_string(),
            budget_samples: budget.max_samples,
            budget_seconds: budget.max_time.map(|t| t.as_secs_f64()),
            layers: Vec::new(),
        }
    }

    /// Rejects resuming under different sweep parameters — a resumed run
    /// must reproduce exactly what the fresh run would have produced, and
    /// seed/budget/strategy all feed into that.
    pub(crate) fn check_matches(
        &self,
        seed: u64,
        strategy: InitStrategy,
        budget: Budget,
        layers: &[Problem],
    ) -> Result<(), CheckpointError> {
        if self.seed != seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint seed {} != requested seed {seed}",
                self.seed
            )));
        }
        if self.strategy != strategy_name(strategy) {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint strategy {:?} != requested {:?}",
                self.strategy,
                strategy_name(strategy)
            )));
        }
        if self.budget_samples != budget.max_samples {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint sample budget {:?} != requested {:?}",
                self.budget_samples, budget.max_samples
            )));
        }
        if self.layers.len() > layers.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} completed layers, sweep has only {}",
                self.layers.len(),
                layers.len()
            )));
        }
        for (lc, p) in self.layers.iter().zip(layers) {
            if lc.name != p.name() {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint layer {:?} != sweep layer {:?}",
                    lc.name,
                    p.name()
                )));
            }
        }
        Ok(())
    }

    /// The checkpoint with every layer's wall-clock `elapsed_secs` zeroed
    /// — the only field that differs between runs of the same sweep on
    /// different machines (or fleet topologies). Comparing `canonical()`
    /// serializations is how "bit-identical sweep result" is defined:
    /// everything except elapsed time must match byte for byte. The fleet
    /// coordinator writes checkpoints pre-canonicalized so files from 1,
    /// 2, or N workers are directly comparable.
    pub fn canonical(&self) -> Self {
        let mut c = self.clone();
        for l in &mut c.layers {
            l.elapsed_secs = 0.0;
        }
        c
    }

    /// Serializes to JSON text.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.layers.len() * 256);
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        // u64 seeds as strings: JSON numbers are doubles and would round
        // seeds above 2^53.
        s.push_str(&format!("  \"seed\": \"{}\",\n", self.seed));
        s.push_str(&format!("  \"strategy\": {},\n", json::escape(&self.strategy)));
        match self.budget_samples {
            Some(n) => s.push_str(&format!("  \"budget_samples\": {n},\n")),
            None => s.push_str("  \"budget_samples\": null,\n"),
        }
        match self.budget_seconds {
            Some(t) => s.push_str(&format!("  \"budget_seconds\": {},\n", json::num(t))),
            None => s.push_str("  \"budget_seconds\": null,\n"),
        }
        s.push_str("  \"layers\": [");
        for (i, l) in self.layers.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {");
            s.push_str(&format!("\"name\": {}, ", json::escape(&l.name)));
            s.push_str(&format!("\"init_score\": {}, ", json::num(l.init_score)));
            s.push_str(&format!("\"best_score\": {}, ", json::num(l.best_score)));
            s.push_str(&format!("\"converge_sample\": {}, ", l.converge_sample));
            s.push_str(&format!("\"evaluated\": {}, ", l.evaluated));
            s.push_str(&format!("\"elapsed_secs\": {}, ", json::num(l.elapsed_secs)));
            match &l.mapping {
                Some(spec) => s.push_str(&format!("\"mapping\": {}, ", json::escape(spec))),
                None => s.push_str("\"mapping\": null, "),
            }
            s.push_str(&format!("\"latency_cycles\": {}, ", json::num(l.latency_cycles)));
            s.push_str(&format!("\"energy_uj\": {}", json::num(l.energy_uj)));
            s.push('}');
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parses checkpoint JSON.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] on malformed JSON or missing fields.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let corrupt = |msg: &str| CheckpointError::Corrupt(msg.to_string());
        let root = json::parse(text).map_err(CheckpointError::Corrupt)?;
        let version = root.get("version").and_then(json::Value::as_u64);
        if version != Some(1) {
            return Err(corrupt("unsupported or missing version"));
        }
        let seed = root
            .get("seed")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| corrupt("missing seed"))?;
        let strategy = root
            .get("strategy")
            .and_then(json::Value::as_str)
            .ok_or_else(|| corrupt("missing strategy"))?
            .to_string();
        let budget_samples = match root.get("budget_samples") {
            None | Some(json::Value::Null) => None,
            Some(v) => {
                Some(v.as_u64().ok_or_else(|| corrupt("bad budget_samples"))? as usize)
            }
        };
        let budget_seconds = match root.get("budget_seconds") {
            None | Some(json::Value::Null) => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| corrupt("bad budget_seconds"))?),
        };
        let layers_json = root
            .get("layers")
            .and_then(json::Value::as_array)
            .ok_or_else(|| corrupt("missing layers"))?;
        let mut layers = Vec::with_capacity(layers_json.len());
        for (i, l) in layers_json.iter().enumerate() {
            let field = |key: &str| {
                l.get(key)
                    .ok_or_else(|| CheckpointError::Corrupt(format!("layer {i}: missing {key}")))
            };
            let num = |key: &str| -> Result<f64, CheckpointError> {
                field(key)?
                    .as_f64()
                    .ok_or_else(|| CheckpointError::Corrupt(format!("layer {i}: bad {key}")))
            };
            let count = |key: &str| -> Result<usize, CheckpointError> {
                field(key)?
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| CheckpointError::Corrupt(format!("layer {i}: bad {key}")))
            };
            let mapping = match l.get("mapping") {
                None | Some(json::Value::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| CheckpointError::Corrupt(format!("layer {i}: bad mapping")))?
                        .to_string(),
                ),
            };
            layers.push(LayerCheckpoint {
                name: field("name")?
                    .as_str()
                    .ok_or_else(|| CheckpointError::Corrupt(format!("layer {i}: bad name")))?
                    .to_string(),
                init_score: num("init_score")?,
                best_score: num("best_score")?,
                converge_sample: count("converge_sample")?,
                evaluated: count("evaluated")?,
                elapsed_secs: num("elapsed_secs")?,
                mapping,
                latency_cycles: num("latency_cycles")?,
                energy_uj: num("energy_uj")?,
            });
        }
        Ok(SweepCheckpoint { seed, strategy, budget_samples, budget_seconds, layers })
    }

    /// Path of the rolling backup `save` keeps next to `path`
    /// (`<path>.bak`): always the previous successfully written
    /// checkpoint, at most one layer of progress behind.
    pub fn backup_path(path: &Path) -> std::path::PathBuf {
        let mut s = path.as_os_str().to_owned();
        s.push(".bak");
        std::path::PathBuf::from(s)
    }

    /// Loads a checkpoint file, falling back to the `.bak` sibling when
    /// the primary is corrupt (torn write, bit rot) or missing (a crash
    /// landed between `save`'s two renames). The backup is at most one
    /// layer behind, and resume re-runs that layer deterministically.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when neither file is readable,
    /// [`CheckpointError::Corrupt`] when neither parses.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let fall_back = |primary_err: CheckpointError| {
            match crate::chaos::read_to_string(&Self::backup_path(path)) {
                Ok(text) => match SweepCheckpoint::from_json(&text) {
                    Ok(c) => {
                        // Operators watch this (`stats.bak_rescues`): a
                        // rescue means the primary was torn or missing and
                        // only the rolling backup saved the resume.
                        BAK_RESCUES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        Ok(c)
                    }
                    Err(_) => Err(match primary_err {
                        CheckpointError::Corrupt(msg) => {
                            CheckpointError::Corrupt(format!("{msg} (backup also unusable)"))
                        }
                        other => other,
                    }),
                },
                Err(_) => Err(primary_err),
            }
        };
        match crate::chaos::read_to_string(path) {
            Ok(text) => match SweepCheckpoint::from_json(&text) {
                Ok(c) => Ok(c),
                Err(e @ CheckpointError::Corrupt(_)) => fall_back(e),
                Err(e) => Err(e),
            },
            Err(io) => fall_back(CheckpointError::Io(io)),
        }
    }

    /// Writes the checkpoint atomically *and durably*: the bytes go to a
    /// `.tmp` sibling which is fsynced before being renamed over `path`
    /// (so a crash cannot promote a torn file), the previous checkpoint is
    /// kept as `.bak` (so later corruption of the primary still resumes),
    /// and the parent directory is fsynced after the renames (so the
    /// renames themselves survive a power cut).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write, sync, or rename failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = crate::chaos::create(&tmp)?;
            crate::chaos::write_all(&mut f, self.to_json().as_bytes())?;
            // A rename is only as durable as the data behind it.
            crate::chaos::sync_all(&f)?;
        }
        if path.exists() {
            crate::chaos::rename(path, &Self::backup_path(path))?;
        }
        crate::chaos::rename(&tmp, path)?;
        // Directory entries have their own durability; fsync is
        // best-effort because not every platform lets a directory be
        // opened for syncing.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// [`crate::warmstart::run_network`] with checkpoint/resume: after every
/// completed layer the sweep state is written atomically to
/// `checkpoint_path`. With `resume = true` and an existing checkpoint,
/// completed layers are skipped — their outcomes and replay-buffer
/// contributions are rebuilt from the file — and the remaining layers run
/// with exactly the seeds a fresh run would have used, so the final
/// outcome is identical to an uninterrupted sweep. A missing checkpoint
/// file with `resume = true` simply starts fresh.
///
/// # Errors
///
/// [`CheckpointError`] when the checkpoint cannot be read, written, or
/// belongs to a different sweep (other seed/budget/strategy/layers).
#[allow(clippy::too_many_arguments)]
pub fn run_network_checkpointed<'m, M, F>(
    layers: &[Problem],
    arch: &Arch,
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    make_model: M,
    make_mapper: F,
    checkpoint_path: &Path,
    resume: bool,
) -> Result<Vec<LayerOutcome>, CheckpointError>
where
    M: FnMut(&Problem) -> Box<dyn CostModel + 'm>,
    F: FnMut() -> Box<dyn Mapper>,
{
    let (mut ckpt, mut out) = replay_checkpoint(layers, buffer, strategy, budget, seed, checkpoint_path, resume)?;
    let start = ckpt.layers.len();
    let rest = run_network_from(
        start,
        layers,
        arch,
        buffer,
        strategy,
        budget,
        seed,
        make_model,
        make_mapper,
        |_, outcome| {
            ckpt.layers.push(LayerCheckpoint::from_outcome(outcome));
            ckpt.save(checkpoint_path)
        },
    )?;
    out.extend(rest);
    Ok(out)
}

/// [`run_network_checkpointed`] with the multi-threaded layer sweep of
/// [`crate::warmstart::run_network_parallel`]: remaining layers fan out
/// over `threads` scoped workers (0 = one per core) while checkpoint
/// writes still happen strictly in layer order on the calling thread, so
/// a resumed or serial run reproduces the identical sweep. Non-`Random`
/// init strategies fall back to the serial chain (warm-start reads the
/// replay buffer between layers).
///
/// # Errors
///
/// [`CheckpointError`] exactly as [`run_network_checkpointed`].
#[allow(clippy::too_many_arguments)]
pub fn run_network_checkpointed_parallel<'m, M, F>(
    layers: &[Problem],
    arch: &Arch,
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    threads: usize,
    make_model: M,
    make_mapper: F,
    checkpoint_path: &Path,
    resume: bool,
) -> Result<Vec<LayerOutcome>, CheckpointError>
where
    M: Fn(&Problem) -> Box<dyn CostModel + 'm> + Sync,
    F: Fn() -> Box<dyn Mapper> + Sync,
{
    let (mut ckpt, mut out) = replay_checkpoint(layers, buffer, strategy, budget, seed, checkpoint_path, resume)?;
    let start = ckpt.layers.len();
    let rest = run_network_parallel_from(
        start,
        layers,
        arch,
        buffer,
        strategy,
        budget,
        seed,
        threads,
        make_model,
        make_mapper,
        |_, outcome| {
            ckpt.layers.push(LayerCheckpoint::from_outcome(outcome));
            ckpt.save(checkpoint_path)
        },
    )?;
    out.extend(rest);
    Ok(out)
}

/// Shared prelude of the checkpointed sweeps: load (or create) the
/// checkpoint, validate it against this sweep's parameters, and rebuild
/// the outcomes and replay-buffer contributions of already-completed
/// layers.
fn replay_checkpoint(
    layers: &[Problem],
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    checkpoint_path: &Path,
    resume: bool,
) -> Result<(SweepCheckpoint, Vec<LayerOutcome>), CheckpointError> {
    let resumable = checkpoint_path.exists()
        || SweepCheckpoint::backup_path(checkpoint_path).exists();
    let ckpt = if resume && resumable {
        let c = SweepCheckpoint::load(checkpoint_path)?;
        c.check_matches(seed, strategy, budget, layers)?;
        c
    } else {
        SweepCheckpoint::new(seed, strategy, budget)
    };
    let mut out = Vec::with_capacity(layers.len());
    for (lc, layer) in ckpt.layers.iter().zip(layers) {
        let outcome = lc.to_outcome()?;
        if let Some((best, _)) = &outcome.result.best {
            buffer.insert(layer.clone(), best.clone());
        }
        out.push(outcome);
    }
    Ok((ckpt, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reseed_is_deterministic_and_distinct() {
        assert_eq!(reseed(42, 0), 42);
        assert_eq!(reseed(42, 1), reseed(42, 1));
        let seeds: Vec<u64> = (0..8).map(|a| reseed(42, a)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "attempts {i} and {j} collide");
            }
        }
    }

    #[test]
    fn json_round_trips_strings_and_numbers() {
        let v = json::parse(r#"{"a": [1, -2.5e3, "x\"\\\nA"], "b": null, "c": true}"#)
            .unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\"\\\nA"));
        assert_eq!(v.get("b"), Some(&json::Value::Null));
        assert_eq!(v.get("c"), Some(&json::Value::Bool(true)));
        assert!(json::parse("{").is_err());
        assert!(json::parse("{} trailing").is_err());
    }

    #[test]
    fn checkpoint_json_round_trips() {
        let ckpt = SweepCheckpoint {
            seed: u64::MAX - 7, // would round through an f64
            strategy: "by-similarity".to_string(),
            budget_samples: Some(500),
            budget_seconds: None,
            layers: vec![
                LayerCheckpoint {
                    name: "conv \"1\"".to_string(),
                    init_score: f64::INFINITY,
                    best_score: 1.25e9,
                    converge_sample: 77,
                    evaluated: 500,
                    elapsed_secs: 0.125,
                    mapping: Some("L0: K4;ord=...".to_string()),
                    latency_cycles: 1.0e6,
                    energy_uj: 3.5,
                },
                LayerCheckpoint {
                    name: "dead-layer".to_string(),
                    init_score: f64::NAN,
                    best_score: f64::INFINITY,
                    converge_sample: 0,
                    evaluated: 10,
                    elapsed_secs: 0.0,
                    mapping: None,
                    latency_cycles: f64::NAN,
                    energy_uj: f64::NAN,
                },
            ],
        };
        let parsed = SweepCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(parsed.seed, ckpt.seed);
        assert_eq!(parsed.strategy, ckpt.strategy);
        assert_eq!(parsed.budget_samples, ckpt.budget_samples);
        assert_eq!(parsed.layers.len(), 2);
        assert_eq!(parsed.layers[0].name, "conv \"1\"");
        assert_eq!(parsed.layers[0].best_score, 1.25e9);
        assert!(parsed.layers[0].init_score.is_infinite());
        assert!(parsed.layers[1].init_score.is_nan());
        assert_eq!(parsed.layers[1].mapping, None);
    }

    #[test]
    fn checkpoint_mismatch_is_rejected() {
        let layers = vec![problem::Problem::conv2d("l1", 2, 8, 8, 7, 7, 3, 3)];
        let budget = Budget::samples(100);
        let ckpt = SweepCheckpoint::new(1, InitStrategy::BySimilarity, budget);
        assert!(ckpt.check_matches(1, InitStrategy::BySimilarity, budget, &layers).is_ok());
        assert!(matches!(
            ckpt.check_matches(2, InitStrategy::BySimilarity, budget, &layers),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            ckpt.check_matches(1, InitStrategy::Random, budget, &layers),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            ckpt.check_matches(1, InitStrategy::BySimilarity, Budget::samples(99), &layers),
            Err(CheckpointError::Mismatch(_))
        ));
        let mut wrong_layer = ckpt.clone();
        wrong_layer.layers.push(LayerCheckpoint {
            name: "other".to_string(),
            init_score: 0.0,
            best_score: 0.0,
            converge_sample: 0,
            evaluated: 0,
            elapsed_secs: 0.0,
            mapping: None,
            latency_cycles: 0.0,
            energy_uj: 0.0,
        });
        assert!(matches!(
            wrong_layer.check_matches(1, InitStrategy::BySimilarity, budget, &layers),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn corrupt_checkpoints_are_reported() {
        assert!(matches!(
            SweepCheckpoint::from_json("not json"),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            SweepCheckpoint::from_json("{\"version\": 2}"),
            Err(CheckpointError::Corrupt(_))
        ));
        // Valid JSON, missing required fields.
        assert!(matches!(
            SweepCheckpoint::from_json("{\"version\": 1, \"seed\": \"0\"}"),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
