//! `mapex serve` — a crash-only mapping-as-a-service daemon.
//!
//! Concurrent clients connect over TCP and exchange one JSON document per
//! line (the protocol reuses [`crate::json`]; there are no new
//! dependencies). Evaluate/search requests run on the daemon's shared
//! [`EvalPool`] and per-model [`EvalCache`]s under the invariant guard,
//! through the same resilient runtime the batch CLI uses — so the
//! robustness machinery of the earlier layers (watchdog budgets, panic
//! isolation, guard quarantine) is what stands between a request and the
//! process.
//!
//! Robustness properties, in order of importance:
//!
//! 1. **Bounded admission.** Work requests pass a bounded queue; when it
//!    is full the client gets an immediate structured overload response
//!    carrying a `retry_after_ms` hint instead of unbounded buffering or a
//!    hung connection.
//! 2. **Deadlines that degrade, not error.** A request's `deadline_ms` is
//!    enforced by the watchdog *inside* the evaluation path; when it
//!    expires the best-so-far incumbent is salvaged and returned flagged
//!    `"degraded": true`.
//! 3. **Error taxonomy.** Every failure response says whether it is
//!    `"transient"` (retry the same request: overload, drain, a panic, a
//!    missed deadline with nothing salvaged) or `"permanent"` (don't:
//!    malformed JSON, a bad spec, an unmappable pairing).
//! 4. **Panic isolation.** A request that panics the mapper or the model
//!    produces a structured error response; the daemon keeps serving.
//! 5. **Graceful drain.** SIGTERM (or [`ServerHandle::drain`]) stops
//!    accepting, finishes everything already admitted, answers each
//!    admitted request exactly once, and exits 0.
//!
//! A `stats` request surfaces uptime, queue depth, cache and
//! guard-quarantine counters, so a live daemon is debuggable in place.
//!
//! # Protocol
//!
//! Request (one line): `{"id": <any>, "op": "ping" | "stats" | "validate"
//! | "evaluate" | "search", ...}`. The `id` is echoed verbatim in the
//! response. Workloads are given either as `"problem"` (the CLI's
//! one-liner codec, e.g. `"GEMM;g;B=4,M=64,K=64,N=64"`) or `"problem_toml"`
//! (the hardened [`spec`] TOML subset); architectures as `"arch"`
//! (`"accel-a"` / `"accel-b"`) or `"arch_toml"`.
//!
//! Response (one line): `{"id": ..., "ok": true, ...}` or `{"id": ...,
//! "ok": false, "error": {"code": ..., "kind": "transient" | "permanent",
//! "message": ..., "retry_after_ms": ...}}`.

use crate::driver::Mse;
use crate::eval::{EvalCache, EvalConfig, EvalPool};
use crate::json;
use crate::runtime::RunPolicy;
use arch::Arch;
use costmodel::{
    CostModel, DenseModel, GuardAudit, GuardConfig, GuardPolicy, GuardedModel, SparseModel,
};
use mappers::{
    Budget, CrossEntropy, EdpEvaluator, Exhaustive, Gamma, HillClimb, Mapper, RandomMapper,
    RandomPruned, Reinforce, RunError, RunStatus, SimulatedAnnealing, StandardGa,
};
use mapping::Mapping;
use problem::{Density, Problem};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Request-worker threads (each runs one admitted request at a time).
    /// `0` resolves to half the cores, at least one.
    pub workers: usize,
    /// Admission-queue bound: requests beyond `workers` in flight plus
    /// this many queued are rejected with an overload response.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`. `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Largest accepted request line; longer ones get a permanent
    /// `request-too-large` response and the connection is closed (there is
    /// no way to resynchronize a line protocol mid-line).
    pub max_request_bytes: usize,
    /// Evaluation stack: worker-pool width shared by the whole daemon,
    /// and the capacity of each per-model evaluation cache.
    pub eval: EvalConfig,
    /// Invariant-guard policy applied to every cost-model evaluation.
    pub guard: Option<GuardPolicy>,
    /// Bound on distinct (problem, arch, density) model caches kept warm.
    pub max_models: usize,
    /// Test hook: accept `"mapper": "panic-injector"`, a mapper that
    /// panics mid-search, to exercise panic isolation end to end. Off by
    /// default; never enable in production.
    pub fault_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            default_deadline_ms: Some(30_000),
            max_request_bytes: 1 << 20,
            eval: EvalConfig { threads: 1, cache_capacity: 1 << 14 },
            guard: Some(GuardPolicy::Reject),
            max_models: 32,
            fault_injection: false,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            (std::thread::available_parallelism().map_or(1, |n| n.get()) / 2).max(1)
        } else {
            self.workers
        }
    }
}

/// Whether a failed request is worth retrying verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Retry later (overload, drain, panic, missed deadline with nothing
    /// salvaged): the failure is about the daemon's current state, not the
    /// request.
    Transient,
    /// Do not retry: the request itself is the problem (malformed JSON,
    /// bad spec, unmappable pairing, a space with no legal point).
    Permanent,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Transient => "transient",
            ErrorKind::Permanent => "permanent",
        }
    }
}

/// A structured failure response before rendering.
struct ServiceError {
    code: &'static str,
    kind: ErrorKind,
    message: String,
    retry_after_ms: Option<u64>,
}

impl ServiceError {
    fn permanent(code: &'static str, message: impl Into<String>) -> Self {
        ServiceError { code, kind: ErrorKind::Permanent, message: message.into(), retry_after_ms: None }
    }

    fn transient(code: &'static str, message: impl Into<String>, retry_after_ms: Option<u64>) -> Self {
        ServiceError { code, kind: ErrorKind::Transient, message: message.into(), retry_after_ms }
    }

    fn render(&self, id: &str) -> String {
        let mut s = format!(
            "{{\"id\": {id}, \"ok\": false, \"error\": {{\"code\": {}, \"kind\": {}, \"message\": {}",
            json::escape(self.code),
            json::escape(self.kind.as_str()),
            json::escape(&self.message),
        );
        if let Some(ms) = self.retry_after_ms {
            s.push_str(&format!(", \"retry_after_ms\": {ms}"));
        }
        s.push_str("}}");
        s
    }
}

/// Terminal statistics returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Wall-clock seconds the daemon served.
    pub uptime_secs: f64,
    /// Connections accepted.
    pub connections: u64,
    /// Work requests admitted to the queue.
    pub accepted: u64,
    /// Admitted requests answered (every admitted request is, exactly once).
    pub completed: u64,
    /// Work requests rejected with an overload response.
    pub rejected_overload: u64,
    /// Work requests rejected because the daemon was draining.
    pub rejected_draining: u64,
    /// Responses flagged `degraded: true` (deadline/budget salvage).
    pub degraded: u64,
    /// Requests whose handler panicked (isolated, answered with an error).
    pub request_panics: u64,
    /// Malformed or invalid requests answered inline.
    pub invalid: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_draining: AtomicU64,
    degraded: AtomicU64,
    request_panics: AtomicU64,
    invalid: AtomicU64,
}

/// Per-model evaluation caches, keyed on (problem, arch, density, guard)
/// so a cache hit can never cross models. FIFO-bounded: a daemon fed an
/// endless stream of distinct workloads stays at `max_models` caches.
struct ModelCaches {
    map: HashMap<String, Arc<EvalCache>>,
    fifo: VecDeque<String>,
}

/// One admitted unit of work plus everything needed to answer it.
struct Job {
    id: String,
    work: Work,
    writer: Arc<Mutex<TcpStream>>,
}

enum Work {
    Evaluate {
        problem: Problem,
        arch: Arch,
        density: Option<Density>,
        mapping: Mapping,
    },
    Search {
        problem: Problem,
        arch: Arch,
        density: Option<Density>,
        mapper: String,
        samples: usize,
        deadline: Option<Duration>,
        seed: u64,
        retries: usize,
    },
}

struct Shared {
    cfg: ServeConfig,
    started: Instant,
    draining: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    counters: Counters,
    pool: EvalPool,
    caches: Mutex<ModelCaches>,
    guard_violations: AtomicU64,
    guard_rejections: AtomicU64,
    /// EWMA of recent request service time in ms (backs `retry_after_ms`).
    ewma_ms: AtomicU64,
    /// Read-half clones of live connections, shut down at drain so reader
    /// threads unblock.
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn should_drain(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal_drain_requested()
    }

    /// `retry_after_ms` hint: roughly how long until a queue slot frees up
    /// — the smoothed service time times the line ahead of the client.
    fn retry_hint(&self, queue_len: usize) -> u64 {
        let ewma = self.ewma_ms.load(Ordering::Relaxed).max(20);
        (ewma * (queue_len as u64 + 1)).clamp(50, 30_000)
    }

    fn observe_service_ms(&self, ms: u64) {
        let old = self.ewma_ms.load(Ordering::Relaxed);
        let new = if old == 0 { ms } else { (old * 7 + ms) / 8 };
        self.ewma_ms.store(new, Ordering::Relaxed);
    }

    /// The evaluation cache for one model key, creating (and FIFO-evicting
    /// beyond `max_models`) as needed.
    fn cache_for(&self, key: String) -> Arc<EvalCache> {
        let mut caches = self.caches.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = caches.map.get(&key) {
            return Arc::clone(c);
        }
        let c = Arc::new(EvalCache::new(self.cfg.eval.cache_capacity));
        caches.map.insert(key.clone(), Arc::clone(&c));
        caches.fifo.push_back(key);
        while caches.fifo.len() > self.cfg.max_models.max(1) {
            if let Some(old) = caches.fifo.pop_front() {
                caches.map.remove(&old);
            }
        }
        c
    }

    fn cache_totals(&self) -> mappers::CacheStats {
        let caches = self.caches.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = mappers::CacheStats::default();
        for c in caches.map.values() {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.evictions += s.evictions;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// SIGTERM / SIGINT → drain (unix only; other platforms drain via the API)
// ---------------------------------------------------------------------------

static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

fn signal_drain_requested() -> bool {
    SIGNAL_DRAIN.load(Ordering::SeqCst)
}

/// Installs SIGTERM/SIGINT handlers that request a graceful drain (the
/// crash-only shutdown path: stop accepting, finish in-flight, answer
/// everything exactly once, exit 0). Safe to call more than once.
#[cfg(unix)]
pub fn install_drain_signal_handlers() {
    // Raw libc `signal(2)` via FFI: the build is dependency-free and std
    // exposes no signal API. The handler only stores to an atomic, which
    // is async-signal-safe.
    extern "C" fn on_signal(_sig: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Non-unix stub: signals are not wired up; drain via [`ServerHandle`].
#[cfg(not(unix))]
pub fn install_drain_signal_handlers() {}

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

/// A running daemon. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::drain`] then [`ServerHandle::join`] (or send SIGTERM
/// when the signal handlers are installed).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting, finish everything
    /// admitted, answer each admitted request exactly once. Returns
    /// immediately; use [`ServerHandle::join`] to wait it out.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Waits for the daemon to finish draining (triggered by
    /// [`ServerHandle::drain`] or a signal) and returns final statistics.
    pub fn join(mut self) -> ServeStats {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let readers: Vec<JoinHandle<()>> = {
            let mut r = self.shared.readers.lock().unwrap_or_else(|e| e.into_inner());
            r.drain(..).collect()
        };
        for r in readers {
            let _ = r.join();
        }
        let c = &self.shared.counters;
        ServeStats {
            uptime_secs: self.shared.started.elapsed().as_secs_f64(),
            connections: c.connections.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_overload: c.rejected_overload.load(Ordering::Relaxed),
            rejected_draining: c.rejected_draining.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            request_panics: c.request_panics.load(Ordering::Relaxed),
            invalid: c.invalid.load(Ordering::Relaxed),
        }
    }
}

/// Binds and starts the daemon: an accept thread, `workers` request
/// workers, and one reader thread per connection.
///
/// # Errors
///
/// I/O errors binding the listen address.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    crate::fault::quiet_sentinel_panics();
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = cfg.resolved_workers();
    let pool = EvalPool::new(cfg.eval);
    let shared = Arc::new(Shared {
        cfg,
        started: Instant::now(),
        draining: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        counters: Counters::default(),
        pool,
        caches: Mutex::new(ModelCaches { map: HashMap::new(), fifo: VecDeque::new() }),
        guard_violations: AtomicU64::new(0),
        guard_rejections: AtomicU64::new(0),
        ewma_ms: AtomicU64::new(0),
        conns: Mutex::new(Vec::new()),
        readers: Mutex::new(Vec::new()),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    let worker_handles = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    Ok(ServerHandle { addr, shared, accept: Some(accept), workers: worker_handles })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.should_drain() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
                }
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || reader_loop(stream, &shared2));
                shared.readers.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Drain: we have stopped accepting. Propagate the flag (the trigger
    // may have been a signal), unblock parked workers, and shut down the
    // read half of every connection so reader threads see EOF instead of
    // blocking forever. Write halves stay open: workers are still
    // answering the admitted backlog.
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    let conns: Vec<TcpStream> = {
        let mut c = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        c.drain(..).collect()
    };
    for c in conns {
        let _ = c.shutdown(Shutdown::Read);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.should_drain() {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let started = Instant::now();
        // Panic isolation: one poisoned request becomes a structured
        // transient error; the worker (and daemon) keep serving.
        let response = match catch_unwind(AssertUnwindSafe(|| execute(shared, &job))) {
            Ok(line) => line,
            Err(payload) => {
                shared.counters.request_panics.fetch_add(1, Ordering::Relaxed);
                ServiceError::transient(
                    "internal-panic",
                    format!(
                        "request handler panicked: {}",
                        crate::fault::panic_message(&*payload)
                    ),
                    Some(shared.retry_hint(0)),
                )
                .render(&job.id)
            }
        };
        shared.observe_service_ms(started.elapsed().as_millis() as u64);
        write_line(&job.writer, &response);
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    }
}

fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    // A vanished client is not an error worth anything but moving on.
    let _ = w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n"));
    let _ = w.flush();
}

// ---------------------------------------------------------------------------
// Connection reader: framing, parsing, admission
// ---------------------------------------------------------------------------

enum LineRead {
    Eof,
    Line(Vec<u8>),
    TooLong,
}

/// Reads one `\n`-terminated line without ever buffering more than `max`
/// bytes — network input must not size our memory.
fn read_bounded_line(r: &mut BufReader<TcpStream>, max: usize) -> std::io::Result<LineRead> {
    let mut line = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if line.is_empty() { LineRead::Eof } else { LineRead::Line(line) });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    r.consume(pos + 1);
                    return Ok(LineRead::TooLong);
                }
                line.extend_from_slice(&buf[..pos]);
                r.consume(pos + 1);
                return Ok(LineRead::Line(line));
            }
            None => {
                let take = buf.len();
                if line.len() + take > max {
                    r.consume(take);
                    return Ok(LineRead::TooLong);
                }
                line.extend_from_slice(buf);
                r.consume(take);
            }
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_bounded_line(&mut reader, shared.cfg.max_request_bytes) {
            Ok(LineRead::Eof) | Err(_) => return,
            Ok(LineRead::TooLong) => {
                shared.counters.invalid.fetch_add(1, Ordering::Relaxed);
                let err = ServiceError::permanent(
                    "request-too-large",
                    format!("request line exceeds {} bytes", shared.cfg.max_request_bytes),
                );
                write_line(&writer, &err.render("null"));
                // A line protocol cannot resynchronize after an oversized
                // line; close rather than misparse.
                return;
            }
            Ok(LineRead::Line(bytes)) => {
                if bytes.iter().all(|b| b.is_ascii_whitespace()) {
                    continue;
                }
                handle_line(shared, &writer, &bytes);
            }
        }
    }
}

/// Parses, validates, and either answers inline (control ops, rejections,
/// malformed input) or admits the request to the work queue.
fn handle_line(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, bytes: &[u8]) {
    let invalid = |err: ServiceError, id: &str| {
        shared.counters.invalid.fetch_add(1, Ordering::Relaxed);
        write_line(writer, &err.render(id));
    };
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(_) => {
            return invalid(
                ServiceError::permanent("bad-json", "request is not valid UTF-8"),
                "null",
            )
        }
    };
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return invalid(
                ServiceError::permanent("bad-json", format!("malformed request: {e}")),
                "null",
            )
        }
    };
    let id = doc.get("id").map_or_else(|| "null".to_string(), json::Value::to_text);
    let op = match doc.get("op").and_then(json::Value::as_str) {
        Some(op) => op,
        None => {
            return invalid(
                ServiceError::permanent("bad-request", "missing string field `op`"),
                &id,
            )
        }
    };
    match op {
        "ping" => write_line(writer, &format!("{{\"id\": {id}, \"ok\": true, \"op\": \"pong\"}}")),
        "stats" => write_line(writer, &render_stats(shared, &id)),
        "validate" => match parse_validate(&doc) {
            Ok(line) => write_line(writer, &format!("{{\"id\": {id}, \"ok\": true, {line}}}")),
            Err(err) => invalid(err, &id),
        },
        "evaluate" | "search" => {
            let work = match parse_work(shared, op, &doc) {
                Ok(w) => w,
                Err(err) => return invalid(err, &id),
            };
            admit(shared, writer, Job { id, work, writer: Arc::clone(writer) });
        }
        other => invalid(
            ServiceError::permanent("bad-request", format!("unknown op `{other}`")),
            &id,
        ),
    }
}

/// Admission control: bounded queue, explicit backpressure, drain refusal.
fn admit(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, job: Job) {
    let rejection = {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if shared.should_drain() {
            shared.counters.rejected_draining.fetch_add(1, Ordering::Relaxed);
            Some(ServiceError::transient(
                "draining",
                "daemon is draining; retry against a healthy instance",
                Some(1_000),
            )
            .render(&job.id))
        } else if q.len() >= shared.cfg.queue_capacity {
            shared.counters.rejected_overload.fetch_add(1, Ordering::Relaxed);
            let hint = shared.retry_hint(q.len());
            Some(ServiceError::transient(
                "overloaded",
                format!(
                    "admission queue is full ({} queued, capacity {})",
                    q.len(),
                    shared.cfg.queue_capacity
                ),
                Some(hint),
            )
            .render(&job.id))
        } else {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            q.push_back(job);
            shared.queue_cv.notify_one();
            None
        }
    };
    if let Some(line) = rejection {
        write_line(writer, &line);
    }
}

// ---------------------------------------------------------------------------
// Request validation (the crates/spec ingestion path)
// ---------------------------------------------------------------------------

fn parse_validate(doc: &json::Value) -> Result<String, ServiceError> {
    let text = doc
        .get("spec")
        .and_then(json::Value::as_str)
        .ok_or_else(|| ServiceError::permanent("bad-request", "validate needs a string `spec`"))?;
    match spec::parse_any(text)
        .map_err(|e| ServiceError::permanent("bad-spec", e.to_string()))?
    {
        spec::Spec::Arch(a) => Ok(format!(
            "\"kind\": \"arch\", \"name\": {}, \"levels\": {}",
            json::escape(a.name()),
            a.num_levels()
        )),
        spec::Spec::Problem(p) => Ok(format!(
            "\"kind\": \"problem\", \"name\": {}, \"macs\": {}",
            json::escape(p.name()),
            p.total_macs()
        )),
    }
}

fn parse_problem_field(doc: &json::Value) -> Result<Problem, ServiceError> {
    if let Some(spec_line) = doc.get("problem").and_then(json::Value::as_str) {
        return problem::codec::from_spec(spec_line)
            .map_err(|e| ServiceError::permanent("bad-spec", format!("problem: {e}")));
    }
    if let Some(toml) = doc.get("problem_toml").and_then(json::Value::as_str) {
        return spec::parse_problem(toml)
            .map_err(|e| ServiceError::permanent("bad-spec", format!("problem_toml: {e}")));
    }
    Err(ServiceError::permanent(
        "bad-request",
        "need `problem` (codec one-liner) or `problem_toml` (TOML spec)",
    ))
}

fn parse_arch_field(doc: &json::Value) -> Result<Arch, ServiceError> {
    if let Some(toml) = doc.get("arch_toml").and_then(json::Value::as_str) {
        return spec::parse_arch(toml)
            .map_err(|e| ServiceError::permanent("bad-spec", format!("arch_toml: {e}")));
    }
    match doc.get("arch").and_then(json::Value::as_str).unwrap_or("accel-b") {
        "accel-a" => Ok(Arch::accel_a()),
        "accel-b" => Ok(Arch::accel_b()),
        other => Err(ServiceError::permanent(
            "bad-request",
            format!("unknown arch `{other}` (accel-a | accel-b, or pass arch_toml)"),
        )),
    }
}

fn parse_density_fields(doc: &json::Value) -> Result<Option<Density>, ServiceError> {
    let get = |key: &str| -> Result<f64, ServiceError> {
        match doc.get(key) {
            None | Some(json::Value::Null) => Ok(1.0),
            Some(v) => v.as_f64().ok_or_else(|| {
                ServiceError::permanent("bad-request", format!("`{key}` must be a number"))
            }),
        }
    };
    let dw = get("weight_density")?;
    let da = get("input_density")?;
    if !(dw > 0.0 && dw <= 1.0 && da > 0.0 && da <= 1.0) {
        return Err(ServiceError::permanent("bad-request", "densities must be in (0, 1]"));
    }
    if dw == 1.0 && da == 1.0 {
        Ok(None)
    } else {
        Ok(Some(Density { weight: dw, input: da }))
    }
}

fn parse_work(shared: &Shared, op: &str, doc: &json::Value) -> Result<Work, ServiceError> {
    let problem = parse_problem_field(doc)?;
    let arch = parse_arch_field(doc)?;
    let density = parse_density_fields(doc)?;
    // An unmappable pairing would burn a whole deadline discovering there
    // is nothing to find; reject it at admission instead.
    let space = mapping::MapSpace::new(problem.clone(), arch.clone());
    if !space.is_mappable() {
        return Err(ServiceError::permanent(
            "unmappable",
            format!("problem `{}` cannot be mapped onto `{}`", problem.name(), arch.name()),
        ));
    }
    match op {
        "evaluate" => {
            let spec_text = doc.get("mapping").and_then(json::Value::as_str).ok_or_else(|| {
                ServiceError::permanent("bad-request", "evaluate needs a string `mapping`")
            })?;
            let mapping = mapping::codec::from_spec(spec_text.trim())
                .map_err(|e| ServiceError::permanent("bad-spec", format!("mapping: {e}")))?;
            Ok(Work::Evaluate { problem, arch, density, mapping })
        }
        _ => {
            let mapper = doc
                .get("mapper")
                .and_then(json::Value::as_str)
                .unwrap_or("gamma")
                .to_string();
            if mapper_by_name(&mapper, shared.cfg.fault_injection).is_none() {
                return Err(ServiceError::permanent(
                    "bad-request",
                    format!("unknown mapper `{mapper}`"),
                ));
            }
            let samples = match doc.get("samples") {
                None | Some(json::Value::Null) => 2_000,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`samples` must be a non-negative integer")
                })? as usize,
            };
            let deadline_ms = match doc.get("deadline_ms") {
                None | Some(json::Value::Null) => shared.cfg.default_deadline_ms,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`deadline_ms` must be a non-negative integer")
                })?),
            };
            if deadline_ms == Some(0) {
                return Err(ServiceError::permanent("bad-request", "`deadline_ms` must be positive"));
            }
            let seed = match doc.get("seed") {
                None | Some(json::Value::Null) => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`seed` must be a non-negative integer")
                })?,
            };
            let retries = match doc.get("retries") {
                None | Some(json::Value::Null) => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`retries` must be a non-negative integer")
                })? as usize,
            };
            Ok(Work::Search {
                problem,
                arch,
                density,
                mapper,
                samples,
                deadline: deadline_ms.map(Duration::from_millis),
                seed,
                retries,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Request execution (on the worker threads)
// ---------------------------------------------------------------------------

/// A mapper that panics mid-search — the fault-injection hook behind
/// [`ServeConfig::fault_injection`], for proving panic isolation across
/// the wire.
struct PanicInjector;

impl Mapper for PanicInjector {
    fn name(&self) -> &str {
        "panic-injector"
    }

    fn search(
        &self,
        _space: &mapping::MapSpace,
        _evaluator: &dyn mappers::Evaluator,
        _budget: Budget,
        _rng: &mut rand::rngs::SmallRng,
    ) -> mappers::SearchResult {
        panic!("injected service fault");
    }
}

/// A mapper that never looks at its budget — the watchdog's sample cap or
/// hard deadline is the only thing that stops it. Fault-injection hook for
/// proving deadline salvage (`"degraded": true`) across the wire.
struct DeadlineIgnorer;

impl Mapper for DeadlineIgnorer {
    fn name(&self) -> &str {
        "deadline-ignorer"
    }

    fn search(
        &self,
        space: &mapping::MapSpace,
        evaluator: &dyn mappers::Evaluator,
        _budget: Budget,
        rng: &mut rand::rngs::SmallRng,
    ) -> mappers::SearchResult {
        loop {
            let batch: Vec<Mapping> = (0..64).map(|_| space.random(rng)).collect();
            let _ = evaluator.evaluate_batch(&batch);
        }
    }
}

/// Mapper factory shared by request validation and execution.
fn mapper_by_name(name: &str, fault_injection: bool) -> Option<Box<dyn Mapper>> {
    Some(match name {
        "gamma" => Box::new(Gamma::new()),
        "random" => Box::new(RandomMapper::new()),
        "random-pruned" => Box::new(RandomPruned::new()),
        "standard-ga" => Box::new(StandardGa::new()),
        "annealing" => Box::new(SimulatedAnnealing::new()),
        "hill-climb" => Box::new(HillClimb::new()),
        "cem" => Box::new(CrossEntropy::new()),
        "reinforce" => Box::new(Reinforce::new()),
        "exhaustive" => Box::new(Exhaustive::new()),
        "panic-injector" if fault_injection => Box::new(PanicInjector),
        "deadline-ignorer" if fault_injection => Box::new(DeadlineIgnorer),
        _ => return None,
    })
}

fn model_key(problem: &Problem, arch: &Arch, density: Option<Density>, guard: Option<GuardPolicy>) -> String {
    // The arch's Debug form pins every capacity/energy/fanout, so two
    // different TOML archs sharing a display name cannot share a cache.
    format!(
        "{}|{:?}|{:?}|{:?}",
        problem::codec::to_spec(problem),
        arch,
        density,
        guard
    )
}

fn make_model(problem: &Problem, arch: &Arch, density: Option<Density>) -> Box<dyn CostModel> {
    match density {
        Some(d) => Box::new(SparseModel::new(
            problem.clone(),
            arch.clone(),
            arch::SparseCaps::flexible(),
            d,
        )),
        None => Box::new(DenseModel::new(problem.clone(), arch.clone())),
    }
}

fn guard_config(policy: GuardPolicy, density: Option<Density>) -> GuardConfig {
    match density {
        Some(d) => GuardConfig::sparse(policy, &arch::SparseCaps::flexible(), d),
        None => GuardConfig::new(policy),
    }
}

fn execute(shared: &Arc<Shared>, job: &Job) -> String {
    match &job.work {
        Work::Evaluate { problem, arch, density, mapping } => {
            execute_evaluate(shared, &job.id, problem, arch, *density, mapping)
        }
        Work::Search { problem, arch, density, mapper, samples, deadline, seed, retries } => {
            execute_search(
                shared, &job.id, problem, arch, *density, mapper, *samples, *deadline, *seed,
                *retries,
            )
        }
    }
}

fn execute_evaluate(
    shared: &Arc<Shared>,
    id: &str,
    problem: &Problem,
    arch: &Arch,
    density: Option<Density>,
    mapping: &Mapping,
) -> String {
    let model = make_model(problem, arch, density);
    let breakdown = match shared.cfg.guard {
        Some(gp) => {
            let guarded = GuardedModel::new(model, guard_config(gp, density));
            let out = guarded.evaluate_detailed(mapping);
            let report = guarded.report();
            shared.guard_violations.fetch_add(report.violations, Ordering::Relaxed);
            shared.guard_rejections.fetch_add(report.rejections, Ordering::Relaxed);
            out
        }
        None => model.evaluate_detailed(mapping),
    };
    match breakdown {
        Ok(b) => format!(
            "{{\"id\": {id}, \"ok\": true, \"score\": {}, \"latency_cycles\": {}, \
             \"energy_uj\": {}, \"lanes\": {}}}",
            json::num(b.cost.edp()),
            json::num(b.cost.latency_cycles),
            json::num(b.cost.energy_uj),
            b.lanes
        ),
        Err(e) => {
            ServiceError::permanent("illegal-mapping", e.to_string()).render(id)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_search(
    shared: &Arc<Shared>,
    id: &str,
    problem: &Problem,
    arch: &Arch,
    density: Option<Density>,
    mapper_name: &str,
    samples: usize,
    deadline: Option<Duration>,
    seed: u64,
    retries: usize,
) -> String {
    let Some(mapper) = mapper_by_name(mapper_name, shared.cfg.fault_injection) else {
        return ServiceError::permanent("bad-request", format!("unknown mapper `{mapper_name}`"))
            .render(id);
    };
    let model = make_model(problem, arch, density);
    // The budget tells the mapper to aim for 90% of the deadline; the
    // watchdog's hard deadline is the deadline itself. A well-behaved
    // mapper finishes early and undegraded; anything else is stopped and
    // its shadow incumbent salvaged.
    let budget = Budget {
        max_samples: Some(samples),
        max_time: deadline.map(|d| d.mul_f64(0.9)),
    };
    let policy = RunPolicy::with_retries(retries)
        .with_eval(shared.cfg.eval)
        .with_deadline(deadline.map(|d| Instant::now() + d));
    let cache = shared.cache_for(model_key(problem, arch, density, shared.cfg.guard));
    let cache_before = cache.stats();
    let outcome = match shared.cfg.guard {
        Some(gp) => {
            let guarded = GuardedModel::new(model, guard_config(gp, density));
            let evaluator = EdpEvaluator::new(&guarded);
            let rejections_before = guarded.report().rejections;
            let outcome = Mse::new(&guarded).run_resilient_shared(
                mapper.as_ref(),
                &evaluator,
                budget,
                seed,
                policy,
                Some(&guarded),
                &shared.pool,
                &cache,
            );
            let report = guarded.report();
            shared.guard_violations.fetch_add(report.violations, Ordering::Relaxed);
            shared
                .guard_rejections
                .fetch_add(report.rejections.saturating_sub(rejections_before), Ordering::Relaxed);
            outcome
        }
        None => {
            let evaluator = EdpEvaluator::new(model.as_ref());
            Mse::new(model.as_ref()).run_resilient_shared(
                mapper.as_ref(),
                &evaluator,
                budget,
                seed,
                policy,
                None,
                &shared.pool,
                &cache,
            )
        }
    };
    let status = match outcome.status {
        RunStatus::Succeeded => "succeeded",
        RunStatus::Recovered => "recovered",
        RunStatus::WatchdogStopped => "watchdog-stopped",
        RunStatus::Failed => "failed",
    };
    match outcome.result.as_ref().and_then(|r| r.best.as_ref().map(|b| (r, b))) {
        Some((r, (best, cost))) => {
            // A salvaged incumbent (deadline or budget stop, or retries
            // exhausted with partial state) is an answer, just an honest
            // one: flagged degraded rather than dressed up as converged.
            let degraded =
                matches!(outcome.status, RunStatus::WatchdogStopped | RunStatus::Failed);
            if degraded {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            let after = cache.stats();
            format!(
                "{{\"id\": {id}, \"ok\": true, \"degraded\": {degraded}, \"status\": \"{status}\", \
                 \"score\": {}, \"latency_cycles\": {}, \"energy_uj\": {}, \"mapping\": {}, \
                 \"evaluated\": {}, \"elapsed_ms\": {}, \"attempts\": {}, \"cache_hits\": {}}}",
                json::num(r.best_score),
                json::num(cost.latency_cycles),
                json::num(cost.energy_uj),
                json::escape(&mapping::codec::to_spec(best)),
                r.evaluated,
                r.elapsed.as_millis(),
                outcome.attempts.len(),
                after.hits.saturating_sub(cache_before.hits),
            )
        }
        None => {
            let last_error = outcome.attempts.iter().rev().find_map(|a| a.error.as_ref());
            run_error_response(shared, last_error).render(id)
        }
    }
}

/// Maps the runtime's [`RunError`] taxonomy onto the wire taxonomy.
fn run_error_response(shared: &Shared, error: Option<&RunError>) -> ServiceError {
    let hint = Some(shared.retry_hint(0));
    match error {
        Some(RunError::MapperPanicked { message }) => ServiceError::transient(
            "mapper-panicked",
            format!("mapper panicked on every attempt: {message}"),
            hint,
        ),
        Some(RunError::BudgetOverrun { evaluated }) => ServiceError::transient(
            "deadline-exceeded",
            format!(
                "deadline expired after {evaluated} evaluations with no legal mapping found; \
                 retry with a longer deadline"
            ),
            hint,
        ),
        Some(RunError::NonFiniteScore { score }) => ServiceError::transient(
            "non-finite-score",
            format!("search returned non-finite best score {score}"),
            hint,
        ),
        Some(RunError::NoLegalMapping) => ServiceError::permanent(
            "no-legal-mapping",
            "search evaluated no legal mapping in this space",
        ),
        Some(e @ RunError::InvariantViolation { .. }) => {
            ServiceError::permanent("invariant-violation", e.to_string())
        }
        None => ServiceError::transient("internal", "search produced no result", hint),
    }
}

fn render_stats(shared: &Arc<Shared>, id: &str) -> String {
    let c = &shared.counters;
    let queue_depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let cache = shared.cache_totals();
    let models = shared.caches.lock().unwrap_or_else(|e| e.into_inner()).map.len();
    format!(
        "{{\"id\": {id}, \"ok\": true, \"uptime_ms\": {}, \"draining\": {}, \
         \"queue_depth\": {queue_depth}, \"queue_capacity\": {}, \"workers\": {}, \
         \"connections\": {}, \"accepted\": {}, \"completed\": {}, \
         \"rejected_overload\": {}, \"rejected_draining\": {}, \"degraded\": {}, \
         \"request_panics\": {}, \"invalid\": {}, \"models_cached\": {models}, \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \"evictions\": {}}}, \
         \"guard\": {{\"violations\": {}, \"rejections\": {}}}}}",
        shared.started.elapsed().as_millis(),
        shared.should_drain(),
        shared.cfg.queue_capacity,
        shared.cfg.resolved_workers(),
        c.connections.load(Ordering::Relaxed),
        c.accepted.load(Ordering::Relaxed),
        c.completed.load(Ordering::Relaxed),
        c.rejected_overload.load(Ordering::Relaxed),
        c.rejected_draining.load(Ordering::Relaxed),
        c.degraded.load(Ordering::Relaxed),
        c.request_panics.load(Ordering::Relaxed),
        c.invalid.load(Ordering::Relaxed),
        cache.hits,
        cache.misses,
        cache.inserts,
        cache.evictions,
        shared.guard_violations.load(Ordering::Relaxed),
        shared.guard_rejections.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rendering_carries_taxonomy() {
        let e = ServiceError::transient("overloaded", "queue full", Some(250));
        let line = e.render("7");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(err.get("kind").unwrap().as_str(), Some("transient"));
        assert_eq!(err.get("retry_after_ms").unwrap().as_u64(), Some(250));
        let p = ServiceError::permanent("bad-spec", "nope").render("null");
        let v = json::parse(&p).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("permanent"));
    }

    #[test]
    fn mapper_factory_gates_fault_injection() {
        assert!(mapper_by_name("gamma", false).is_some());
        assert!(mapper_by_name("panic-injector", false).is_none());
        assert!(mapper_by_name("panic-injector", true).is_some());
        assert!(mapper_by_name("nope", true).is_none());
    }

    #[test]
    fn model_keys_distinguish_arch_and_density() {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_a();
        let b = Arch::accel_b();
        let d = Some(Density { weight: 0.5, input: 1.0 });
        let k1 = model_key(&p, &a, None, Some(GuardPolicy::Reject));
        let k2 = model_key(&p, &b, None, Some(GuardPolicy::Reject));
        let k3 = model_key(&p, &b, d, Some(GuardPolicy::Reject));
        let k4 = model_key(&p, &b, None, None);
        assert!(k1 != k2 && k2 != k3 && k2 != k4);
    }
}
