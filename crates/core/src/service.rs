//! `mapex serve` — a crash-only mapping-as-a-service daemon.
//!
//! Concurrent clients connect over TCP and exchange one JSON document per
//! line (the protocol reuses [`crate::json`]; there are no new
//! dependencies). Evaluate/search requests run on the daemon's shared
//! [`EvalPool`] and per-model [`EvalCache`]s under the invariant guard,
//! through the same resilient runtime the batch CLI uses — so the
//! robustness machinery of the earlier layers (watchdog budgets, panic
//! isolation, guard quarantine) is what stands between a request and the
//! process.
//!
//! Robustness properties, in order of importance:
//!
//! 1. **Bounded admission.** Work requests pass a bounded queue; when it
//!    is full the client gets an immediate structured overload response
//!    carrying a `retry_after_ms` hint instead of unbounded buffering or a
//!    hung connection.
//! 2. **Deadlines that degrade, not error.** A request's `deadline_ms` is
//!    enforced by the watchdog *inside* the evaluation path; when it
//!    expires the best-so-far incumbent is salvaged and returned flagged
//!    `"degraded": true`.
//! 3. **Error taxonomy.** Every failure response says whether it is
//!    `"transient"` (retry the same request: overload, drain, a panic, a
//!    missed deadline with nothing salvaged) or `"permanent"` (don't:
//!    malformed JSON, a bad spec, an unmappable pairing).
//! 4. **Panic isolation.** A request that panics the mapper or the model
//!    produces a structured error response; the daemon keeps serving.
//! 5. **Graceful drain.** SIGTERM (or [`ServerHandle::drain`]) stops
//!    accepting, finishes everything already admitted, answers each
//!    admitted request exactly once, and exits 0.
//!
//! A `stats` request surfaces uptime, queue depth, cache and
//! guard-quarantine counters, so a live daemon is debuggable in place.
//!
//! # Protocol
//!
//! Request (one line): `{"id": <any>, "op": "ping" | "stats" | "validate"
//! | "evaluate" | "search", ...}`. The `id` is echoed verbatim in the
//! response. Workloads are given either as `"problem"` (the CLI's
//! one-liner codec, e.g. `"GEMM;g;B=4,M=64,K=64,N=64"`) or `"problem_toml"`
//! (the hardened [`spec`] TOML subset); architectures as `"arch"`
//! (`"accel-a"` / `"accel-b"`) or `"arch_toml"`.
//!
//! Response (one line): `{"id": ..., "ok": true, ...}` or `{"id": ...,
//! "ok": false, "error": {"code": ..., "kind": "transient" | "permanent",
//! "message": ..., "retry_after_ms": ...}}`.

use crate::driver::Mse;
use crate::eval::{EvalCache, EvalConfig, EvalPool};
use crate::fleet::{
    self, ArchWire, Fleet, FleetConfig, SearchOk, ServeRole, ShardData, ShardError, ShardKind,
    ShardOutcome, ShardSpec, WorkerLink,
};
use crate::json;
use crate::runtime::{reseed, LayerCheckpoint, RunPolicy, SweepCheckpoint};
use crate::store::WarmStore;
use crate::warmstart::{run_layer, InitStrategy, ReplayBuffer};
use arch::Arch;
use costmodel::{
    CostModel, DenseModel, GuardAudit, GuardConfig, GuardPolicy, GuardedModel, SparseModel,
};
use mappers::{
    score_cmp, Budget, CrossEntropy, Dosa, EdpEvaluator, Exhaustive, Gamma, HillClimb, Mapper,
    RandomMapper, RandomPruned, Reinforce, RunError, RunStatus, SimulatedAnnealing, StandardGa,
};
use mapping::Mapping;
use problem::{Density, Problem};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Request-worker threads (each runs one admitted request at a time).
    /// `0` resolves to half the cores, at least one.
    pub workers: usize,
    /// Admission-queue bound: requests beyond `workers` in flight plus
    /// this many queued are rejected with an overload response.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`. `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Largest accepted request line; longer ones get a permanent
    /// `request-too-large` response and the connection is closed (there is
    /// no way to resynchronize a line protocol mid-line).
    pub max_request_bytes: usize,
    /// Evaluation stack: worker-pool width shared by the whole daemon,
    /// and the capacity of each per-model evaluation cache.
    pub eval: EvalConfig,
    /// Invariant-guard policy applied to every cost-model evaluation.
    pub guard: Option<GuardPolicy>,
    /// Bound on distinct (problem, arch, density) model caches kept warm.
    pub max_models: usize,
    /// Test hook: accept `"mapper": "panic-injector"`, a mapper that
    /// panics mid-search, to exercise panic isolation end to end. Off by
    /// default; never enable in production.
    pub fault_injection: bool,
    /// Fleet topology role: standalone (default), coordinator, or worker.
    pub role: ServeRole,
    /// Fleet timing/retry knobs (read by coordinators and workers).
    pub fleet: FleetConfig,
    /// Directory for service-managed sweep checkpoints. `sweep` requests
    /// that name a `checkpoint` are rejected when this is unset — clients
    /// must not choose arbitrary filesystem paths.
    pub checkpoint_dir: Option<PathBuf>,
    /// Durable warm-start store path ([`crate::store::WarmStore`]). When
    /// set, completed searches and sweep layers deposit their incumbents,
    /// new searches are seeded from the most similar validated prior, and
    /// mapper `auto` resolves through the store's bandit. `None` disables
    /// all warm-start behavior (requests run exactly as before).
    pub store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            default_deadline_ms: Some(30_000),
            max_request_bytes: 1 << 20,
            eval: EvalConfig { threads: 1, cache_capacity: 1 << 14 },
            guard: Some(GuardPolicy::Reject),
            max_models: 32,
            fault_injection: false,
            role: ServeRole::Standalone,
            fleet: FleetConfig::default(),
            checkpoint_dir: None,
            store: None,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            (std::thread::available_parallelism().map_or(1, |n| n.get()) / 2).max(1)
        } else {
            self.workers
        }
    }
}

/// Whether a failed request is worth retrying verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Retry later (overload, drain, panic, missed deadline with nothing
    /// salvaged): the failure is about the daemon's current state, not the
    /// request.
    Transient,
    /// Do not retry: the request itself is the problem (malformed JSON,
    /// bad spec, unmappable pairing, a space with no legal point).
    Permanent,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Transient => "transient",
            ErrorKind::Permanent => "permanent",
        }
    }
}

/// A structured failure response before rendering.
struct ServiceError {
    code: &'static str,
    kind: ErrorKind,
    message: String,
    retry_after_ms: Option<u64>,
}

impl ServiceError {
    fn permanent(code: &'static str, message: impl Into<String>) -> Self {
        ServiceError { code, kind: ErrorKind::Permanent, message: message.into(), retry_after_ms: None }
    }

    fn transient(code: &'static str, message: impl Into<String>, retry_after_ms: Option<u64>) -> Self {
        ServiceError { code, kind: ErrorKind::Transient, message: message.into(), retry_after_ms }
    }

    fn render(&self, id: &str) -> String {
        let mut s = format!(
            "{{\"id\": {id}, \"ok\": false, \"error\": {{\"code\": {}, \"kind\": {}, \"message\": {}",
            json::escape(self.code),
            json::escape(self.kind.as_str()),
            json::escape(&self.message),
        );
        if let Some(ms) = self.retry_after_ms {
            s.push_str(&format!(", \"retry_after_ms\": {ms}"));
        }
        s.push_str("}}");
        s
    }
}

/// Terminal statistics returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Wall-clock seconds the daemon served.
    pub uptime_secs: f64,
    /// Connections accepted.
    pub connections: u64,
    /// Work requests admitted to the queue.
    pub accepted: u64,
    /// Admitted requests answered (every admitted request is, exactly once).
    pub completed: u64,
    /// Work requests rejected with an overload response.
    pub rejected_overload: u64,
    /// Work requests rejected because the daemon was draining.
    pub rejected_draining: u64,
    /// Responses flagged `degraded: true` (deadline/budget salvage).
    pub degraded: u64,
    /// Requests whose handler panicked (isolated, answered with an error).
    pub request_panics: u64,
    /// Malformed or invalid requests answered inline.
    pub invalid: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_draining: AtomicU64,
    degraded: AtomicU64,
    request_panics: AtomicU64,
    invalid: AtomicU64,
}

/// Per-model evaluation caches, keyed on (problem, arch, density, guard)
/// so a cache hit can never cross models. FIFO-bounded: a daemon fed an
/// endless stream of distinct workloads stays at `max_models` caches.
struct ModelCaches {
    map: HashMap<String, Arc<EvalCache>>,
    fifo: VecDeque<String>,
}

/// One admitted unit of work plus everything needed to answer it.
struct Job {
    id: String,
    work: Work,
    writer: Arc<Mutex<TcpStream>>,
}

enum Work {
    Evaluate {
        problem: Problem,
        arch: Arch,
        density: Option<Density>,
        mapping: Mapping,
    },
    Search {
        problem: Problem,
        arch: Arch,
        arch_wire: ArchWire,
        density: Option<Density>,
        mapper: String,
        samples: usize,
        deadline: Option<Duration>,
        seed: u64,
        retries: usize,
        /// `>= 2` fans the search out into this many independently seeded
        /// population islands (across the fleet when one is attached),
        /// merging to the best incumbent; `0`/`1` searches once.
        islands: usize,
    },
    Sweep(Box<SweepWork>),
}

/// An admitted multi-layer sweep (the fleet's main fan-out unit).
/// Mappability was checked against the parsed arch at admission; only the
/// wire form is kept — shards re-derive the arch from it.
struct SweepWork {
    layers: Vec<Problem>,
    arch_wire: ArchWire,
    density: Option<Density>,
    mapper: String,
    samples: usize,
    seed: u64,
    /// Resolved checkpoint path under [`ServeConfig::checkpoint_dir`].
    checkpoint: Option<PathBuf>,
    /// The client-facing checkpoint name (echoed in the response).
    checkpoint_name: Option<String>,
    resume: bool,
}

struct Shared {
    cfg: ServeConfig,
    started: Instant,
    draining: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    counters: Counters,
    pool: EvalPool,
    caches: Mutex<ModelCaches>,
    guard_violations: AtomicU64,
    guard_rejections: AtomicU64,
    /// EWMA of recent request service time in ms (backs `retry_after_ms`).
    ewma_ms: AtomicU64,
    /// Read-half clones of live *client* connections keyed by a per-conn
    /// token, shut down at drain so reader threads unblock. Connections
    /// that register as fleet workers are removed from this map: shard
    /// results must keep flowing during drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_token: AtomicU64,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Coordinator scheduler ([`ServeRole::Coordinator`] only).
    fleet: Option<Arc<Fleet>>,
    /// Link to the coordinator ([`ServeRole::Worker`] only).
    worker_link: Option<Arc<WorkerLink>>,
    /// Hard-kill flag ([`ServerHandle::kill`], the chaos-test stand-in
    /// for SIGKILL): in-flight sweep drivers abandon their jobs at the
    /// next layer boundary instead of finishing the drain.
    aborted: AtomicBool,
    /// Durable warm-start store (standalone and coordinator roles; workers
    /// receive seeds in shard payloads and never open a store themselves).
    store: Option<Arc<WarmStore>>,
}

impl Shared {
    fn should_drain(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal_drain_requested()
    }

    /// `retry_after_ms` hint: roughly how long until a queue slot frees up
    /// — the smoothed service time times the line ahead of the client.
    fn retry_hint(&self, queue_len: usize) -> u64 {
        let ewma = self.ewma_ms.load(Ordering::Relaxed).max(20);
        (ewma * (queue_len as u64 + 1)).clamp(50, 30_000)
    }

    fn observe_service_ms(&self, ms: u64) {
        let old = self.ewma_ms.load(Ordering::Relaxed);
        let new = if old == 0 { ms } else { (old * 7 + ms) / 8 };
        self.ewma_ms.store(new, Ordering::Relaxed);
    }

    /// The evaluation cache for one model key, creating (and FIFO-evicting
    /// beyond `max_models`) as needed.
    fn cache_for(&self, key: String) -> Arc<EvalCache> {
        let mut caches = self.caches.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = caches.map.get(&key) {
            return Arc::clone(c);
        }
        let c = Arc::new(EvalCache::new(self.cfg.eval.cache_capacity));
        caches.map.insert(key.clone(), Arc::clone(&c));
        caches.fifo.push_back(key);
        while caches.fifo.len() > self.cfg.max_models.max(1) {
            if let Some(old) = caches.fifo.pop_front() {
                caches.map.remove(&old);
            }
        }
        c
    }

    fn cache_totals(&self) -> mappers::CacheStats {
        let caches = self.caches.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = mappers::CacheStats::default();
        for c in caches.map.values() {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.evictions += s.evictions;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// SIGTERM / SIGINT → drain (unix only; other platforms drain via the API)
// ---------------------------------------------------------------------------

static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

fn signal_drain_requested() -> bool {
    SIGNAL_DRAIN.load(Ordering::SeqCst)
}

/// Installs SIGTERM/SIGINT handlers that request a graceful drain (the
/// crash-only shutdown path: stop accepting, finish in-flight, answer
/// everything exactly once, exit 0). Safe to call more than once.
#[cfg(unix)]
pub fn install_drain_signal_handlers() {
    // Raw libc `signal(2)` via FFI: the build is dependency-free and std
    // exposes no signal API. The handler only stores to an atomic, which
    // is async-signal-safe.
    extern "C" fn on_signal(_sig: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Non-unix stub: signals are not wired up; drain via [`ServerHandle`].
#[cfg(not(unix))]
pub fn install_drain_signal_handlers() {}

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

/// A running daemon. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::drain`] then [`ServerHandle::join`] (or send SIGTERM
/// when the signal handlers are installed).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Fleet supervisor (coordinator) or link manager + shard executors
    /// (worker).
    fleet_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting, finish everything
    /// admitted, answer each admitted request exactly once. Returns
    /// immediately; use [`ServerHandle::join`] to wait it out.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Chaos hook: sever this worker daemon's link to its coordinator
    /// (simulated worker death, as the coordinator sees it — the daemon
    /// itself keeps serving its own clients). No-op on other roles.
    pub fn chaos_sever_fleet_link(&self) {
        if let Some(link) = &self.shared.worker_link {
            link.sever();
        }
    }

    /// Chaos hook: stop this worker daemon's heartbeats while leaving the
    /// connection and shard execution running — forces a lease expiry
    /// whose late results arrive as discardable duplicates. No-op on
    /// other roles.
    pub fn chaos_mute_fleet_link(&self) {
        if let Some(link) = &self.shared.worker_link {
            link.mute();
        }
    }

    /// Hard stop — the in-process stand-in for SIGKILL in coordinator
    /// chaos tests. Unlike [`ServerHandle::drain`], admitted sweeps are
    /// abandoned at the next layer boundary (the checkpoint keeps the
    /// completed prefix), connections are cut both ways, and every thread
    /// is joined. The listen port is free when this returns.
    pub fn kill(mut self) {
        self.shared.aborted.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(f) = &self.shared.fleet {
            f.shutdown();
        }
        if let Some(link) = &self.shared.worker_link {
            link.sever();
        }
        let conns: Vec<TcpStream> = {
            let mut c = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            c.drain().map(|(_, s)| s).collect()
        };
        for c in conns {
            let _ = c.shutdown(Shutdown::Both);
        }
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The fleet stops only after the service workers have drained:
        // an admitted sweep keeps its workers until its last layer lands.
        if let Some(f) = &self.shared.fleet {
            f.shutdown();
        }
        for t in self.fleet_threads.drain(..) {
            let _ = t.join();
        }
        let readers: Vec<JoinHandle<()>> = {
            let mut r = self.shared.readers.lock().unwrap_or_else(|e| e.into_inner());
            r.drain(..).collect()
        };
        for r in readers {
            let _ = r.join();
        }
    }

    /// Waits for the daemon to finish draining (triggered by
    /// [`ServerHandle::drain`] or a signal) and returns final statistics.
    pub fn join(mut self) -> ServeStats {
        self.join_threads();
        let c = &self.shared.counters;
        ServeStats {
            uptime_secs: self.shared.started.elapsed().as_secs_f64(),
            connections: c.connections.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_overload: c.rejected_overload.load(Ordering::Relaxed),
            rejected_draining: c.rejected_draining.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            request_panics: c.request_panics.load(Ordering::Relaxed),
            invalid: c.invalid.load(Ordering::Relaxed),
        }
    }
}

/// Binds and starts the daemon: an accept thread, `workers` request
/// workers, and one reader thread per connection.
///
/// # Errors
///
/// I/O errors binding the listen address.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    crate::fault::quiet_sentinel_panics();
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = cfg.resolved_workers();
    let pool = EvalPool::new(cfg.eval);
    let (fleet_sched, worker_link) = match &cfg.role {
        ServeRole::Coordinator => (Some(Arc::new(Fleet::new(cfg.fleet.clone()))), None),
        ServeRole::Worker { coordinator } => (
            None,
            Some(Arc::new(WorkerLink::new(cfg.fleet.clone(), coordinator.clone(), workers))),
        ),
        ServeRole::Standalone => (None, None),
    };
    // Workers never open a store — seeds arrive inside shard payloads, so
    // the coordinator's store stays the single source of priors.
    let store = match (&cfg.store, &cfg.role) {
        (Some(path), ServeRole::Standalone | ServeRole::Coordinator) => {
            Some(Arc::new(WarmStore::open(path)?))
        }
        _ => None,
    };
    let shared = Arc::new(Shared {
        cfg,
        started: Instant::now(),
        draining: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        counters: Counters::default(),
        pool,
        caches: Mutex::new(ModelCaches { map: HashMap::new(), fifo: VecDeque::new() }),
        guard_violations: AtomicU64::new(0),
        guard_rejections: AtomicU64::new(0),
        ewma_ms: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
        conn_token: AtomicU64::new(1),
        readers: Mutex::new(Vec::new()),
        fleet: fleet_sched,
        worker_link,
        aborted: AtomicBool::new(false),
        store,
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    let worker_handles = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let mut fleet_threads = Vec::new();
    if let Some(f) = &shared.fleet {
        fleet_threads.push(Fleet::spawn_supervisor(Arc::clone(f)));
    }
    if let Some(link) = &shared.worker_link {
        let drain_view = Arc::clone(&shared);
        fleet_threads
            .push(WorkerLink::spawn_manager(Arc::clone(link), move || drain_view.should_drain()));
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            fleet_threads.push(std::thread::spawn(move || worker_shard_loop(&shared)));
        }
    }
    Ok(ServerHandle { addr, shared, accept: Some(accept), workers: worker_handles, fleet_threads })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.should_drain() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let token = shared.conn_token.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap_or_else(|e| e.into_inner()).insert(token, clone);
                }
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || reader_loop(stream, &shared2, token));
                shared.readers.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Drain: we have stopped accepting. Propagate the flag (the trigger
    // may have been a signal), unblock parked workers, and shut down the
    // read half of every connection so reader threads see EOF instead of
    // blocking forever. Write halves stay open: workers are still
    // answering the admitted backlog.
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    let conns: Vec<TcpStream> = {
        let mut c = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        c.drain().map(|(_, s)| s).collect()
    };
    for c in conns {
        let _ = c.shutdown(Shutdown::Read);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.should_drain() {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let started = Instant::now();
        // Panic isolation: one poisoned request becomes a structured
        // transient error; the worker (and daemon) keep serving.
        let response = match catch_unwind(AssertUnwindSafe(|| execute(shared, &job))) {
            Ok(line) => line,
            Err(payload) => {
                shared.counters.request_panics.fetch_add(1, Ordering::Relaxed);
                ServiceError::transient(
                    "internal-panic",
                    format!(
                        "request handler panicked: {}",
                        crate::fault::panic_message(&*payload)
                    ),
                    Some(shared.retry_hint(0)),
                )
                .render(&job.id)
            }
        };
        shared.observe_service_ms(started.elapsed().as_millis() as u64);
        write_line(&job.writer, &response);
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    }
}

fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    match crate::chaos::net_send_fault() {
        Some(crate::chaos::NetFault::Reset) => {
            // Mid-frame reset: the client sees a dropped connection with no
            // (or a torn) response and must recover by retrying.
            let _ = w.shutdown(std::net::Shutdown::Both);
            return;
        }
        Some(crate::chaos::NetFault::Short(n)) => {
            let cut = n.min(line.len());
            let _ = w.write_all(&line.as_bytes()[..cut]);
            let _ = w.flush();
            let _ = w.shutdown(std::net::Shutdown::Both);
            return;
        }
        Some(crate::chaos::NetFault::Delay(d)) => std::thread::sleep(d),
        None => {}
    }
    // A vanished client is not an error worth anything but moving on.
    let _ = w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n"));
    let _ = w.flush();
}

// ---------------------------------------------------------------------------
// Connection reader: framing, parsing, admission
// ---------------------------------------------------------------------------

enum LineRead {
    Eof,
    Line(Vec<u8>),
    TooLong,
}

/// Reads one `\n`-terminated line without ever buffering more than `max`
/// bytes — network input must not size our memory.
fn read_bounded_line(r: &mut BufReader<TcpStream>, max: usize) -> std::io::Result<LineRead> {
    match crate::chaos::net_recv_fault() {
        Some(crate::chaos::NetFault::Reset) => {
            let _ = r.get_ref().shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "chaos: connection reset",
            ));
        }
        Some(crate::chaos::NetFault::Delay(d)) => std::thread::sleep(d),
        // A short *read* of a line-framed stream is just a later read.
        Some(crate::chaos::NetFault::Short(_)) | None => {}
    }
    let mut line = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if line.is_empty() { LineRead::Eof } else { LineRead::Line(line) });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    r.consume(pos + 1);
                    return Ok(LineRead::TooLong);
                }
                line.extend_from_slice(&buf[..pos]);
                r.consume(pos + 1);
                return Ok(LineRead::Line(line));
            }
            None => {
                let take = buf.len();
                if line.len() + take > max {
                    r.consume(take);
                    return Ok(LineRead::TooLong);
                }
                line.extend_from_slice(buf);
                r.consume(take);
            }
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>, token: u64) {
    // `worker_id` is set iff this connection registered as a fleet
    // worker; its death must then re-dispatch that worker's shards.
    let mut worker_id: Option<u64> = None;
    if let Ok(w) = stream.try_clone() {
        let writer = Arc::new(Mutex::new(w));
        let mut reader = BufReader::new(stream);
        loop {
            match read_bounded_line(&mut reader, shared.cfg.max_request_bytes) {
                Ok(LineRead::Eof) | Err(_) => break,
                Ok(LineRead::TooLong) => {
                    shared.counters.invalid.fetch_add(1, Ordering::Relaxed);
                    let err = ServiceError::permanent(
                        "request-too-large",
                        format!("request line exceeds {} bytes", shared.cfg.max_request_bytes),
                    );
                    write_line(&writer, &err.render("null"));
                    // A line protocol cannot resynchronize after an
                    // oversized line; close rather than misparse.
                    break;
                }
                Ok(LineRead::Line(bytes)) => {
                    if bytes.iter().all(|b| b.is_ascii_whitespace()) {
                        continue;
                    }
                    handle_line(shared, &writer, &bytes, token, &mut worker_id);
                }
            }
        }
    }
    shared.conns.lock().unwrap_or_else(|e| e.into_inner()).remove(&token);
    if let (Some(fleet), Some(wid)) = (&shared.fleet, worker_id) {
        fleet.disconnected(wid);
    }
}

/// Parses, validates, and either answers inline (control ops, rejections,
/// malformed input) or admits the request to the work queue.
fn handle_line(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    bytes: &[u8],
    token: u64,
    worker_id: &mut Option<u64>,
) {
    let invalid = |err: ServiceError, id: &str| {
        shared.counters.invalid.fetch_add(1, Ordering::Relaxed);
        write_line(writer, &err.render(id));
    };
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(_) => {
            return invalid(
                ServiceError::permanent("bad-json", "request is not valid UTF-8"),
                "null",
            )
        }
    };
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return invalid(
                ServiceError::permanent("bad-json", format!("malformed request: {e}")),
                "null",
            )
        }
    };
    let id = doc.get("id").map_or_else(|| "null".to_string(), json::Value::to_text);
    let op = match doc.get("op").and_then(json::Value::as_str) {
        Some(op) => op,
        None => {
            return invalid(
                ServiceError::permanent("bad-request", "missing string field `op`"),
                &id,
            )
        }
    };
    match op {
        "ping" => write_line(writer, &format!("{{\"id\": {id}, \"ok\": true, \"op\": \"pong\"}}")),
        "stats" => write_line(writer, &render_stats(shared, &id)),
        "health" => write_line(writer, &render_health(shared, &id)),
        "validate" => match parse_validate(&doc) {
            Ok(line) => write_line(writer, &format!("{{\"id\": {id}, \"ok\": true, {line}}}")),
            Err(err) => invalid(err, &id),
        },
        "evaluate" | "search" => {
            let work = match parse_work(shared, op, &doc) {
                Ok(w) => w,
                Err(err) => return invalid(err, &id),
            };
            admit(shared, writer, Job { id, work, writer: Arc::clone(writer) });
        }
        "sweep" => {
            let work = match parse_sweep(shared, &doc) {
                Ok(w) => w,
                Err(err) => return invalid(err, &id),
            };
            admit(shared, writer, Job { id, work, writer: Arc::clone(writer) });
        }
        // --- fleet channel (worker → coordinator), same listener -------
        "register-worker" => match &shared.fleet {
            Some(f) => {
                // This connection is now a worker channel: exempt it from
                // the drain-time read shutdown (results flow during
                // drain), and track it for re-dispatch on death.
                shared.conns.lock().unwrap_or_else(|e| e.into_inner()).remove(&token);
                let slots = doc.get("slots").and_then(json::Value::as_usize).unwrap_or(1);
                let wid = f.register(Arc::clone(writer), slots);
                *worker_id = Some(wid);
                write_line(
                    writer,
                    &format!(
                        "{{\"id\": {id}, \"ok\": true, \"op\": \"registered\", \
                         \"worker\": {wid}, \"heartbeat_ms\": {}, \"lease_ms\": {}}}",
                        f.config().heartbeat_ms,
                        f.config().lease_ms,
                    ),
                );
            }
            None => invalid(
                ServiceError::permanent("bad-request", "this daemon is not a coordinator"),
                &id,
            ),
        },
        // Fire-and-forget worker traffic: never answered (a reply would
        // desynchronize the worker's line protocol), ignored unless the
        // connection actually registered.
        "heartbeat" => {
            if let (Some(f), Some(wid)) = (&shared.fleet, *worker_id) {
                f.touch(wid);
            }
        }
        "deregister" => {
            if let (Some(f), Some(wid)) = (&shared.fleet, *worker_id) {
                f.deregister(wid);
            }
        }
        "shard-result" => {
            if let (Some(f), Some(wid)) = (&shared.fleet, *worker_id) {
                // A malformed result is dropped: the lease/retry machinery
                // re-dispatches the shard as if it never came back.
                if let Ok((sid, outcome)) = fleet::parse_shard_result(&doc) {
                    f.result(wid, &sid, outcome);
                }
            }
        }
        other => invalid(
            ServiceError::permanent("bad-request", format!("unknown op `{other}`")),
            &id,
        ),
    }
}

/// Admission control: bounded queue, explicit backpressure, drain refusal.
fn admit(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, job: Job) {
    let rejection = {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if shared.should_drain() {
            shared.counters.rejected_draining.fetch_add(1, Ordering::Relaxed);
            Some(ServiceError::transient(
                "draining",
                "daemon is draining; retry against a healthy instance",
                Some(1_000),
            )
            .render(&job.id))
        } else if q.len() >= shared.cfg.queue_capacity {
            shared.counters.rejected_overload.fetch_add(1, Ordering::Relaxed);
            let hint = shared.retry_hint(q.len());
            Some(ServiceError::transient(
                "overloaded",
                format!(
                    "admission queue is full ({} queued, capacity {})",
                    q.len(),
                    shared.cfg.queue_capacity
                ),
                Some(hint),
            )
            .render(&job.id))
        } else {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            q.push_back(job);
            shared.queue_cv.notify_one();
            None
        }
    };
    if let Some(line) = rejection {
        write_line(writer, &line);
    }
}

// ---------------------------------------------------------------------------
// Request validation (the crates/spec ingestion path)
// ---------------------------------------------------------------------------

fn parse_validate(doc: &json::Value) -> Result<String, ServiceError> {
    let text = doc
        .get("spec")
        .and_then(json::Value::as_str)
        .ok_or_else(|| ServiceError::permanent("bad-request", "validate needs a string `spec`"))?;
    match spec::parse_any(text)
        .map_err(|e| ServiceError::permanent("bad-spec", e.to_string()))?
    {
        spec::Spec::Arch(a) => Ok(format!(
            "\"kind\": \"arch\", \"name\": {}, \"levels\": {}",
            json::escape(a.name()),
            a.num_levels()
        )),
        spec::Spec::Problem(p) => Ok(format!(
            "\"kind\": \"problem\", \"name\": {}, \"macs\": {}",
            json::escape(p.name()),
            p.total_macs()
        )),
    }
}

fn parse_problem_field(doc: &json::Value) -> Result<Problem, ServiceError> {
    if let Some(spec_line) = doc.get("problem").and_then(json::Value::as_str) {
        return problem::codec::from_spec(spec_line)
            .map_err(|e| ServiceError::permanent("bad-spec", format!("problem: {e}")));
    }
    if let Some(toml) = doc.get("problem_toml").and_then(json::Value::as_str) {
        return spec::parse_problem(toml)
            .map_err(|e| ServiceError::permanent("bad-spec", format!("problem_toml: {e}")));
    }
    Err(ServiceError::permanent(
        "bad-request",
        "need `problem` (codec one-liner) or `problem_toml` (TOML spec)",
    ))
}

/// Parses the architecture and keeps its wire form — the coordinator
/// re-ships the *original* client encoding to workers, never a re-derived
/// one.
fn parse_arch_field(doc: &json::Value) -> Result<(Arch, ArchWire), ServiceError> {
    if let Some(toml) = doc.get("arch_toml").and_then(json::Value::as_str) {
        let arch = spec::parse_arch(toml)
            .map_err(|e| ServiceError::permanent("bad-spec", format!("arch_toml: {e}")))?;
        return Ok((arch, ArchWire::Toml(toml.to_string())));
    }
    let name = doc.get("arch").and_then(json::Value::as_str).unwrap_or("accel-b");
    let arch = match name {
        "accel-a" => Arch::accel_a(),
        "accel-b" => Arch::accel_b(),
        other => {
            return Err(ServiceError::permanent(
                "bad-request",
                format!("unknown arch `{other}` (accel-a | accel-b, or pass arch_toml)"),
            ))
        }
    };
    Ok((arch, ArchWire::Preset(name.to_string())))
}

/// Resolves a preset/TOML wire form back to an [`Arch`] (worker side).
fn arch_from_wire(wire: &ArchWire) -> Result<Arch, ShardError> {
    match wire {
        ArchWire::Preset(name) => match name.as_str() {
            "accel-a" => Ok(Arch::accel_a()),
            "accel-b" => Ok(Arch::accel_b()),
            other => Err(ShardError {
                kind: ErrorKind::Permanent,
                code: "bad-request".to_string(),
                message: format!("unknown arch preset `{other}`"),
            }),
        },
        ArchWire::Toml(toml) => spec::parse_arch(toml).map_err(|e| ShardError {
            kind: ErrorKind::Permanent,
            code: "bad-spec".to_string(),
            message: format!("arch_toml: {e}"),
        }),
    }
}

fn parse_density_fields(doc: &json::Value) -> Result<Option<Density>, ServiceError> {
    let get = |key: &str| -> Result<f64, ServiceError> {
        match doc.get(key) {
            None | Some(json::Value::Null) => Ok(1.0),
            Some(v) => v.as_f64().ok_or_else(|| {
                ServiceError::permanent("bad-request", format!("`{key}` must be a number"))
            }),
        }
    };
    let dw = get("weight_density")?;
    let da = get("input_density")?;
    if !(dw > 0.0 && dw <= 1.0 && da > 0.0 && da <= 1.0) {
        return Err(ServiceError::permanent("bad-request", "densities must be in (0, 1]"));
    }
    if dw == 1.0 && da == 1.0 {
        Ok(None)
    } else {
        Ok(Some(Density { weight: dw, input: da }))
    }
}

fn parse_work(shared: &Shared, op: &str, doc: &json::Value) -> Result<Work, ServiceError> {
    let problem = parse_problem_field(doc)?;
    let (arch, arch_wire) = parse_arch_field(doc)?;
    let density = parse_density_fields(doc)?;
    // An unmappable pairing would burn a whole deadline discovering there
    // is nothing to find; reject it at admission instead.
    let space = mapping::MapSpace::new(problem.clone(), arch.clone());
    if !space.is_mappable() {
        return Err(ServiceError::permanent(
            "unmappable",
            format!("problem `{}` cannot be mapped onto `{}`", problem.name(), arch.name()),
        ));
    }
    match op {
        "evaluate" => {
            let spec_text = doc.get("mapping").and_then(json::Value::as_str).ok_or_else(|| {
                ServiceError::permanent("bad-request", "evaluate needs a string `mapping`")
            })?;
            let mapping = mapping::codec::from_spec(spec_text.trim())
                .map_err(|e| ServiceError::permanent("bad-spec", format!("mapping: {e}")))?;
            Ok(Work::Evaluate { problem, arch, density, mapping })
        }
        _ => {
            let mapper = doc
                .get("mapper")
                .and_then(json::Value::as_str)
                .unwrap_or("gamma")
                .to_string();
            // `auto` is a virtual mapper: the warm store's bandit resolves
            // it to a concrete arm at execution time (search only).
            if mapper != "auto" && mapper_by_name(&mapper, shared.cfg.fault_injection).is_none() {
                return Err(ServiceError::permanent(
                    "bad-request",
                    format!("unknown mapper `{mapper}`"),
                ));
            }
            let samples = match doc.get("samples") {
                None | Some(json::Value::Null) => 2_000,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`samples` must be a non-negative integer")
                })? as usize,
            };
            let deadline_ms = match doc.get("deadline_ms") {
                None | Some(json::Value::Null) => shared.cfg.default_deadline_ms,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`deadline_ms` must be a non-negative integer")
                })?),
            };
            if deadline_ms == Some(0) {
                return Err(ServiceError::permanent("bad-request", "`deadline_ms` must be positive"));
            }
            let seed = match doc.get("seed") {
                None | Some(json::Value::Null) => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`seed` must be a non-negative integer")
                })?,
            };
            let retries = match doc.get("retries") {
                None | Some(json::Value::Null) => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`retries` must be a non-negative integer")
                })? as usize,
            };
            let islands = match doc.get("islands") {
                None | Some(json::Value::Null) => 0,
                Some(v) => v.as_usize().ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`islands` must be a non-negative integer")
                })?,
            };
            if islands > 64 {
                return Err(ServiceError::permanent("bad-request", "`islands` must be <= 64"));
            }
            if islands >= 2 && samples < islands {
                return Err(ServiceError::permanent(
                    "bad-request",
                    "`samples` must be at least `islands` (every island needs a budget)",
                ));
            }
            Ok(Work::Search {
                problem,
                arch,
                arch_wire,
                density,
                mapper,
                samples,
                deadline: deadline_ms.map(Duration::from_millis),
                seed,
                retries,
                islands,
            })
        }
    }
}

/// A checkpoint name a client may use: a plain filename, no path
/// traversal, and never colliding with the checkpoint code's own `.bak`
/// rolling-backup / `.tmp` staging siblings.
fn sanitize_checkpoint_name(name: &str) -> Result<(), ServiceError> {
    let bad = |msg: &str| Err(ServiceError::permanent("bad-request", format!("checkpoint: {msg}")));
    if name.is_empty() || name.len() > 128 {
        return bad("name must be 1..=128 characters");
    }
    if !name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')) {
        return bad("name may contain only [A-Za-z0-9._-]");
    }
    if name.starts_with('.') {
        return bad("name must not start with '.'");
    }
    if name.ends_with(".bak") || name.ends_with(".tmp") {
        return bad("names ending in .bak/.tmp are reserved for the checkpoint writer");
    }
    Ok(())
}

fn parse_sweep(shared: &Shared, doc: &json::Value) -> Result<Work, ServiceError> {
    let layer_values = doc
        .get("layers")
        .and_then(json::Value::as_array)
        .ok_or_else(|| ServiceError::permanent("bad-request", "sweep needs an array `layers`"))?;
    if layer_values.is_empty() {
        return Err(ServiceError::permanent("bad-request", "`layers` must be non-empty"));
    }
    if layer_values.len() > 1024 {
        return Err(ServiceError::permanent("bad-request", "`layers` must have <= 1024 entries"));
    }
    let (arch, arch_wire) = parse_arch_field(doc)?;
    let density = parse_density_fields(doc)?;
    let mut layers = Vec::with_capacity(layer_values.len());
    for (i, v) in layer_values.iter().enumerate() {
        let line = v.as_str().ok_or_else(|| {
            ServiceError::permanent("bad-request", format!("layers[{i}] must be a codec string"))
        })?;
        let p = problem::codec::from_spec(line)
            .map_err(|e| ServiceError::permanent("bad-spec", format!("layers[{i}]: {e}")))?;
        let space = mapping::MapSpace::new(p.clone(), arch.clone());
        if !space.is_mappable() {
            return Err(ServiceError::permanent(
                "unmappable",
                format!("layers[{i}] `{}` cannot be mapped onto `{}`", p.name(), arch.name()),
            ));
        }
        layers.push(p);
    }
    let mapper = doc.get("mapper").and_then(json::Value::as_str).unwrap_or("gamma").to_string();
    if mapper_by_name(&mapper, shared.cfg.fault_injection).is_none() {
        return Err(ServiceError::permanent("bad-request", format!("unknown mapper `{mapper}`")));
    }
    let samples = match doc.get("samples") {
        None | Some(json::Value::Null) => 2_000,
        Some(v) => v.as_usize().ok_or_else(|| {
            ServiceError::permanent("bad-request", "`samples` must be a non-negative integer")
        })?,
    };
    let seed = match doc.get("seed") {
        None | Some(json::Value::Null) => 0,
        Some(v) => v.as_u64().ok_or_else(|| {
            ServiceError::permanent("bad-request", "`seed` must be a non-negative integer")
        })?,
    };
    let checkpoint_name = match doc.get("checkpoint") {
        None | Some(json::Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| {
                    ServiceError::permanent("bad-request", "`checkpoint` must be a string name")
                })?
                .to_string(),
        ),
    };
    let checkpoint = match &checkpoint_name {
        Some(name) => {
            sanitize_checkpoint_name(name)?;
            let dir = shared.cfg.checkpoint_dir.as_ref().ok_or_else(|| {
                ServiceError::permanent(
                    "bad-request",
                    "this daemon has no checkpoint directory (start it with --checkpoint-dir)",
                )
            })?;
            Some(dir.join(name))
        }
        None => None,
    };
    let resume = match doc.get("resume") {
        None | Some(json::Value::Null) => false,
        Some(v) => v.as_bool().ok_or_else(|| {
            ServiceError::permanent("bad-request", "`resume` must be a boolean")
        })?,
    };
    if resume && checkpoint.is_none() {
        return Err(ServiceError::permanent("bad-request", "`resume` needs a `checkpoint`"));
    }
    Ok(Work::Sweep(Box::new(SweepWork {
        layers,
        arch_wire,
        density,
        mapper,
        samples,
        seed,
        checkpoint,
        checkpoint_name,
        resume,
    })))
}

// ---------------------------------------------------------------------------
// Request execution (on the worker threads)
// ---------------------------------------------------------------------------

/// A mapper that panics mid-search — the fault-injection hook behind
/// [`ServeConfig::fault_injection`], for proving panic isolation across
/// the wire.
struct PanicInjector;

impl Mapper for PanicInjector {
    fn name(&self) -> &str {
        "panic-injector"
    }

    fn search(
        &self,
        _space: &mapping::MapSpace,
        _evaluator: &dyn mappers::Evaluator,
        _budget: Budget,
        _rng: &mut rand::rngs::SmallRng,
    ) -> mappers::SearchResult {
        panic!("injected service fault");
    }
}

/// A mapper that never looks at its budget — the watchdog's sample cap or
/// hard deadline is the only thing that stops it. Fault-injection hook for
/// proving deadline salvage (`"degraded": true`) across the wire.
struct DeadlineIgnorer;

impl Mapper for DeadlineIgnorer {
    fn name(&self) -> &str {
        "deadline-ignorer"
    }

    fn search(
        &self,
        space: &mapping::MapSpace,
        evaluator: &dyn mappers::Evaluator,
        _budget: Budget,
        rng: &mut rand::rngs::SmallRng,
    ) -> mappers::SearchResult {
        loop {
            let batch: Vec<Mapping> = (0..64).map(|_| space.random(rng)).collect();
            let _ = evaluator.evaluate_batch(&batch);
        }
    }
}

/// Mapper factory shared by request validation and execution.
fn mapper_by_name(name: &str, fault_injection: bool) -> Option<Box<dyn Mapper>> {
    Some(match name {
        "gamma" => Box::new(Gamma::new()),
        "random" => Box::new(RandomMapper::new()),
        "random-pruned" => Box::new(RandomPruned::new()),
        "standard-ga" => Box::new(StandardGa::new()),
        "annealing" => Box::new(SimulatedAnnealing::new()),
        "hill-climb" => Box::new(HillClimb::new()),
        "cem" => Box::new(CrossEntropy::new()),
        "dosa" => Box::new(Dosa::new()),
        "reinforce" => Box::new(Reinforce::new()),
        "exhaustive" => Box::new(Exhaustive::new()),
        "panic-injector" if fault_injection => Box::new(PanicInjector),
        "deadline-ignorer" if fault_injection => Box::new(DeadlineIgnorer),
        _ => return None,
    })
}

fn model_key(problem: &Problem, arch: &Arch, density: Option<Density>, guard: Option<GuardPolicy>) -> String {
    // The arch's Debug form pins every capacity/energy/fanout, so two
    // different TOML archs sharing a display name cannot share a cache.
    format!(
        "{}|{:?}|{:?}|{:?}",
        problem::codec::to_spec(problem),
        arch,
        density,
        guard
    )
}

fn make_model(problem: &Problem, arch: &Arch, density: Option<Density>) -> Box<dyn CostModel> {
    match density {
        Some(d) => Box::new(SparseModel::new(
            problem.clone(),
            arch.clone(),
            arch::SparseCaps::flexible(),
            d,
        )),
        None => Box::new(DenseModel::new(problem.clone(), arch.clone())),
    }
}

fn guard_config(policy: GuardPolicy, density: Option<Density>) -> GuardConfig {
    match density {
        Some(d) => GuardConfig::sparse(policy, &arch::SparseCaps::flexible(), d),
        None => GuardConfig::new(policy),
    }
}

fn execute(shared: &Arc<Shared>, job: &Job) -> String {
    match &job.work {
        Work::Evaluate { problem, arch, density, mapping } => {
            execute_evaluate(shared, &job.id, problem, arch, *density, mapping)
        }
        Work::Search {
            problem,
            arch,
            arch_wire,
            density,
            mapper,
            samples,
            deadline,
            seed,
            retries,
            islands,
        } => execute_search(
            shared, &job.id, problem, arch, arch_wire, *density, mapper, *samples, *deadline,
            *seed, *retries, *islands,
        ),
        Work::Sweep(sweep) => execute_sweep(shared, &job.id, sweep),
    }
}

fn execute_evaluate(
    shared: &Arc<Shared>,
    id: &str,
    problem: &Problem,
    arch: &Arch,
    density: Option<Density>,
    mapping: &Mapping,
) -> String {
    let model = make_model(problem, arch, density);
    let breakdown = match shared.cfg.guard {
        Some(gp) => {
            let guarded = GuardedModel::new(model, guard_config(gp, density));
            let out = guarded.evaluate_detailed(mapping);
            let report = guarded.report();
            shared.guard_violations.fetch_add(report.violations, Ordering::Relaxed);
            shared.guard_rejections.fetch_add(report.rejections, Ordering::Relaxed);
            out
        }
        None => model.evaluate_detailed(mapping),
    };
    match breakdown {
        Ok(b) => format!(
            "{{\"id\": {id}, \"ok\": true, \"score\": {}, \"latency_cycles\": {}, \
             \"energy_uj\": {}, \"lanes\": {}}}",
            json::num(b.cost.edp()),
            json::num(b.cost.latency_cycles),
            json::num(b.cost.energy_uj),
            b.lanes
        ),
        Err(e) => {
            ServiceError::permanent("illegal-mapping", e.to_string()).render(id)
        }
    }
}

/// One self-contained search run (a whole request, or one island of a
/// fanned-out one), returning wire-portable data instead of a rendered
/// response so fleet shards and direct requests share the exact path.
#[allow(clippy::too_many_arguments)]
fn run_search_core(
    shared: &Arc<Shared>,
    problem: &Problem,
    arch: &Arch,
    density: Option<Density>,
    mapper_name: &str,
    samples: usize,
    deadline: Option<Duration>,
    seed: u64,
    retries: usize,
    warm: Option<&Mapping>,
) -> Result<SearchOk, ServiceError> {
    let Some(mut mapper) = mapper_by_name(mapper_name, shared.cfg.fault_injection) else {
        return Err(ServiceError::permanent(
            "bad-request",
            format!("unknown mapper `{mapper_name}`"),
        ));
    };
    // A validated warm-start prior seeds the mapper's initial population;
    // it biases where the search *starts*, never what is accepted.
    if let Some(m) = warm {
        mapper.set_seeds(vec![m.clone()]);
    }
    let model = make_model(problem, arch, density);
    // The budget tells the mapper to aim for 90% of the deadline; the
    // watchdog's hard deadline is the deadline itself. A well-behaved
    // mapper finishes early and undegraded; anything else is stopped and
    // its shadow incumbent salvaged.
    let budget = Budget {
        max_samples: Some(samples),
        max_time: deadline.map(|d| d.mul_f64(0.9)),
    };
    let policy = RunPolicy::with_retries(retries)
        .with_eval(shared.cfg.eval)
        .with_deadline(deadline.map(|d| Instant::now() + d));
    let cache = shared.cache_for(model_key(problem, arch, density, shared.cfg.guard));
    let cache_before = cache.stats();
    let outcome = match shared.cfg.guard {
        Some(gp) => {
            let guarded = GuardedModel::new(model, guard_config(gp, density));
            let evaluator = EdpEvaluator::new(&guarded);
            let rejections_before = guarded.report().rejections;
            let outcome = Mse::new(&guarded).run_resilient_shared(
                mapper.as_ref(),
                &evaluator,
                budget,
                seed,
                policy,
                Some(&guarded),
                &shared.pool,
                &cache,
            );
            let report = guarded.report();
            shared.guard_violations.fetch_add(report.violations, Ordering::Relaxed);
            shared
                .guard_rejections
                .fetch_add(report.rejections.saturating_sub(rejections_before), Ordering::Relaxed);
            outcome
        }
        None => {
            let evaluator = EdpEvaluator::new(model.as_ref());
            Mse::new(model.as_ref()).run_resilient_shared(
                mapper.as_ref(),
                &evaluator,
                budget,
                seed,
                policy,
                None,
                &shared.pool,
                &cache,
            )
        }
    };
    let status = match outcome.status {
        RunStatus::Succeeded => "succeeded",
        RunStatus::Recovered => "recovered",
        RunStatus::WatchdogStopped => "watchdog-stopped",
        RunStatus::Failed => "failed",
    };
    match outcome.result.as_ref().and_then(|r| r.best.as_ref().map(|b| (r, b))) {
        Some((r, (best, cost))) => {
            // A salvaged incumbent (deadline or budget stop, or retries
            // exhausted with partial state) is an answer, just an honest
            // one: flagged degraded rather than dressed up as converged.
            let degraded =
                matches!(outcome.status, RunStatus::WatchdogStopped | RunStatus::Failed);
            if degraded {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            let after = cache.stats();
            Ok(SearchOk {
                degraded,
                status: status.to_string(),
                score: r.best_score,
                latency_cycles: cost.latency_cycles,
                energy_uj: cost.energy_uj,
                mapping: mapping::codec::to_spec(best),
                evaluated: r.evaluated,
                elapsed_ms: r.elapsed.as_millis() as u64,
                attempts: outcome.attempts.len(),
                cache_hits: after.hits.saturating_sub(cache_before.hits),
            })
        }
        None => {
            let last_error = outcome.attempts.iter().rev().find_map(|a| a.error.as_ref());
            Err(run_error_response(shared, last_error))
        }
    }
}

/// Recall the most similar prior from the warm store and re-validate it
/// before it may seed a population. Store contents are never trusted: the
/// mapping must rescale to the new problem, pass structural legality, and
/// clear a *rejecting* [`GuardedModel`] (compulsory-traffic, latency-floor,
/// and MAC-energy-floor invariants) regardless of the daemon's configured
/// guard policy. Anything that fails is counted quarantined and the search
/// runs cold — bit-identical to a run with no store at all.
fn validated_prior(
    problem: &Problem,
    arch: &Arch,
    density: Option<Density>,
    arch_fp: u64,
    store: &WarmStore,
) -> Option<(Mapping, usize)> {
    let (src_problem, mapping_spec, dist) = match store.recall(problem, arch_fp) {
        Some(hit) => hit,
        None => {
            store.record_miss();
            return None;
        }
    };
    let Ok(raw) = mapping::codec::from_spec(&mapping_spec) else {
        store.record_poisoned();
        return None;
    };
    // An honest deposit is a search incumbent: legal for its *own* problem
    // on this arch. A record that fails that was corrupted or forged.
    if !raw.is_legal(&src_problem, arch) {
        store.record_poisoned();
        return None;
    }
    let Some(scaled) = raw.scale_to(&src_problem, problem, arch) else {
        store.record_miss();
        return None;
    };
    if !scaled.is_legal(problem, arch) {
        store.record_poisoned();
        return None;
    }
    let model = make_model(problem, arch, density);
    let guarded = GuardedModel::new(model, guard_config(GuardPolicy::Reject, density));
    match guarded.evaluate(&scaled) {
        Ok(c) if c.edp().is_finite() => {
            store.record_hit();
            Some((scaled, dist))
        }
        _ => {
            store.record_poisoned();
            None
        }
    }
}

/// Deposit a finished search incumbent into the warm store (no-op without
/// one). Deposit failures only lose future warm starts, never the response.
fn deposit_search(
    shared: &Arc<Shared>,
    problem: &Problem,
    arch_fp: u64,
    mapper: &str,
    ok: &SearchOk,
) {
    let Some(store) = &shared.store else { return };
    let Ok(m) = mapping::codec::from_spec(&ok.mapping) else { return };
    let _ = store.deposit(arch_fp, problem, &m, mapper, ok.score, ok.evaluated as u64);
}

fn render_search_ok(id: &str, ok: &SearchOk, islands: Option<usize>, extra: &str) -> String {
    let mut s = format!(
        "{{\"id\": {id}, \"ok\": true, \"degraded\": {}, \"status\": {}, \
         \"score\": {}, \"latency_cycles\": {}, \"energy_uj\": {}, \"mapping\": {}, \
         \"evaluated\": {}, \"elapsed_ms\": {}, \"attempts\": {}, \"cache_hits\": {}",
        ok.degraded,
        json::escape(&ok.status),
        json::num(ok.score),
        json::num(ok.latency_cycles),
        json::num(ok.energy_uj),
        json::escape(&ok.mapping),
        ok.evaluated,
        ok.elapsed_ms,
        ok.attempts,
        ok.cache_hits,
    );
    if let Some(k) = islands {
        s.push_str(&format!(", \"islands\": {k}"));
    }
    s.push_str(extra);
    s.push('}');
    s
}

#[allow(clippy::too_many_arguments)]
fn execute_search(
    shared: &Arc<Shared>,
    id: &str,
    problem: &Problem,
    arch: &Arch,
    arch_wire: &ArchWire,
    density: Option<Density>,
    mapper_name: &str,
    samples: usize,
    deadline: Option<Duration>,
    seed: u64,
    retries: usize,
    islands: usize,
) -> String {
    // Warm-start and bandit resolution happen once, up front, against the
    // coordinator's store — never inside shards — so the chosen arm and
    // seed are identical whatever the fleet topology, and a store-less
    // worker re-executing the shard sees the same inputs.
    let arch_fp = WarmStore::arch_fingerprint(arch, density.as_ref());
    let resolved_mapper: String = if mapper_name == "auto" {
        match &shared.store {
            Some(s) => s.select_mapper(problem, arch_fp).to_string(),
            None => crate::store::BANDIT_ARMS[0].to_string(),
        }
    } else {
        mapper_name.to_string()
    };
    let warm = shared
        .store
        .as_ref()
        .and_then(|s| validated_prior(problem, arch, density, arch_fp, s));
    let mut extra = String::new();
    if shared.store.is_some() {
        extra.push_str(&format!(", \"warm_start\": {}", warm.is_some()));
        if let Some((_, d)) = &warm {
            extra.push_str(&format!(", \"warm_distance\": {d}"));
        }
    }
    if mapper_name == "auto" {
        extra.push_str(&format!(", \"mapper\": {}", json::escape(&resolved_mapper)));
    }
    if islands < 2 {
        return match run_search_core(
            shared,
            problem,
            arch,
            density,
            &resolved_mapper,
            samples,
            deadline,
            seed,
            retries,
            warm.as_ref().map(|(m, _)| m),
        ) {
            Ok(ok) => {
                deposit_search(shared, problem, arch_fp, &resolved_mapper, &ok);
                render_search_ok(id, &ok, None, &extra)
            }
            Err(e) => e.render(id),
        };
    }
    // Island fan-out: deterministic sample split (remainder to the lowest
    // indices) and per-island seeds derived from (seed, island index) —
    // island results are topology-invariant, so fleet and local execution
    // merge to the same incumbent.
    let base = samples / islands;
    let rem = samples % islands;
    let spec_for = |i: usize| ShardSpec {
        id: String::new(),
        kind: ShardKind::Island { index: i },
        problem: problem::codec::to_spec(problem),
        arch: arch_wire.clone(),
        weight_density: density.map_or(1.0, |d| d.weight),
        input_density: density.map_or(1.0, |d| d.input),
        mapper: resolved_mapper.clone(),
        samples: base + usize::from(i < rem),
        seed: reseed(seed, i as u64),
        retries,
        deadline_ms: deadline.map(|d| d.as_millis() as u64),
        warm_seed: warm.as_ref().map(|(m, _)| mapping::codec::to_spec(m)),
    };
    let outcomes: Vec<Option<ShardOutcome>> = match &shared.fleet {
        Some(fleet) => {
            let job = fleet.new_job();
            let specs = (0..islands)
                .map(|i| ShardSpec { id: fleet.shard_id(job, i), ..spec_for(i) })
                .collect();
            fleet.submit(job, specs);
            let collected = drive_fleet_job(shared, fleet, job, islands);
            fleet.finish_job(job);
            collected
        }
        None => (0..islands).map(|i| Some(execute_shard(shared, &spec_for(i)))).collect(),
    };
    // Merge in island order: strictly-better wins, so ties keep the
    // lowest index and the incumbent is independent of arrival order.
    let mut best: Option<SearchOk> = None;
    let mut first_err: Option<ShardError> = None;
    let (mut evaluated, mut attempts, mut cache_hits, mut elapsed_ms) = (0usize, 0usize, 0u64, 0u64);
    for out in outcomes {
        match out {
            Some(Ok(ShardData::Island(ok))) => {
                evaluated += ok.evaluated;
                attempts += ok.attempts;
                cache_hits += ok.cache_hits;
                elapsed_ms = elapsed_ms.max(ok.elapsed_ms);
                if best.as_ref().is_none_or(|b| score_cmp(ok.score, b.score).is_lt()) {
                    best = Some(ok);
                }
            }
            Some(Ok(ShardData::Layer(_))) => {
                first_err.get_or_insert(ShardError {
                    kind: ErrorKind::Transient,
                    code: "internal".to_string(),
                    message: "island shard returned a layer result".to_string(),
                });
            }
            Some(Err(e)) => {
                first_err.get_or_insert(e);
            }
            None => {
                first_err.get_or_insert(ShardError {
                    kind: ErrorKind::Transient,
                    code: "draining".to_string(),
                    message: "daemon shut down before the island completed".to_string(),
                });
            }
        }
    }
    match best {
        Some(mut b) => {
            b.evaluated = evaluated;
            b.attempts = attempts;
            b.cache_hits = cache_hits;
            b.elapsed_ms = elapsed_ms;
            deposit_search(shared, problem, arch_fp, &resolved_mapper, &b);
            render_search_ok(id, &b, Some(islands), &extra)
        }
        None => {
            let e = first_err.expect("no islands ran");
            shard_error_response(shared, &e).render(id)
        }
    }
}

/// Collects every shard of `job` (in index order), executing locally when
/// no workers are live, until all are in or the daemon is killed.
fn drive_fleet_job(
    shared: &Arc<Shared>,
    fleet: &Arc<Fleet>,
    job: u64,
    count: usize,
) -> Vec<Option<ShardOutcome>> {
    let mut results: Vec<Option<ShardOutcome>> = (0..count).map(|_| None).collect();
    let mut remaining = count;
    while remaining > 0 {
        if shared.aborted.load(Ordering::SeqCst) {
            break;
        }
        // Liveness without a fleet: the coordinator executes pending
        // shards itself whenever zero workers hold a live lease.
        if let Some(spec) = fleet.claim_local(job) {
            let out = execute_shard(shared, &spec);
            fleet.complete_local(&spec.id, out);
            continue;
        }
        let mut progress = false;
        for (i, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(out) = fleet.take_outcome(&fleet.shard_id(job, i)) {
                    *slot = Some(out);
                    remaining -= 1;
                    progress = true;
                }
            }
        }
        if !progress {
            fleet.wait(Duration::from_millis(50));
        }
    }
    results
}

// ---------------------------------------------------------------------------
// Fleet shard execution (worker daemons and the coordinator's local
// fallback share this path bit for bit)
// ---------------------------------------------------------------------------

/// Executes one fleet shard, panic-isolated: a poisoned shard becomes a
/// transient wire error the coordinator can re-dispatch.
fn execute_shard(shared: &Arc<Shared>, spec: &ShardSpec) -> ShardOutcome {
    match catch_unwind(AssertUnwindSafe(|| execute_shard_inner(shared, spec))) {
        Ok(out) => out,
        Err(payload) => Err(ShardError {
            kind: ErrorKind::Transient,
            code: "shard-panicked".to_string(),
            message: format!(
                "shard handler panicked: {}",
                crate::fault::panic_message(&*payload)
            ),
        }),
    }
}

fn execute_shard_inner(shared: &Arc<Shared>, spec: &ShardSpec) -> ShardOutcome {
    let perm = |code: &str, message: String| ShardError {
        kind: ErrorKind::Permanent,
        code: code.to_string(),
        message,
    };
    let problem = problem::codec::from_spec(&spec.problem)
        .map_err(|e| perm("bad-spec", format!("problem: {e}")))?;
    let arch = arch_from_wire(&spec.arch)?;
    // Must mirror `parse_density_fields` exactly: whether density 1.0
    // means "dense model" or "sparse model at 1.0" changes scores, and
    // coordinator and worker have to agree bit for bit.
    let density = if spec.weight_density == 1.0 && spec.input_density == 1.0 {
        None
    } else {
        Some(Density { weight: spec.weight_density, input: spec.input_density })
    };
    match spec.kind {
        ShardKind::Layer { index } => {
            let Some(mut mapper) = mapper_by_name(&spec.mapper, shared.cfg.fault_injection)
            else {
                return Err(perm("bad-request", format!("unknown mapper `{}`", spec.mapper)));
            };
            let model = make_model(&problem, &arch, density);
            // Random-init layers read nothing from the replay buffer, so
            // an empty one reproduces the single-process sweep exactly;
            // per-layer seeds derive from the *global* layer index.
            let buffer = ReplayBuffer::new();
            let budget = Budget::samples(spec.samples);
            let outcome = match shared.cfg.guard {
                Some(gp) => {
                    let guarded = GuardedModel::new(model, guard_config(gp, density));
                    run_layer(
                        index,
                        &problem,
                        &arch,
                        &buffer,
                        InitStrategy::Random,
                        budget,
                        spec.seed,
                        &guarded,
                        &mut mapper,
                    )
                }
                None => run_layer(
                    index,
                    &problem,
                    &arch,
                    &buffer,
                    InitStrategy::Random,
                    budget,
                    spec.seed,
                    model.as_ref(),
                    &mut mapper,
                ),
            };
            let mut lc = LayerCheckpoint::from_outcome(&outcome);
            // Wall clock is the only topology-dependent field; zero it at
            // the source so checkpoints are byte-comparable across 1..N
            // workers.
            lc.elapsed_secs = 0.0;
            Ok(ShardData::Layer(lc))
        }
        ShardKind::Island { .. } => {
            // The coordinator already validated the seed against its store;
            // workers still refuse anything unparseable or illegal (a
            // hostile coordinator can waste a seed slot, nothing more).
            let warm = spec
                .warm_seed
                .as_deref()
                .and_then(|s| mapping::codec::from_spec(s).ok())
                .filter(|m| m.is_legal(&problem, &arch));
            run_search_core(
                shared,
                &problem,
                &arch,
                density,
                &spec.mapper,
                spec.samples,
                spec.deadline_ms.map(Duration::from_millis),
                spec.seed,
                spec.retries,
                warm.as_ref(),
            )
            .map(ShardData::Island)
            .map_err(|e| ShardError { kind: e.kind, code: e.code.to_string(), message: e.message })
        }
    }
}

/// Worker daemons: executor threads popping shards off the link queue.
fn worker_shard_loop(shared: &Arc<Shared>) {
    let Some(link) = shared.worker_link.as_ref() else { return };
    loop {
        match link.next_shard(Duration::from_millis(250)) {
            Some(spec) => {
                // Straggler injection for the work-stealing chaos tests.
                let delay = shared.cfg.fleet.shard_delay_ms;
                if shared.cfg.fault_injection && delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                let out = execute_shard(shared, &spec);
                link.send_result(&fleet::render_shard_result(&spec.id, &out));
                link.finish_shard();
            }
            None => {
                if shared.aborted.load(Ordering::SeqCst)
                    || (shared.should_drain() && !link.pending_work())
                {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sweep driver (coordinator / standalone)
// ---------------------------------------------------------------------------

fn execute_sweep(shared: &Arc<Shared>, id: &str, w: &SweepWork) -> String {
    let budget = Budget::samples(w.samples);
    let mut ckpt = SweepCheckpoint::new(w.seed, InitStrategy::Random, budget);
    if w.resume {
        let path = w.checkpoint.as_ref().expect("resume implies checkpoint");
        if path.exists() {
            match SweepCheckpoint::load(path) {
                Ok(loaded) => {
                    if let Err(e) =
                        loaded.check_matches(w.seed, InitStrategy::Random, budget, &w.layers)
                    {
                        return ServiceError::permanent("checkpoint-mismatch", e.to_string())
                            .render(id);
                    }
                    // Stored elapsed times are already zero (we write
                    // canonicalized), but never trust a file to stay
                    // canonical.
                    ckpt = loaded.canonical();
                }
                Err(e) => {
                    return ServiceError::permanent("checkpoint-corrupt", e.to_string())
                        .render(id)
                }
            }
        }
    }
    let start = ckpt.layers.len();
    let n = w.layers.len();
    let spec_for = |i: usize| ShardSpec {
        id: String::new(),
        kind: ShardKind::Layer { index: i },
        problem: problem::codec::to_spec(&w.layers[i]),
        arch: w.arch_wire.clone(),
        weight_density: w.density.map_or(1.0, |d| d.weight),
        input_density: w.density.map_or(1.0, |d| d.input),
        mapper: w.mapper.clone(),
        samples: w.samples,
        seed: w.seed,
        retries: 0,
        deadline_ms: None,
        // Sweep layers never read the store (a resumed sweep must re-derive
        // the exact shards the original run dispatched, and store contents
        // change between runs); they only deposit.
        warm_seed: None,
    };
    let sweep_fp = arch_from_wire(&w.arch_wire)
        .ok()
        .map(|a| WarmStore::arch_fingerprint(&a, w.density.as_ref()));
    // Deposit each flushed layer's incumbent so later `search` requests can
    // warm-start from sweep results. Resumed prefixes are not re-deposited.
    let deposit_layer = |i: usize, lc: &LayerCheckpoint| {
        if let (Some(store), Some(fp)) = (&shared.store, sweep_fp) {
            if let Some(spec) = &lc.mapping {
                if let Ok(m) = mapping::codec::from_spec(spec) {
                    if lc.best_score.is_finite() {
                        let _ = store.deposit(
                            fp,
                            &w.layers[i],
                            &m,
                            &w.mapper,
                            lc.best_score,
                            lc.evaluated as u64,
                        );
                    }
                }
            }
        }
    };
    let flush = |ckpt: &SweepCheckpoint| -> Result<(), ServiceError> {
        match &w.checkpoint {
            Some(path) => ckpt.save(path).map_err(|e| {
                ServiceError::transient("checkpoint-io", e.to_string(), Some(1_000))
            }),
            None => Ok(()),
        }
    };
    let aborted_err = || {
        ServiceError::transient(
            "draining",
            "daemon stopped before the sweep finished; resume from the checkpoint",
            Some(1_000),
        )
    };
    // Exactly-once accounting lives here: layers are flushed to the
    // checkpoint strictly in order, each exactly once, regardless of how
    // many duplicate shard results the fleet produced. A restart re-reads
    // the flushed prefix and the derived per-layer seeds reproduce the
    // rest bit-identically.
    let result: Result<(), ServiceError> = match &shared.fleet {
        Some(fleet) => {
            let job = fleet.new_job();
            let specs =
                (start..n).map(|i| ShardSpec { id: fleet.shard_id(job, i), ..spec_for(i) }).collect();
            fleet.submit(job, specs);
            let mut drive = || -> Result<(), ServiceError> {
                let mut next = start;
                while next < n {
                    if shared.aborted.load(Ordering::SeqCst) {
                        return Err(aborted_err());
                    }
                    if let Some(spec) = fleet.claim_local(job) {
                        let out = execute_shard(shared, &spec);
                        fleet.complete_local(&spec.id, out);
                        continue;
                    }
                    match fleet.take_outcome(&fleet.shard_id(job, next)) {
                        Some(Ok(ShardData::Layer(mut lc))) => {
                            lc.elapsed_secs = 0.0;
                            deposit_layer(next, &lc);
                            ckpt.layers.push(lc);
                            flush(&ckpt)?;
                            next += 1;
                        }
                        Some(Ok(ShardData::Island(_))) => {
                            return Err(ServiceError::transient(
                                "internal",
                                "layer shard returned an island result",
                                None,
                            ))
                        }
                        Some(Err(e)) => return Err(shard_error_response(shared, &e)),
                        None => fleet.wait(Duration::from_millis(50)),
                    }
                }
                Ok(())
            };
            let r = drive();
            fleet.finish_job(job);
            r
        }
        None => {
            let mut r = Ok(());
            for i in start..n {
                if shared.aborted.load(Ordering::SeqCst) {
                    r = Err(aborted_err());
                    break;
                }
                match execute_shard(shared, &spec_for(i)) {
                    Ok(ShardData::Layer(mut lc)) => {
                        lc.elapsed_secs = 0.0;
                        deposit_layer(i, &lc);
                        ckpt.layers.push(lc);
                        if let Err(e) = flush(&ckpt) {
                            r = Err(e);
                            break;
                        }
                    }
                    Ok(ShardData::Island(_)) => {
                        r = Err(ServiceError::transient(
                            "internal",
                            "layer shard returned an island result",
                            None,
                        ));
                        break;
                    }
                    Err(e) => {
                        r = Err(shard_error_response(shared, &e));
                        break;
                    }
                }
            }
            r
        }
    };
    if let Err(e) = result {
        return e.render(id);
    }
    let mut layers_json = String::new();
    for (i, l) in ckpt.layers.iter().enumerate() {
        if i > 0 {
            layers_json.push_str(", ");
        }
        layers_json.push_str(&format!(
            "{{\"name\": {}, \"best_score\": {}, \"mapping\": {}, \"evaluated\": {}, \
             \"converge_sample\": {}}}",
            json::escape(&l.name),
            json::num(l.best_score),
            l.mapping.as_ref().map_or_else(|| "null".to_string(), |m| json::escape(m)),
            l.evaluated,
            l.converge_sample,
        ));
    }
    let fleet_json = shared.fleet.as_ref().map_or_else(
        || "null".to_string(),
        |f| {
            format!(
                "{{\"workers\": {}, \"dispatched\": {}, \"redispatched\": {}, \"stolen\": {}, \
                 \"duplicates_discarded\": {}}}",
                f.live_workers(),
                f.counters.dispatched.load(Ordering::Relaxed),
                f.counters.redispatched.load(Ordering::Relaxed),
                f.counters.stolen.load(Ordering::Relaxed),
                f.counters.duplicates_discarded.load(Ordering::Relaxed),
            )
        },
    );
    format!(
        "{{\"id\": {id}, \"ok\": true, \"layers_total\": {n}, \"layers_from_checkpoint\": {start}, \
         \"checkpoint\": {}, \"layers\": [{layers_json}], \"fleet\": {fleet_json}}}",
        w.checkpoint_name.as_ref().map_or_else(|| "null".to_string(), |s| json::escape(s)),
    )
}

/// Maps a wire shard failure back onto a client-facing [`ServiceError`].
fn shard_error_response(shared: &Shared, e: &ShardError) -> ServiceError {
    let code = intern_code(&e.code);
    match e.kind {
        ErrorKind::Permanent => ServiceError::permanent(code, e.message.clone()),
        ErrorKind::Transient => {
            ServiceError::transient(code, e.message.clone(), Some(shared.retry_hint(0)))
        }
    }
}

/// `ServiceError.code` is `&'static str`; wire codes arrive as owned
/// strings. Known codes intern to their static form; anything a newer (or
/// malicious) worker invents degrades to `shard-failed`.
fn intern_code(code: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "overloaded",
        "draining",
        "mapper-panicked",
        "deadline-exceeded",
        "bad-json",
        "bad-spec",
        "bad-request",
        "unmappable",
        "no-legal-mapping",
        "invariant-violation",
        "request-too-large",
        "internal-panic",
        "internal",
        "non-finite-score",
        "illegal-mapping",
        "shard-panicked",
        "worker-draining",
        "checkpoint-mismatch",
        "checkpoint-corrupt",
        "checkpoint-io",
    ];
    KNOWN.iter().find(|k| **k == code).copied().unwrap_or("shard-failed")
}

/// Maps the runtime's [`RunError`] taxonomy onto the wire taxonomy.
fn run_error_response(shared: &Shared, error: Option<&RunError>) -> ServiceError {
    let hint = Some(shared.retry_hint(0));
    match error {
        Some(RunError::MapperPanicked { message }) => ServiceError::transient(
            "mapper-panicked",
            format!("mapper panicked on every attempt: {message}"),
            hint,
        ),
        Some(RunError::BudgetOverrun { evaluated }) => ServiceError::transient(
            "deadline-exceeded",
            format!(
                "deadline expired after {evaluated} evaluations with no legal mapping found; \
                 retry with a longer deadline"
            ),
            hint,
        ),
        Some(RunError::NonFiniteScore { score }) => ServiceError::transient(
            "non-finite-score",
            format!("search returned non-finite best score {score}"),
            hint,
        ),
        Some(RunError::NoLegalMapping) => ServiceError::permanent(
            "no-legal-mapping",
            "search evaluated no legal mapping in this space",
        ),
        Some(e @ RunError::InvariantViolation { .. }) => {
            ServiceError::permanent("invariant-violation", e.to_string())
        }
        None => ServiceError::transient("internal", "search produced no result", hint),
    }
}

/// `health`: a cheap liveness/topology probe that, like `ping`/`stats`,
/// bypasses admission — it must answer even when the queue is full or the
/// daemon is draining.
fn render_health(shared: &Arc<Shared>, id: &str) -> String {
    let queue_depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let mut s = format!(
        "{{\"id\": {id}, \"ok\": true, \"role\": {}, \"draining\": {}, \
         \"queue_depth\": {queue_depth}, \"queue_capacity\": {}, \"workers_connected\": {}",
        json::escape(shared.cfg.role.name()),
        shared.should_drain(),
        shared.cfg.queue_capacity,
        shared.fleet.as_ref().map_or(0, |f| f.live_workers()),
    );
    if let Some(link) = &shared.worker_link {
        s.push_str(&format!(
            ", \"coordinator_connected\": {}, \"reconnects\": {}",
            link.connected(),
            link.reconnects(),
        ));
    }
    if let Some(f) = &shared.fleet {
        s.push_str(&format!(
            ", \"lease_redispatches\": {}",
            f.counters.redispatched.load(Ordering::Relaxed)
        ));
    }
    s.push_str(&format!(
        ", \"checkpoint_bak_rescues\": {}",
        crate::runtime::checkpoint_bak_rescues()
    ));
    if let Some(store) = &shared.store {
        s.push_str(&render_store_block(store));
    }
    s.push_str(&format!(", \"uptime_ms\": {}}}", shared.started.elapsed().as_millis()));
    s
}

/// Warm-store metrics block shared by `stats` and `health`.
fn render_store_block(store: &WarmStore) -> String {
    let st = store.stats();
    let recalls = st.hits + st.misses;
    let hit_rate = if recalls == 0 { 0.0 } else { st.hits as f64 / recalls as f64 };
    let last_verify = match &st.last_verify {
        Some((source, v)) => format!(
            "{{\"source\": {}, \"valid\": {}, \"quarantined\": {}, \"skipped_future\": {}, \
             \"bytes\": {}}}",
            json::escape(source),
            v.valid,
            v.quarantined,
            v.skipped_future,
            v.bytes,
        ),
        None => "null".to_string(),
    };
    format!(
        ", \"store\": {{\"entries\": {}, \"deposits\": {}, \"hits\": {}, \"misses\": {}, \
         \"hit_rate\": {}, \"quarantined\": {}, \"skipped_future\": {}, \
         \"last_compaction_reclaimed_bytes\": {}, \"file_bytes\": {}, \"bak_rescues\": {}, \
         \"last_verify\": {last_verify}}}",
        st.entries,
        st.deposits,
        st.hits,
        st.misses,
        json::num(hit_rate),
        st.quarantined,
        st.skipped_future,
        st.last_compaction_reclaimed,
        st.file_bytes,
        st.bak_rescues,
    )
}

fn render_stats(shared: &Arc<Shared>, id: &str) -> String {
    let c = &shared.counters;
    let queue_depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let cache = shared.cache_totals();
    let models = shared.caches.lock().unwrap_or_else(|e| e.into_inner()).map.len();
    let mut s = format!(
        "{{\"id\": {id}, \"ok\": true, \"role\": {}, \"uptime_ms\": {}, \"draining\": {}, \
         \"queue_depth\": {queue_depth}, \"queue_capacity\": {}, \"workers\": {}, \
         \"connections\": {}, \"accepted\": {}, \"completed\": {}, \
         \"rejected_overload\": {}, \"rejected_draining\": {}, \"degraded\": {}, \
         \"request_panics\": {}, \"invalid\": {}, \"models_cached\": {models}, \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \"evictions\": {}}}, \
         \"guard\": {{\"violations\": {}, \"rejections\": {}}}",
        json::escape(shared.cfg.role.name()),
        shared.started.elapsed().as_millis(),
        shared.should_drain(),
        shared.cfg.queue_capacity,
        shared.cfg.resolved_workers(),
        c.connections.load(Ordering::Relaxed),
        c.accepted.load(Ordering::Relaxed),
        c.completed.load(Ordering::Relaxed),
        c.rejected_overload.load(Ordering::Relaxed),
        c.rejected_draining.load(Ordering::Relaxed),
        c.degraded.load(Ordering::Relaxed),
        c.request_panics.load(Ordering::Relaxed),
        c.invalid.load(Ordering::Relaxed),
        cache.hits,
        cache.misses,
        cache.inserts,
        cache.evictions,
        shared.guard_violations.load(Ordering::Relaxed),
        shared.guard_rejections.load(Ordering::Relaxed),
    );
    if let Some(f) = &shared.fleet {
        s.push_str(&format!(
            ", \"fleet\": {{\"workers_connected\": {}, \"workers_joined\": {}, \
             \"workers_lost\": {}, \"dispatched\": {}, \"redispatched\": {}, \"stolen\": {}, \
             \"duplicates_discarded\": {}, \"stale_results\": {}}}",
            f.live_workers(),
            f.counters.workers_joined.load(Ordering::Relaxed),
            f.counters.workers_lost.load(Ordering::Relaxed),
            f.counters.dispatched.load(Ordering::Relaxed),
            f.counters.redispatched.load(Ordering::Relaxed),
            f.counters.stolen.load(Ordering::Relaxed),
            f.counters.duplicates_discarded.load(Ordering::Relaxed),
            f.counters.stale_results.load(Ordering::Relaxed),
        ));
    }
    if let Some(link) = &shared.worker_link {
        s.push_str(&format!(
            ", \"coordinator_connected\": {}, \"reconnects\": {}",
            link.connected(),
            link.reconnects(),
        ));
    }
    s.push_str(&format!(
        ", \"checkpoint_bak_rescues\": {}",
        crate::runtime::checkpoint_bak_rescues()
    ));
    if let Some(store) = &shared.store {
        s.push_str(&render_store_block(store));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rendering_carries_taxonomy() {
        let e = ServiceError::transient("overloaded", "queue full", Some(250));
        let line = e.render("7");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(err.get("kind").unwrap().as_str(), Some("transient"));
        assert_eq!(err.get("retry_after_ms").unwrap().as_u64(), Some(250));
        let p = ServiceError::permanent("bad-spec", "nope").render("null");
        let v = json::parse(&p).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("permanent"));
    }

    #[test]
    fn mapper_factory_gates_fault_injection() {
        assert!(mapper_by_name("gamma", false).is_some());
        assert!(mapper_by_name("panic-injector", false).is_none());
        assert!(mapper_by_name("panic-injector", true).is_some());
        assert!(mapper_by_name("nope", true).is_none());
    }

    #[test]
    fn model_keys_distinguish_arch_and_density() {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_a();
        let b = Arch::accel_b();
        let d = Some(Density { weight: 0.5, input: 1.0 });
        let k1 = model_key(&p, &a, None, Some(GuardPolicy::Reject));
        let k2 = model_key(&p, &b, None, Some(GuardPolicy::Reject));
        let k3 = model_key(&p, &b, d, Some(GuardPolicy::Reject));
        let k4 = model_key(&p, &b, None, None);
        assert!(k1 != k2 && k2 != k3 && k2 != k4);
    }
}
