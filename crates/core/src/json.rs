//! Minimal JSON reader/writer shared by the checkpoint format
//! (`mse::runtime`) and the service protocol (`mse::service`).
//!
//! The build environment is fully offline, so no serde_json; this is a
//! small, strict, hand-rolled parser. Numbers keep their raw token so
//! integer fields (seeds) round-trip exactly through `u64`; non-finite
//! doubles are written as the strings `"inf"` / `"-inf"` / `"nan"` and
//! accepted back in either form.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Raw number token, converted on access.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            // u64 fields (seeds) are written as strings: JSON numbers are
            // doubles and would round values above 2^53.
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Accepts numbers and the `"inf"`/`"-inf"`/`"nan"` string forms.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `as_u64` narrowed to `usize` (counts, indices).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// Renders the value back to compact JSON text (used to echo request
    /// ids verbatim in service responses).
    pub fn to_text(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(raw) => raw.clone(),
            Value::Str(s) => escape(s),
            Value::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Value::to_text).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Obj(fields) => {
                let inner: Vec<String> =
                    fields.iter().map(|(k, v)| format!("{}: {}", escape(k), v.to_text())).collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

/// Escapes `s` as a JSON string literal (with the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON numbers cannot encode non-finite doubles; encode those as strings
/// (`"inf"`, `"-inf"`, `"nan"`). [`Value::as_f64`] accepts both forms.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "\"nan\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input
/// (including trailing bytes after the document).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Recursion cap for nested containers. The parser is recursive-descent, so
/// attacker-controlled nesting depth is attacker-controlled stack depth; any
/// legitimate service/fleet message is a handful of levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn nested(
        &mut self,
        inner: fn(&mut Self) -> Result<Value, String>,
    ) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at offset {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = inner(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| "unsupported \\u escape".to_string())?;
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number {raw:?} at offset {start}"));
        }
        Ok(Value::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_and_num_round_trip() {
        let v = parse(&format!("{{\"s\": {}, \"n\": {}}}", escape("a\"\\\n\tb"), num(1.5)))
            .unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"\\\n\tb"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(parse(&num(f64::INFINITY)).unwrap().as_f64(), Some(f64::INFINITY));
        assert!(parse(&num(f64::NAN)).unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn bool_accessor_and_id_echo() {
        let v = parse(r#"{"a": true, "id": [1, "x", null]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("id").unwrap().to_text(), "[1,\"x\",null]");
        assert_eq!(v.get("a").unwrap().to_text(), "true");
    }
}
