//! Durable, crash-only warm-start store.
//!
//! Every completed `search`/`sweep` request deposits its incumbent mapping
//! here, keyed by an architecture fingerprint plus the problem's codec spec;
//! later requests recall the most similar prior (by [`Problem::edit_distance`])
//! to seed their initial population. The store is an append-only text log —
//! one CRC-framed, schema-versioned record per line — with `fsync` after every
//! deposit, so a crash can tear at most the record being written.
//!
//! Failure model: `open` never panics on damage. Each line is independently
//! framed (`ws1 <crc32> <payload>`), so load walks the whole file, keeps every
//! record whose magic, CRC, and payload all check out, and counts everything
//! else as *quarantined*. A torn tail, a truncated file, or a flipped bit can
//! therefore only lose the records it physically damaged — the valid prefix
//! (and any valid suffix after the damage) survives. Records from a *future*
//! schema version are skipped without being counted as damage, so an old
//! binary can share a store with a newer one. Rolling compaction bounds the
//! file using the same `.tmp` + `.bak` + fsync dance as the sweep checkpoint,
//! which also heals any quarantined bytes out of the file (the damaged
//! original survives one generation as `.bak`).
//!
//! The store itself never trusts its own contents: recalled mappings are
//! strings until the service re-validates them (structural legality plus a
//! rejecting [`GuardedModel`] evaluation), so a corrupt or adversarial store
//! can lower the hit rate but can never change a search result or crash the
//! daemon.
//!
//! On top of the log sits a small UCB bandit ([`WarmStore::select_mapper`]):
//! for requests that ask for mapper `auto`, the coordinator picks among
//! gamma / CEM / annealing / dosa based on the observed reward of deposited results
//! for similar problems. Ties break on fixed arm order and recalls break on
//! newest-record-wins — no wall clock, no RNG — so fleet byte-identity is
//! preserved: the arm and the seed are resolved once, coordinator-side, and
//! shipped inside shard payloads.

use crate::chaos;
use mapping::Mapping;
use problem::{codec as problem_codec, Density, Problem};
use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Per-line magic for the current schema version. A future format bump writes
/// `ws2 …` lines; this binary skips those gracefully (not counted as damage).
const MAGIC: &str = "ws1";
/// Prefix shared by every schema version of the record framing.
const MAGIC_FAMILY: &str = "ws";

/// Deposits trigger a compaction once the in-memory set reaches this size.
const AUTO_COMPACT_AT: usize = 1024;
/// Compaction keeps at most this many newest records per (arch, problem) key.
const KEEP_PER_KEY: usize = 8;
/// Compaction additionally caps the total record count (newest win), so a
/// store with many distinct keys still shrinks below [`AUTO_COMPACT_AT`].
const TOTAL_CAP: usize = 768;

/// Arms of the mapper bandit, in fixed tie-break order. Index 0 is the
/// fallback when the store is absent, empty, or has no similar entries.
pub const BANDIT_ARMS: [&str; 4] = ["gamma", "cem", "annealing", "dosa"];

/// Only priors within this edit distance feed the bandit's reward estimate;
/// recall itself has no radius (the caller sees the distance and the guard
/// re-validates), but reward mixing across unrelated problems would just
/// add noise.
const BANDIT_RADIUS: usize = 6;

/// One deposited incumbent.
#[derive(Debug, Clone)]
pub struct StoreRecord {
    /// Fingerprint of the architecture (and density) the score was measured on.
    pub arch_fp: u64,
    /// Problem codec spec (`OP;name;D=bound,...`).
    pub problem_spec: String,
    /// Mapping codec spec for the incumbent.
    pub mapping_spec: String,
    /// Mapper that produced it (a concrete name, never `auto`).
    pub mapper: String,
    /// Incumbent score (EDP); always finite.
    pub score: f64,
    /// Evaluations the producing search spent.
    pub evaluated: u64,
}

/// Counters surfaced through `stats`/`health` and `mapex store stats`.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Live records currently in memory (and, between compactions, on disk).
    pub entries: usize,
    /// Deposits accepted this process lifetime.
    pub deposits: u64,
    /// Recalls that produced a validated seed.
    pub hits: u64,
    /// Recalls that found nothing usable (no candidate, unscalable, or
    /// rejected by the guard).
    pub misses: u64,
    /// Damaged records skipped at load plus priors rejected by re-validation.
    pub quarantined: u64,
    /// Well-formed records from a future schema version skipped at load.
    pub skipped_future: u64,
    /// Bytes reclaimed by the most recent compaction.
    pub last_compaction_reclaimed: u64,
    /// Current size of the backing file (0 for in-memory stores).
    pub file_bytes: u64,
    /// Times a missing primary file was rescued from its `.bak` (crash
    /// between compaction renames) this process lifetime.
    pub bak_rescues: u64,
    /// The most recent integrity outcome and where it came from (`"open"`
    /// scan or `"compact"` rewrite); `None` for in-memory stores.
    pub last_verify: Option<(&'static str, VerifyReport)>,
}

/// Result of an explicit [`WarmStore::compact`].
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    pub kept: usize,
    pub dropped: usize,
    pub reclaimed_bytes: u64,
}

/// Result of the read-only [`WarmStore::verify`] scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyReport {
    pub valid: usize,
    pub quarantined: usize,
    pub skipped_future: usize,
    pub bytes: u64,
}

struct Inner {
    records: Vec<StoreRecord>,
    file: Option<File>,
    /// The file ends without a trailing newline (torn tail); the next append
    /// writes a leading `\n` so the damage stays confined to one record.
    needs_newline: bool,
    deposits: u64,
    hits: u64,
    misses: u64,
    quarantined: u64,
    skipped_future: u64,
    last_compaction_reclaimed: u64,
    file_bytes: u64,
    bak_rescues: u64,
    last_verify: Option<(&'static str, VerifyReport)>,
}

/// Durable warm-start store. Cheap to share behind an `Arc`; all methods take
/// `&self` (a poisoned lock is recovered, matching the service's crash-only
/// stance).
pub struct WarmStore {
    path: Option<PathBuf>,
    inner: Mutex<Inner>,
}

impl WarmStore {
    /// Open (or create) a store at `path`. Damaged records are quarantined and
    /// skipped — this never fails on corrupt *content*, only on real I/O
    /// errors (unwritable directory, etc.).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut records = Vec::new();
        let mut quarantined = 0u64;
        let mut skipped_future = 0u64;
        let mut needs_newline = false;
        let mut file_bytes = 0u64;
        let mut bak_rescues = 0u64;
        // Crash rescue: a crash between compaction's two renames leaves no
        // primary but a complete `.bak`. Promote it so the store always
        // loads — the `.bak` is at worst one compaction generation stale,
        // which the append log semantics tolerate.
        let bak = Self::backup_path(path);
        if !path.exists() && bak.exists() && chaos::rename(&bak, path).is_ok() {
            bak_rescues = 1;
        }
        if path.exists() {
            let raw = chaos::read_bytes(path)?;
            file_bytes = raw.len() as u64;
            needs_newline = raw.last().is_some_and(|&b| b != b'\n');
            let text = String::from_utf8_lossy(&raw);
            for line in text.lines() {
                match parse_record(line) {
                    Parsed::Record(r) => records.push(r),
                    Parsed::Quarantined => quarantined += 1,
                    Parsed::FutureVersion => skipped_future += 1,
                    Parsed::Blank => {}
                }
            }
        }
        let file = Some(chaos::open_append(path)?);
        let last_verify = Some((
            "open",
            VerifyReport {
                valid: records.len(),
                quarantined: quarantined as usize,
                skipped_future: skipped_future as usize,
                bytes: file_bytes,
            },
        ));
        Ok(WarmStore {
            path: Some(path.to_path_buf()),
            inner: Mutex::new(Inner {
                records,
                file,
                needs_newline,
                deposits: 0,
                hits: 0,
                misses: 0,
                quarantined,
                skipped_future,
                last_compaction_reclaimed: 0,
                file_bytes,
                bak_rescues,
                last_verify,
            }),
        })
    }

    /// A store with no backing file — deposits live only in memory. Used by
    /// tests and available to embedders that want session-local warm starts.
    pub fn in_memory() -> Self {
        WarmStore {
            path: None,
            inner: Mutex::new(Inner {
                records: Vec::new(),
                file: None,
                needs_newline: false,
                deposits: 0,
                hits: 0,
                misses: 0,
                quarantined: 0,
                skipped_future: 0,
                last_compaction_reclaimed: 0,
                file_bytes: 0,
                bak_rescues: 0,
                last_verify: None,
            }),
        }
    }

    /// Fingerprint an architecture + density pair. The `Debug` form pins every
    /// capacity, energy, and fanout field (the same idiom the service uses for
    /// model-cache keys), so any arch change changes the key.
    pub fn arch_fingerprint(arch: &arch::Arch, density: Option<&Density>) -> u64 {
        fnv1a64(format!("{arch:?}|{density:?}").as_bytes())
    }

    /// Append one incumbent and fsync it. Non-finite scores and specs that
    /// could break the line framing are rejected as `InvalidInput`.
    pub fn deposit(
        &self,
        arch_fp: u64,
        problem: &Problem,
        mapping: &Mapping,
        mapper: &str,
        score: f64,
        evaluated: u64,
    ) -> std::io::Result<()> {
        if !score.is_finite() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "warm store rejects non-finite scores",
            ));
        }
        if mapper.is_empty() || mapper.contains(['\t', '\n', '\r']) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "warm store rejects mapper names with framing bytes",
            ));
        }
        let rec = StoreRecord {
            arch_fp,
            problem_spec: problem_codec::to_spec(problem),
            mapping_spec: mapping::codec::to_spec(mapping),
            mapper: mapper.to_string(),
            score,
            evaluated,
        };
        let line = render_record(&rec);
        let mut inner = self.lock();
        // Self-heal: a failed compaction drops the append handle (the old
        // inode was renamed away — writing through it would be silently
        // non-durable). Reopen on the current path, rescuing a `.bak`
        // orphan first, or fail the deposit honestly.
        if inner.file.is_none() {
            if let Some(path) = &self.path {
                let bak = Self::backup_path(path);
                if !path.exists() && bak.exists() && chaos::rename(&bak, path).is_ok() {
                    inner.bak_rescues += 1;
                }
                inner.file = Some(chaos::open_append(path)?);
            }
        }
        let needs_newline = inner.needs_newline;
        if let Some(f) = inner.file.as_mut() {
            let mut buf = Vec::with_capacity(line.len() + 2);
            if needs_newline {
                buf.push(b'\n');
            }
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            let wrote = chaos::write_all(f, &buf);
            let synced = wrote.and_then(|()| chaos::sync_all(f));
            if let Err(e) = synced {
                // The append may have torn mid-line; make the next append
                // start a fresh line so the damage stays confined to this
                // one record (a spurious blank line is harmless).
                inner.needs_newline = true;
                return Err(e);
            }
            inner.needs_newline = false;
            inner.file_bytes += buf.len() as u64;
        }
        inner.records.push(rec);
        inner.deposits += 1;
        if inner.records.len() >= AUTO_COMPACT_AT {
            let _ = self.compact_locked(&mut inner);
        }
        Ok(())
    }

    /// Most similar prior for `problem` under `arch_fp`, by edit distance with
    /// newest-record-wins tie-break. Returns the *source* problem, the raw
    /// mapping spec, and the distance; the caller must rescale and re-validate
    /// before trusting the mapping. Does not touch hit/miss counters — the
    /// caller reports the validated outcome via [`record_hit`] /
    /// [`record_miss`] / [`record_poisoned`].
    ///
    /// [`record_hit`]: WarmStore::record_hit
    /// [`record_miss`]: WarmStore::record_miss
    /// [`record_poisoned`]: WarmStore::record_poisoned
    pub fn recall(&self, problem: &Problem, arch_fp: u64) -> Option<(Problem, String, usize)> {
        let inner = self.lock();
        let mut best: Option<(usize, usize, &StoreRecord)> = None;
        for (idx, rec) in inner.records.iter().enumerate() {
            if rec.arch_fp != arch_fp {
                continue;
            }
            let Ok(src) = problem_codec::from_spec(&rec.problem_spec) else {
                continue;
            };
            let d = problem.edit_distance(&src);
            let better = match best {
                None => true,
                // Strictly smaller distance, or same distance but newer.
                Some((bd, bi, _)) => d < bd || (d == bd && idx > bi),
            };
            if better {
                best = Some((d, idx, rec));
            }
        }
        best.and_then(|(d, _, rec)| {
            let src = problem_codec::from_spec(&rec.problem_spec).ok()?;
            Some((src, rec.mapping_spec.clone(), d))
        })
    }

    /// Pick a mapper arm for `problem` via UCB over deposited rewards of
    /// similar problems. Fully deterministic: untried arms are explored in
    /// [`BANDIT_ARMS`] order, ties break on the same order, and nothing reads
    /// a clock or RNG — so the choice is a pure function of store contents.
    pub fn select_mapper(&self, problem: &Problem, arch_fp: u64) -> &'static str {
        let inner = self.lock();
        // Reward needs a per-problem baseline: the best score seen for each
        // exact problem spec (within the similarity radius and arch key).
        let mut best_by_problem: HashMap<&str, f64> = HashMap::new();
        let mut similar: Vec<&StoreRecord> = Vec::new();
        for rec in &inner.records {
            if rec.arch_fp != arch_fp {
                continue;
            }
            let Ok(src) = problem_codec::from_spec(&rec.problem_spec) else {
                continue;
            };
            if problem.edit_distance(&src) > BANDIT_RADIUS {
                continue;
            }
            similar.push(rec);
            let e = best_by_problem.entry(rec.problem_spec.as_str()).or_insert(f64::INFINITY);
            if rec.score < *e {
                *e = rec.score;
            }
        }
        let mut pulls = [0u64; BANDIT_ARMS.len()];
        let mut reward_sum = [0.0f64; BANDIT_ARMS.len()];
        for rec in &similar {
            let Some(arm) = BANDIT_ARMS.iter().position(|a| *a == rec.mapper) else {
                continue;
            };
            let baseline = best_by_problem.get(rec.problem_spec.as_str()).copied().unwrap_or(0.0);
            let reward = if rec.score > 0.0 && baseline.is_finite() && baseline > 0.0 {
                (baseline / rec.score).clamp(0.0, 1.0)
            } else {
                0.0
            };
            pulls[arm] += 1;
            reward_sum[arm] += reward;
        }
        let total: u64 = pulls.iter().sum();
        if total == 0 {
            return BANDIT_ARMS[0];
        }
        // Explore untried arms first, in declaration order.
        if let Some(untried) = pulls.iter().position(|&n| n == 0) {
            return BANDIT_ARMS[untried];
        }
        let mut best_arm = 0usize;
        let mut best_ucb = f64::NEG_INFINITY;
        for arm in 0..BANDIT_ARMS.len() {
            let n = pulls[arm] as f64;
            let ucb = reward_sum[arm] / n + (2.0 * (total as f64).ln() / n).sqrt();
            // Strict `>` keeps the first (declaration-order) arm on ties.
            if ucb > best_ucb {
                best_ucb = ucb;
                best_arm = arm;
            }
        }
        BANDIT_ARMS[best_arm]
    }

    /// Count a recall whose prior survived re-validation.
    pub fn record_hit(&self) {
        self.lock().hits += 1;
    }

    /// Count a recall that produced nothing usable (no candidate or the prior
    /// could not be rescaled to the new problem).
    pub fn record_miss(&self) {
        self.lock().misses += 1;
    }

    /// Count a recalled prior that the guard rejected: quarantined *and* a
    /// miss (the search proceeds cold, identical to a no-store run).
    pub fn record_poisoned(&self) {
        let mut inner = self.lock();
        inner.quarantined += 1;
        inner.misses += 1;
    }

    /// Rewrite the log keeping the newest [`KEEP_PER_KEY`] records per
    /// (arch, problem) key, capped at [`TOTAL_CAP`] overall. Uses the
    /// `.tmp` + `.bak` + fsync pattern, so the previous file (including any
    /// quarantined bytes) survives one generation as `.bak` — compaction is
    /// also how a damaged store heals.
    pub fn compact(&self) -> std::io::Result<CompactReport> {
        let mut inner = self.lock();
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> std::io::Result<CompactReport> {
        let before_len = inner.records.len();
        let before_bytes = inner.file_bytes;
        // Walk newest-first, keeping the first KEEP_PER_KEY per key and the
        // first TOTAL_CAP overall, then restore chronological order.
        let mut per_key: HashMap<(u64, &str), usize> = HashMap::new();
        let mut keep_idx: Vec<usize> = Vec::new();
        for (idx, rec) in inner.records.iter().enumerate().rev() {
            if keep_idx.len() >= TOTAL_CAP {
                break;
            }
            let slot = per_key.entry((rec.arch_fp, rec.problem_spec.as_str())).or_insert(0);
            if *slot >= KEEP_PER_KEY {
                continue;
            }
            *slot += 1;
            keep_idx.push(idx);
        }
        keep_idx.reverse();
        let kept: Vec<StoreRecord> =
            keep_idx.iter().map(|&i| inner.records[i].clone()).collect();
        let dropped = before_len - kept.len();

        if let Some(path) = &self.path {
            let mut body = String::new();
            for rec in &kept {
                body.push_str(&render_record(rec));
                body.push('\n');
            }
            let tmp = sibling(path, ".tmp");
            {
                let mut f = chaos::create(&tmp)?;
                chaos::write_all(&mut f, body.as_bytes())?;
                chaos::sync_all(&f)?;
            }
            let bak = Self::backup_path(path);
            if path.exists() {
                // Nothing moved yet on failure: the primary and the append
                // handle are both still valid.
                chaos::rename(path, &bak)?;
            }
            if let Err(e) = chaos::rename(&tmp, path) {
                // The primary was renamed away and the replacement never
                // landed: the old append handle now points at `.bak`'s
                // inode. Drop it — the next deposit reopens (rescuing the
                // `.bak` back into place), instead of writing into a file
                // nobody will ever read.
                inner.file = None;
                return Err(e);
            }
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    if let Ok(dir) = File::open(parent) {
                        let _ = dir.sync_all();
                    }
                }
            }
            // Reopen the append handle on the fresh file; on failure the
            // stale handle must not survive (see above).
            match chaos::open_append(path) {
                Ok(f) => inner.file = Some(f),
                Err(e) => {
                    inner.file = None;
                    return Err(e);
                }
            }
            inner.needs_newline = false;
            inner.file_bytes = body.len() as u64;
            inner.last_compaction_reclaimed = before_bytes.saturating_sub(inner.file_bytes);
        } else {
            inner.last_compaction_reclaimed = 0;
        }
        inner.last_verify = Some((
            "compact",
            VerifyReport {
                valid: kept.len(),
                quarantined: 0,
                skipped_future: 0,
                bytes: inner.file_bytes,
            },
        ));
        inner.records = kept;
        Ok(CompactReport {
            kept: inner.records.len(),
            dropped,
            reclaimed_bytes: inner.last_compaction_reclaimed,
        })
    }

    /// Rolling backup path: `warm.store` → `warm.store.bak`.
    pub fn backup_path(path: &Path) -> PathBuf {
        sibling(path, ".bak")
    }

    /// Read-only integrity scan of a store file (no append handle, no heal).
    pub fn verify(path: &Path) -> std::io::Result<VerifyReport> {
        let raw = chaos::read_bytes(path)?;
        let mut report = VerifyReport { bytes: raw.len() as u64, ..VerifyReport::default() };
        let text = String::from_utf8_lossy(&raw);
        for line in text.lines() {
            match parse_record(line) {
                Parsed::Record(_) => report.valid += 1,
                Parsed::Quarantined => report.quarantined += 1,
                Parsed::FutureVersion => report.skipped_future += 1,
                Parsed::Blank => {}
            }
        }
        Ok(report)
    }

    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        StoreStats {
            entries: inner.records.len(),
            deposits: inner.deposits,
            hits: inner.hits,
            misses: inner.misses,
            quarantined: inner.quarantined,
            skipped_future: inner.skipped_future,
            last_compaction_reclaimed: inner.last_compaction_reclaimed,
            file_bytes: inner.file_bytes,
            bak_rescues: inner.bak_rescues,
            last_verify: inner.last_verify,
        }
    }

    /// Snapshot of the live records (chaos-oracle and debugging aid).
    pub fn records(&self) -> Vec<StoreRecord> {
        self.lock().records.clone()
    }

    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

enum Parsed {
    Record(StoreRecord),
    Quarantined,
    FutureVersion,
    Blank,
}

/// `ws1 <crc32-hex> <payload>` where payload is
/// `arch_fp_hex \t problem_spec \t mapping_spec \t mapper \t score \t evaluated`.
fn render_record(rec: &StoreRecord) -> String {
    let payload = format!(
        "{:016x}\t{}\t{}\t{}\t{:?}\t{}",
        rec.arch_fp, rec.problem_spec, rec.mapping_spec, rec.mapper, rec.score, rec.evaluated
    );
    format!("{MAGIC} {:08x} {payload}", crc32(payload.as_bytes()))
}

fn parse_record(line: &str) -> Parsed {
    if line.trim().is_empty() {
        return Parsed::Blank;
    }
    let Some((magic, rest)) = line.split_once(' ') else {
        return Parsed::Quarantined;
    };
    if magic != MAGIC {
        // A well-formed line from a newer schema (`ws2 …`) is skipped, not
        // quarantined; anything else is damage.
        let future = magic
            .strip_prefix(MAGIC_FAMILY)
            .and_then(|v| v.parse::<u32>().ok())
            .is_some_and(|v| v > 1);
        return if future { Parsed::FutureVersion } else { Parsed::Quarantined };
    }
    let Some((crc_hex, payload)) = rest.split_once(' ') else {
        return Parsed::Quarantined;
    };
    let Ok(want) = u32::from_str_radix(crc_hex, 16) else {
        return Parsed::Quarantined;
    };
    if crc_hex.len() != 8 || crc32(payload.as_bytes()) != want {
        return Parsed::Quarantined;
    }
    let fields: Vec<&str> = payload.split('\t').collect();
    let [fp_hex, problem_spec, mapping_spec, mapper, score_s, eval_s] = fields[..] else {
        return Parsed::Quarantined;
    };
    let Ok(arch_fp) = u64::from_str_radix(fp_hex, 16) else {
        return Parsed::Quarantined;
    };
    let Ok(score) = score_s.parse::<f64>() else {
        return Parsed::Quarantined;
    };
    let Ok(evaluated) = eval_s.parse::<u64>() else {
        return Parsed::Quarantined;
    };
    if !score.is_finite() || mapper.is_empty() {
        return Parsed::Quarantined;
    }
    // The specs must at least parse; semantic validity (legality, guard
    // floors) is re-checked by the service at recall time.
    if problem_codec::from_spec(problem_spec).is_err()
        || mapping::codec::from_spec(mapping_spec).is_err()
    {
        return Parsed::Quarantined;
    }
    Parsed::Record(StoreRecord {
        arch_fp,
        problem_spec: problem_spec.to_string(),
        mapping_spec: mapping_spec.to_string(),
        mapper: mapper.to_string(),
        score,
        evaluated,
    })
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise — no table,
/// no dependency. Plenty fast for line-sized payloads.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mse-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn gemm(name: &str, m: usize, n: usize, k: usize) -> Problem {
        problem_codec::from_spec(&format!("GEMM;{name};B=1,M={m},K={k},N={n}")).expect("gemm spec")
    }

    fn sample(problem: &Problem, arch: &Arch, score: f64) -> (Mapping, f64) {
        (Mapping::trivial(problem, arch), score)
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" is the canonical IEEE CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn deposit_recall_round_trips_across_reopen() {
        let dir = scratch("roundtrip");
        let path = dir.join("warm.store");
        let arch = Arch::accel_a();
        let p = gemm("fc1", 64, 64, 64);
        let fp = WarmStore::arch_fingerprint(&arch, None);
        {
            let store = WarmStore::open(&path).expect("open");
            let (m, score) = sample(&p, &arch, 123.5);
            store.deposit(fp, &p, &m, "gamma", score, 400).expect("deposit");
            assert_eq!(store.len(), 1);
        }
        let store = WarmStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().quarantined, 0);
        let similar = gemm("fc2", 64, 64, 128);
        let (src, mapping_spec, dist) = store.recall(&similar, fp).expect("recall");
        assert_eq!(problem_codec::to_spec(&src), problem_codec::to_spec(&p));
        assert!(mapping::codec::from_spec(&mapping_spec).is_ok());
        assert_eq!(dist, similar.edit_distance(&p));
        // Different arch fingerprint: no candidates.
        assert!(store.recall(&similar, fp ^ 1).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recall_prefers_closest_then_newest() {
        let store = WarmStore::in_memory();
        let arch = Arch::accel_a();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        let far = gemm("far", 8, 8, 512);
        let near_a = gemm("a", 64, 64, 64);
        let near_b = gemm("b", 64, 64, 64);
        for (i, p) in [&far, &near_a, &near_b].into_iter().enumerate() {
            let (m, s) = sample(p, &arch, 10.0 + i as f64);
            store.deposit(fp, p, &m, "gamma", s, 100).unwrap();
        }
        let query = gemm("q", 64, 64, 64);
        let (src, _, _) = store.recall(&query, fp).expect("recall");
        // near_a and near_b tie on distance; the newer deposit wins.
        assert_eq!(problem_codec::to_spec(&src), problem_codec::to_spec(&near_b));
    }

    #[test]
    fn torn_tail_is_quarantined_and_append_stays_framed() {
        let dir = scratch("torn");
        let path = dir.join("warm.store");
        let arch = Arch::accel_a();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        let p1 = gemm("l1", 32, 32, 32);
        let p2 = gemm("l2", 48, 48, 48);
        {
            let store = WarmStore::open(&path).expect("open");
            let (m, s) = sample(&p1, &arch, 50.0);
            store.deposit(fp, &p1, &m, "gamma", s, 10).unwrap();
        }
        // Tear the last record: drop the trailing newline plus a few bytes.
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 5);
        fs::write(&path, &bytes).unwrap();

        let store = WarmStore::open(&path).expect("open torn");
        assert_eq!(store.len(), 0, "torn record must not load");
        assert_eq!(store.stats().quarantined, 1);
        // A deposit after the torn tail must start on a fresh line so only
        // the already-damaged record stays unreadable.
        let (m, s) = sample(&p2, &arch, 60.0);
        store.deposit(fp, &p2, &m, "cem", s, 20).unwrap();
        let reopened = WarmStore::open(&path).expect("reopen");
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.stats().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_schema_versions_are_skipped_not_quarantined() {
        let dir = scratch("future");
        let path = dir.join("warm.store");
        fs::write(&path, "ws2 00000000 payload-from-the-future\n").unwrap();
        let store = WarmStore::open(&path).expect("open");
        assert_eq!(store.len(), 0);
        let s = store.stats();
        assert_eq!(s.skipped_future, 1);
        assert_eq!(s.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_in_the_middle_keeps_valid_suffix() {
        let dir = scratch("middle");
        let path = dir.join("warm.store");
        let arch = Arch::accel_a();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        {
            let store = WarmStore::open(&path).expect("open");
            for (i, name) in ["a", "b", "c"].iter().enumerate() {
                let p = gemm(name, 32 + i, 32, 32);
                let (m, s) = sample(&p, &arch, 10.0 + i as f64);
                store.deposit(fp, &p, &m, "gamma", s, 5).unwrap();
            }
        }
        // Flip a bit inside the *second* line's CRC region.
        let mut bytes = fs::read(&path).unwrap();
        let second_line_start =
            bytes.iter().position(|&b| b == b'\n').expect("first newline") + 1;
        bytes[second_line_start + 5] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let store = WarmStore::open(&path).expect("open damaged");
        assert_eq!(store.len(), 2, "records before and after the damage survive");
        assert_eq!(store.stats().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_bounds_the_file_and_heals_damage() {
        let dir = scratch("compact");
        let path = dir.join("warm.store");
        let arch = Arch::accel_a();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        let p = gemm("hot", 64, 64, 64);
        let store = WarmStore::open(&path).expect("open");
        for i in 0..(KEEP_PER_KEY + 7) {
            let (m, s) = sample(&p, &arch, 100.0 - i as f64);
            store.deposit(fp, &p, &m, "gamma", s, i as u64).unwrap();
        }
        let before = fs::metadata(&path).unwrap().len();
        let report = store.compact().expect("compact");
        assert_eq!(report.kept, KEEP_PER_KEY);
        assert_eq!(report.dropped, 7);
        assert_eq!(report.reclaimed_bytes, before - fs::metadata(&path).unwrap().len());
        assert!(WarmStore::backup_path(&path).exists(), "previous file kept as .bak");
        // The newest record (largest evaluated) must be among the survivors.
        let reopened = WarmStore::open(&path).expect("reopen");
        assert_eq!(reopened.len(), KEEP_PER_KEY);
        assert_eq!(reopened.stats().quarantined, 0);
        // Deposits after compaction append to the rewritten file.
        let (m, s) = sample(&p, &arch, 1.0);
        reopened.deposit(fp, &p, &m, "cem", s, 999).unwrap();
        assert_eq!(WarmStore::open(&path).unwrap().len(), KEEP_PER_KEY + 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bandit_explores_in_fixed_order_then_exploits() {
        let store = WarmStore::in_memory();
        let arch = Arch::accel_a();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        let p = gemm("b", 64, 64, 64);
        // Empty store: deterministic fallback to the first arm.
        assert_eq!(store.select_mapper(&p, fp), "gamma");
        let (m, _) = sample(&p, &arch, 0.0);
        // One gamma pull: cem is the first untried arm.
        store.deposit(fp, &p, &m, "gamma", 10.0, 100).unwrap();
        assert_eq!(store.select_mapper(&p, fp), "cem");
        store.deposit(fp, &p, &m, "cem", 40.0, 100).unwrap();
        assert_eq!(store.select_mapper(&p, fp), "annealing");
        store.deposit(fp, &p, &m, "annealing", 40.0, 100).unwrap();
        assert_eq!(store.select_mapper(&p, fp), "dosa");
        store.deposit(fp, &p, &m, "dosa", 40.0, 100).unwrap();
        // All arms tried once; gamma holds the best score (reward 1.0) and
        // identical exploration bonuses, so UCB exploits gamma.
        assert_eq!(store.select_mapper(&p, fp), "gamma");
        // A dissimilar problem sees no relevant pulls: falls back to gamma.
        let far = gemm("far", 7, 1000, 3);
        assert_eq!(store.select_mapper(&far, fp), "gamma");
    }

    #[test]
    fn verify_reports_without_mutating() {
        let dir = scratch("verify");
        let path = dir.join("warm.store");
        let arch = Arch::accel_a();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        let p = gemm("v", 16, 16, 16);
        {
            let store = WarmStore::open(&path).expect("open");
            let (m, s) = sample(&p, &arch, 5.0);
            store.deposit(fp, &p, &m, "gamma", s, 1).unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"ws1 deadbeef not a real payload\n");
        bytes.extend_from_slice(b"ws9 00000000 future\n");
        fs::write(&path, &bytes).unwrap();
        let before = fs::read(&path).unwrap();
        let report = WarmStore::verify(&path).expect("verify");
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.skipped_future, 1);
        assert_eq!(fs::read(&path).unwrap(), before, "verify is read-only");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deposit_rejects_unframeable_input() {
        let store = WarmStore::in_memory();
        let arch = Arch::accel_a();
        let p = gemm("r", 8, 8, 8);
        let (m, _) = sample(&p, &arch, 0.0);
        assert!(store.deposit(1, &p, &m, "gamma", f64::INFINITY, 1).is_err());
        assert!(store.deposit(1, &p, &m, "bad\tname", 1.0, 1).is_err());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn auto_compaction_kicks_in_at_threshold() {
        let store = WarmStore::in_memory();
        let arch = Arch::accel_a();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        // Distinct problems so per-key retention alone can't shrink below the
        // total cap.
        for i in 0..AUTO_COMPACT_AT {
            let p = gemm(&format!("l{i}"), 8 + (i % 97), 8, 8);
            let (m, _) = sample(&p, &arch, 0.0);
            store.deposit(fp, &p, &m, "gamma", 1.0 + i as f64, 1).unwrap();
        }
        assert!(store.len() <= TOTAL_CAP, "auto-compaction must bound the set");
    }
}
