//! Deterministic chaos plane: seeded fault campaigns with invariant
//! oracles and fault-plan shrinking.
//!
//! A [`FaultPlan`] is a small, fully deterministic (splitmix-derived)
//! list of [`FaultEvent`]s, each firing at the *nth* operation of an
//! injection [`Site`]. Sites sit at the two boundaries everything
//! durable flows through:
//!
//! * **file I/O** — the store / checkpoint / replay-buffer writers call
//!   [`create`] / [`open_append`] / [`write_all`] / [`sync_all`] /
//!   [`rename`] / [`read_bytes`] here instead of `std::fs` directly, so
//!   a plan can inject short writes, torn syncs, EINTR-style partial
//!   reads, delayed fsync visibility, and transient open failures;
//! * **sockets** — `service::write_line` / `read_bounded_line` and the
//!   fleet link consult [`net_send_fault`] / [`net_recv_fault`] /
//!   [`heartbeat_stall`], so a plan can inject partial writes,
//!   connection resets mid-frame, stalled heartbeats, and delayed
//!   delivery;
//!
//! plus process-level events (worker kill/restart, coordinator kill at
//! a chosen delay) consumed by the scenario harness rather than hooks.
//!
//! When no plan is armed every hook is a single relaxed atomic load —
//! a zero-cost pass-through; production binaries never arm one.
//!
//! [`Harness::run_campaign`] executes N seeded plans against the
//! store / serve / fleet stacks and checks invariant oracles after each
//! run: exactly-once accounting (`accepted == completed`), results
//! bit-identical to the fault-free run, checkpoints/store always load
//! (valid prefix or `.bak` rescue), no panic escapes, and recovery
//! within the scenario's retry budget. A failing plan is shrunk with
//! [`Harness::shrink`] (classic ddmin over the event list) to a minimal
//! reproducer that serializes to JSON for `mapex chaos --replay`.

use crate::json;
use crate::runtime::SweepCheckpoint;
use crate::fleet::ServeRole;
use crate::service::{serve, ServeConfig, ServerHandle};
use crate::store::WarmStore;
use crate::warmstart::{InitStrategy, ReplayBuffer};
use crate::{EvalConfig, FleetConfig};
use costmodel::{CostModel, DenseModel, GuardConfig, GuardPolicy, GuardedModel};
use mappers::{Budget, Mapper, RandomMapper};
use problem::Problem;
use std::collections::HashSet;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Fault taxonomy
// ---------------------------------------------------------------------------

/// Where a fault is injected. File-system and network sites are hit by
/// the shims below; the two `Kill*` sites are process-level events the
/// scenario harness performs itself (in-process stand-ins for SIGKILL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// `open`/`create` of a durable file (transient open failure).
    FsOpen,
    /// Whole-file read (EINTR-style partial read: tail bytes lost).
    FsRead,
    /// A `write_all` on a durable file (short write: tail bytes lost).
    FsWrite,
    /// An `fsync` (torn sync: data written, durability not promised).
    FsSync,
    /// An atomic-replace `rename`.
    FsRename,
    /// A line written to a service/fleet socket.
    NetSend,
    /// A read from a service/fleet socket.
    NetRecv,
    /// A due worker heartbeat (stall: silence long enough to expire a lease).
    Heartbeat,
    /// Kill one worker daemon mid-sweep, then boot a replacement.
    KillWorker,
    /// Kill the coordinator mid-sweep; the harness reboots it on the same
    /// checkpoint directory and resumes.
    KillCoordinator,
}

const SITE_COUNT: usize = 10;

impl Site {
    fn index(self) -> usize {
        match self {
            Site::FsOpen => 0,
            Site::FsRead => 1,
            Site::FsWrite => 2,
            Site::FsSync => 3,
            Site::FsRename => 4,
            Site::NetSend => 5,
            Site::NetRecv => 6,
            Site::Heartbeat => 7,
            Site::KillWorker => 8,
            Site::KillCoordinator => 9,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Site::FsOpen => "fs-open",
            Site::FsRead => "fs-read",
            Site::FsWrite => "fs-write",
            Site::FsSync => "fs-sync",
            Site::FsRename => "fs-rename",
            Site::NetSend => "net-send",
            Site::NetRecv => "net-recv",
            Site::Heartbeat => "heartbeat",
            Site::KillWorker => "kill-worker",
            Site::KillCoordinator => "kill-coordinator",
        }
    }

    pub fn from_name(s: &str) -> Option<Site> {
        const ALL: [Site; SITE_COUNT] = [
            Site::FsOpen,
            Site::FsRead,
            Site::FsWrite,
            Site::FsSync,
            Site::FsRename,
            Site::NetSend,
            Site::NetRecv,
            Site::Heartbeat,
            Site::KillWorker,
            Site::KillCoordinator,
        ];
        ALL.into_iter().find(|site| site.name() == s)
    }

    /// Process-level events are performed by the harness, not the shims.
    fn is_process(self) -> bool {
        matches!(self, Site::KillWorker | Site::KillCoordinator)
    }
}

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The operation fails with an injected I/O error, nothing done.
    Fail,
    /// Short write/read: the last `n` bytes are lost, then the op errors
    /// (writes) or returns the truncated prefix (reads).
    Short(u32),
    /// The operation is delayed by `n` ms, then proceeds normally. On
    /// `Kill*` sites this is the kill delay after sweep submission.
    Delay(u32),
    /// Connection reset mid-frame (network sites).
    Reset,
    /// A heartbeat stall: the worker goes silent for `n` ms.
    Stall(u32),
}

impl Action {
    fn kind(self) -> &'static str {
        match self {
            Action::Fail => "fail",
            Action::Short(_) => "short",
            Action::Delay(_) => "delay",
            Action::Reset => "reset",
            Action::Stall(_) => "stall",
        }
    }

    fn arg(self) -> u32 {
        match self {
            Action::Fail | Action::Reset => 0,
            Action::Short(n) | Action::Delay(n) | Action::Stall(n) => n,
        }
    }

    fn from_parts(kind: &str, arg: u32) -> Option<Action> {
        match kind {
            "fail" => Some(Action::Fail),
            "short" => Some(Action::Short(arg)),
            "delay" => Some(Action::Delay(arg)),
            "reset" => Some(Action::Reset),
            "stall" => Some(Action::Stall(arg)),
            _ => None,
        }
    }
}

/// One injected fault: fire `action` at the `nth` operation of `site`
/// (counted from 0 while the plan is armed). Each event fires at most
/// once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: Site,
    pub nth: u32,
    pub action: Action,
}

/// Which stack a plan runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// WarmStore deposits/compaction, sweep checkpoints, replay buffer —
    /// pure file I/O, single process.
    Store,
    /// A standalone `serve` daemon driven by a retrying client.
    Serve,
    /// Coordinator + worker over real TCP, including process kills.
    Fleet,
}

impl Scenario {
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Store => "store",
            Scenario::Serve => "serve",
            Scenario::Fleet => "fleet",
        }
    }

    pub fn from_name(s: &str) -> Option<Scenario> {
        match s {
            "store" => Some(Scenario::Store),
            "serve" => Some(Scenario::Serve),
            "fleet" => Some(Scenario::Fleet),
            _ => None,
        }
    }
}

/// A deterministic, seeded fault plan: same seed → same events, byte for
/// byte, on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub scenario: Scenario,
    pub events: Vec<FaultEvent>,
}

/// The splitmix64 step — the only entropy source in the chaos plane.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Derives a plan from a seed. Event count, sites, offsets, and
    /// actions all come from one splitmix stream keyed on the seed and
    /// the scenario, so a plan is reproducible from its `(seed,
    /// scenario)` pair alone.
    pub fn generate(seed: u64, scenario: Scenario) -> FaultPlan {
        let mut s = seed ^ (0xc2b2_ae3d_27d4_eb4f_u64.wrapping_mul(scenario as u64 + 1));
        let n_events = 1 + (splitmix64(&mut s) % 4) as usize;
        let mut events: Vec<FaultEvent> = Vec::with_capacity(n_events);
        let mut have_kill = false;
        for _ in 0..n_events {
            let site = Self::pick_site(scenario, splitmix64(&mut s));
            if site.is_process() {
                if have_kill {
                    continue; // at most one process event per plan
                }
                have_kill = true;
            }
            let nth = Self::pick_nth(site, splitmix64(&mut s));
            let action = Self::pick_action(site, splitmix64(&mut s), splitmix64(&mut s));
            let ev = FaultEvent { site, nth, action };
            // Two events on the same (site, nth) op: only the first can
            // ever fire, so drop the duplicate at generation time.
            if !events.iter().any(|e| e.site == site && e.nth == nth) {
                events.push(ev);
            }
        }
        FaultPlan { seed, scenario, events }
    }

    fn pick_site(scenario: Scenario, r: u64) -> Site {
        match scenario {
            // Writes dominate: they are where durability bugs live.
            Scenario::Store => *[
                Site::FsWrite,
                Site::FsWrite,
                Site::FsSync,
                Site::FsSync,
                Site::FsOpen,
                Site::FsRead,
                Site::FsRename,
            ]
            .get(r as usize % 7)
            .unwrap_or(&Site::FsWrite),
            Scenario::Serve => {
                if r.is_multiple_of(2) {
                    Site::NetSend
                } else {
                    Site::NetRecv
                }
            }
            Scenario::Fleet => *[
                Site::NetSend,
                Site::NetSend,
                Site::NetSend,
                Site::NetRecv,
                Site::NetRecv,
                Site::NetRecv,
                Site::Heartbeat,
                Site::Heartbeat,
                Site::KillWorker,
                Site::KillCoordinator,
            ]
            .get(r as usize % 10)
            .unwrap_or(&Site::NetSend),
        }
    }

    fn pick_nth(site: Site, r: u64) -> u32 {
        match site {
            Site::FsOpen | Site::FsRead => (r % 8) as u32,
            Site::FsWrite | Site::FsSync => (r % 24) as u32,
            Site::FsRename => (r % 5) as u32,
            Site::NetSend => (r % 24) as u32,
            Site::NetRecv => (r % 16) as u32,
            Site::Heartbeat => (r % 8) as u32,
            // Kill events fire by delay, not op count.
            Site::KillWorker | Site::KillCoordinator => 0,
        }
    }

    fn pick_action(site: Site, r1: u64, r2: u64) -> Action {
        match site {
            Site::FsOpen | Site::FsSync | Site::FsRename => Action::Fail,
            Site::FsRead => Action::Short((1 + r2 % 96) as u32),
            Site::FsWrite => {
                if r1.is_multiple_of(3) {
                    Action::Fail
                } else {
                    Action::Short((1 + r2 % 48) as u32)
                }
            }
            Site::NetSend => match r1 % 3 {
                0 => Action::Reset,
                1 => Action::Short((1 + r2 % 24) as u32),
                _ => Action::Delay((1 + r2 % 40) as u32),
            },
            Site::NetRecv => {
                if r1.is_multiple_of(2) {
                    Action::Reset
                } else {
                    Action::Delay((1 + r2 % 40) as u32)
                }
            }
            Site::Heartbeat => Action::Stall((250 + r2 % 500) as u32),
            Site::KillWorker | Site::KillCoordinator => {
                Action::Delay((40 + r2 % 240) as u32)
            }
        }
    }

    /// The kill event of this plan (delay in ms), if any.
    fn kill_event(&self) -> Option<(Site, u64)> {
        self.events.iter().find(|e| e.site.is_process()).map(|e| {
            let ms = match e.action {
                Action::Delay(ms) => u64::from(ms),
                _ => 100,
            };
            (e.site, ms)
        })
    }

    /// Serializes to the reproducer JSON format (`mapex chaos --replay`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128 + self.events.len() * 64);
        s.push_str(&format!(
            "{{\"version\": 1, \"scenario\": {}, \"seed\": {}, \"events\": [",
            json::escape(self.scenario.name()),
            // u64 seeds as strings: JSON numbers are doubles and would
            // round seeds above 2^53 (the checkpoint format's rule).
            json::escape(&self.seed.to_string()),
        ));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"site\": {}, \"nth\": {}, \"action\": {}, \"arg\": {}}}",
                json::escape(e.site.name()),
                e.nth,
                json::escape(e.action.kind()),
                e.action.arg(),
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses a reproducer produced by [`FaultPlan::to_json`].
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON or unknown
    /// sites/actions/scenarios.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let doc = json::parse(text).map_err(|e| format!("bad plan JSON: {e}"))?;
        let scenario = doc
            .get("scenario")
            .and_then(json::Value::as_str)
            .and_then(Scenario::from_name)
            .ok_or("plan needs a known `scenario`")?;
        let seed = doc.get("seed").and_then(json::Value::as_u64).ok_or("plan needs a `seed`")?;
        let events_v =
            doc.get("events").and_then(json::Value::as_array).ok_or("plan needs `events`")?;
        let mut events = Vec::with_capacity(events_v.len());
        for (i, ev) in events_v.iter().enumerate() {
            let site = ev
                .get("site")
                .and_then(json::Value::as_str)
                .and_then(Site::from_name)
                .ok_or(format!("events[{i}]: unknown `site`"))?;
            let nth = ev
                .get("nth")
                .and_then(json::Value::as_u64)
                .ok_or(format!("events[{i}]: needs `nth`"))? as u32;
            let arg = ev.get("arg").and_then(json::Value::as_u64).unwrap_or(0) as u32;
            let action = ev
                .get("action")
                .and_then(json::Value::as_str)
                .and_then(|k| Action::from_parts(k, arg))
                .ok_or(format!("events[{i}]: unknown `action`"))?;
            events.push(FaultEvent { site, nth, action });
        }
        Ok(FaultPlan { seed, scenario, events })
    }
}

// ---------------------------------------------------------------------------
// The armed plane (global, zero-cost when off)
// ---------------------------------------------------------------------------

/// The one flag every hook checks first. Relaxed is enough: arming
/// happens-before the scenario's operations via the arming thread's own
/// sequencing plus the mutexes on every hooked path.
static ARMED: AtomicBool = AtomicBool::new(false);

struct PlaneState {
    events: Vec<(FaultEvent, bool)>,
    counters: [u32; SITE_COUNT],
    fired: u64,
}

static PLANE: Mutex<Option<PlaneState>> = Mutex::new(None);

/// Serializes chaos users process-wide: `cargo test` runs tests on
/// parallel threads, and an armed plane is global state.
static CHAOS_MUTEX: Mutex<()> = Mutex::new(());

fn plane() -> MutexGuard<'static, Option<PlaneState>> {
    PLANE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Exclusive access to the chaos plane. Holding a session does not arm
/// anything; it only guarantees no other thread can arm while fault-free
/// baselines run.
pub struct ChaosSession {
    _guard: MutexGuard<'static, ()>,
}

/// Blocks until this thread holds the (process-wide) chaos plane.
pub fn lock() -> ChaosSession {
    ChaosSession { _guard: CHAOS_MUTEX.lock().unwrap_or_else(PoisonError::into_inner) }
}

/// RAII armed plan: faults inject until this is dropped.
pub struct ArmedPlan<'a> {
    _session: &'a ChaosSession,
}

impl ChaosSession {
    /// Arms `plan`: op counters reset to zero, every event becomes
    /// eligible to fire once.
    pub fn arm(&self, plan: &FaultPlan) -> ArmedPlan<'_> {
        let mut g = plane();
        *g = Some(PlaneState {
            events: plan.events.iter().map(|e| (*e, false)).collect(),
            counters: [0; SITE_COUNT],
            fired: 0,
        });
        drop(g);
        ARMED.store(true, Ordering::SeqCst);
        ArmedPlan { _session: self }
    }
}

impl ArmedPlan<'_> {
    /// Events fired so far under this arming.
    pub fn fired(&self) -> u64 {
        plane().as_ref().map_or(0, |p| p.fired)
    }
}

impl Drop for ArmedPlan<'_> {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *plane() = None;
    }
}

/// Whether any plan is currently armed (the hooks' fast path).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Counts one operation at `site` and returns the action to inject, if
/// an un-fired event matches. The disarmed path is one relaxed load.
#[inline]
fn hit(site: Site) -> Option<Action> {
    if !armed() {
        return None;
    }
    hit_slow(site)
}

fn hit_slow(site: Site) -> Option<Action> {
    let mut g = plane();
    let p = g.as_mut()?;
    let n = p.counters[site.index()];
    p.counters[site.index()] = n.saturating_add(1);
    for (ev, fired) in &mut p.events {
        if !*fired && ev.site == site && ev.nth == n {
            *fired = true;
            p.fired += 1;
            return Some(ev.action);
        }
    }
    None
}

fn injected(site: Site) -> io::Error {
    io::Error::other(format!("chaos: injected fault at {}", site.name()))
}

// ---------------------------------------------------------------------------
// File-I/O shim (store, checkpoints, replay buffer)
// ---------------------------------------------------------------------------

/// `File::open` for reading, with transient-open-failure injection.
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn open_read(path: &Path) -> io::Result<File> {
    if let Some(Action::Fail) = hit(Site::FsOpen) {
        return Err(injected(Site::FsOpen));
    }
    File::open(path)
}

/// `OpenOptions::create(true).append(true)`, with open-failure injection.
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn open_append(path: &Path) -> io::Result<File> {
    if let Some(Action::Fail) = hit(Site::FsOpen) {
        return Err(injected(Site::FsOpen));
    }
    std::fs::OpenOptions::new().create(true).append(true).open(path)
}

/// `File::create`, with open-failure injection.
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn create(path: &Path) -> io::Result<File> {
    if let Some(Action::Fail) = hit(Site::FsOpen) {
        return Err(injected(Site::FsOpen));
    }
    File::create(path)
}

/// Whole-file read with EINTR-style partial-read injection (the injected
/// truncation drops the tail, exactly what an interrupted read that was
/// never retried would have returned).
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn read_bytes(path: &Path) -> io::Result<Vec<u8>> {
    let mut f = open_read(path)?;
    let mut raw = Vec::new();
    f.read_to_end(&mut raw)?;
    match hit(Site::FsRead) {
        Some(Action::Fail) => return Err(injected(Site::FsRead)),
        Some(Action::Short(lost)) => {
            let keep = raw.len().saturating_sub(lost as usize);
            raw.truncate(keep);
        }
        Some(Action::Delay(ms)) => std::thread::sleep(Duration::from_millis(u64::from(ms))),
        _ => {}
    }
    Ok(raw)
}

/// [`read_bytes`] as lossy UTF-8 (checkpoint loads).
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn read_to_string(path: &Path) -> io::Result<String> {
    Ok(String::from_utf8_lossy(&read_bytes(path)?).into_owned())
}

/// `write_all` with short-write injection: on a short write the prefix
/// really is written (it may become durable — that is the point) and the
/// call errors like an interrupted syscall the caller never retried.
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn write_all(f: &mut File, buf: &[u8]) -> io::Result<()> {
    match hit(Site::FsWrite) {
        Some(Action::Fail) => Err(injected(Site::FsWrite)),
        Some(Action::Short(lost)) => {
            let keep = buf.len().saturating_sub(lost as usize);
            let _ = f.write_all(&buf[..keep]);
            Err(injected(Site::FsWrite))
        }
        Some(Action::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(u64::from(ms)));
            f.write_all(buf)
        }
        _ => f.write_all(buf),
    }
}

/// `sync_all` with torn-sync injection (the data was written; durability
/// was not promised) and delayed-visibility injection.
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn sync_all(f: &File) -> io::Result<()> {
    match hit(Site::FsSync) {
        Some(Action::Fail) => Err(injected(Site::FsSync)),
        Some(Action::Delay(ms) | Action::Stall(ms)) => {
            std::thread::sleep(Duration::from_millis(u64::from(ms)));
            f.sync_all()
        }
        _ => f.sync_all(),
    }
}

/// `fs::rename` with failure injection.
///
/// # Errors
///
/// The underlying I/O error, or an injected one.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    if let Some(Action::Fail) = hit(Site::FsRename) {
        return Err(injected(Site::FsRename));
    }
    std::fs::rename(from, to)
}

// ---------------------------------------------------------------------------
// Socket shim (service + fleet)
// ---------------------------------------------------------------------------

/// A network fault the socket paths must act out themselves (they own
/// the stream).
#[derive(Debug, Clone, Copy)]
pub enum NetFault {
    /// Cut the connection (mid-frame if bytes were already written).
    Reset,
    /// Write only the first part of the frame, then cut.
    Short(usize),
    /// Delay the operation, then proceed.
    Delay(Duration),
}

fn net_fault(site: Site) -> Option<NetFault> {
    match hit(site)? {
        Action::Reset | Action::Fail => Some(NetFault::Reset),
        Action::Short(lost) => Some(NetFault::Short(lost as usize)),
        Action::Delay(ms) | Action::Stall(ms) => {
            Some(NetFault::Delay(Duration::from_millis(u64::from(ms))))
        }
    }
}

/// Consulted once per line written to a service/fleet socket.
pub fn net_send_fault() -> Option<NetFault> {
    net_fault(Site::NetSend)
}

/// Consulted once per socket read attempt.
pub fn net_recv_fault() -> Option<NetFault> {
    net_fault(Site::NetRecv)
}

/// Consulted when a worker heartbeat is due; `Some(d)` means stay silent
/// (and stalled) for `d` instead of beating.
pub fn heartbeat_stall() -> Option<Duration> {
    match hit(Site::Heartbeat)? {
        Action::Stall(ms) | Action::Delay(ms) => Some(Duration::from_millis(u64::from(ms))),
        _ => Some(Duration::from_millis(300)),
    }
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

/// An intentionally planted harness bug, for proving the oracles catch
/// and the shrinker minimizes real accounting mistakes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bug {
    #[default]
    None,
    /// The store scenario claims a failed deposit as durable — the
    /// classic "ack before fsync" accounting bug.
    ClaimFailedDeposit,
}

/// Campaign parameters: `count` plans derived from `seed`, against one
/// scenario or (default) a store-heavy deterministic mix.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub seed: u64,
    pub count: usize,
    pub scenario: Option<Scenario>,
    pub bug: Bug,
}

/// One plan's verdict.
#[derive(Debug, Clone)]
pub struct PlanReport {
    pub index: usize,
    pub plan: FaultPlan,
    /// Oracle violations; empty means the plan passed.
    pub failures: Vec<String>,
}

/// A whole campaign's verdict.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub seed: u64,
    pub count: usize,
    pub passed: usize,
    pub failures: Vec<PlanReport>,
    /// FNV-1a over every plan's JSON and every oracle verdict — two runs
    /// of the same campaign must produce the same digest bit for bit.
    pub digest: u64,
}

/// The per-plan seed stream: independent of plan order evaluation.
fn plan_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut s = campaign_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// The default scenario mix: store plans are cheap, so they dominate;
/// serve and fleet plans exercise the network and process sites.
fn mixed_scenario(campaign_seed: u64, index: usize) -> Scenario {
    let mut s = campaign_seed.rotate_left(17) ^ (index as u64);
    match splitmix64(&mut s) % 16 {
        13 | 14 => Scenario::Serve,
        15 => Scenario::Fleet,
        _ => Scenario::Store,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Runs fault plans against real store/serve/fleet stacks and checks the
/// invariant oracles. Owns the process-wide [`ChaosSession`] for its
/// lifetime, so baselines and faulted runs cannot interleave with other
/// chaos users.
pub struct Harness {
    session: ChaosSession,
    bug: Bug,
    arch: arch::Arch,
    donor_mapping: mapping::Mapping,
    serve_baseline: Option<Vec<(String, String)>>,
    fleet_baseline: Option<String>,
    scratch_root: PathBuf,
    scratch_seq: usize,
}

/// The serve scenario's request set (deterministic searches).
const SERVE_REQUESTS: [&str; 2] = [
    "{\"id\": 100, \"op\": \"search\", \"problem\": \"GEMM;chaos0;B=2,M=16,K=16,N=16\", \
     \"mapper\": \"random\", \"samples\": 80, \"seed\": 5}",
    "{\"id\": 101, \"op\": \"search\", \"problem\": \"GEMM;chaos1;B=2,M=16,K=24,N=16\", \
     \"mapper\": \"random\", \"samples\": 80, \"seed\": 6}",
];

const FLEET_LAYERS: usize = 4;
const FLEET_SAMPLES: usize = 60;
const FLEET_SEED: u64 = 9;

fn fleet_layer_specs() -> Vec<String> {
    (0..FLEET_LAYERS).map(|i| format!("GEMM;cl{i};B=2,M=16,K={},N=16", 16 + 8 * (i % 3))).collect()
}

impl Harness {
    /// Acquires the chaos plane and prepares scenario fixtures.
    pub fn new(bug: Bug) -> Harness {
        let session = lock();
        let arch = arch::Arch::accel_b();
        let donor =
            problem::codec::from_spec("GEMM;chaosd;B=2,M=8,K=8,N=8").expect("donor spec parses");
        let donor_mapping = mapping::Mapping::trivial(&donor, &arch);
        let scratch_root =
            std::env::temp_dir().join(format!("mse-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch_root);
        Harness {
            session,
            bug,
            arch,
            donor_mapping,
            serve_baseline: None,
            fleet_baseline: None,
            scratch_root,
            scratch_seq: 0,
        }
    }

    fn scratch(&mut self, tag: &str) -> PathBuf {
        self.scratch_seq += 1;
        let dir = self.scratch_root.join(format!("{tag}-{}", self.scratch_seq));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create chaos scratch dir");
        dir
    }

    /// Runs one plan and returns its oracle violations (empty = pass).
    /// Must be called with the plane disarmed (it arms internally).
    pub fn run_plan(&mut self, plan: &FaultPlan) -> Vec<String> {
        match plan.scenario {
            Scenario::Store => self.run_store_plan(plan),
            Scenario::Serve => self.run_serve_plan(plan),
            Scenario::Fleet => self.run_fleet_plan(plan),
        }
    }

    /// Runs the campaign; failing plans are collected, not fatal, so the
    /// digest covers every verdict.
    pub fn run_campaign(
        &mut self,
        campaign: &Campaign,
        log: &mut dyn FnMut(&str),
    ) -> CampaignReport {
        self.bug = campaign.bug;
        let mut digest = fnv_fold(FNV_OFFSET, campaign.seed.to_le_bytes().as_slice());
        let mut passed = 0usize;
        let mut failures = Vec::new();
        for i in 0..campaign.count {
            let scenario = campaign.scenario.unwrap_or_else(|| mixed_scenario(campaign.seed, i));
            let plan = FaultPlan::generate(plan_seed(campaign.seed, i), scenario);
            let fails = self.run_plan(&plan);
            digest = fnv_fold(digest, plan.to_json().as_bytes());
            for f in &fails {
                digest = fnv_fold(digest, f.as_bytes());
            }
            if fails.is_empty() {
                passed += 1;
            } else {
                log(&format!(
                    "plan {i} ({}, seed {}) FAILED: {}",
                    scenario.name(),
                    plan.seed,
                    fails.join("; ")
                ));
                failures.push(PlanReport { index: i, plan, failures: fails });
            }
            if (i + 1) % 50 == 0 {
                log(&format!("{}/{} plans, {passed} passed", i + 1, campaign.count));
            }
        }
        let _ = std::fs::remove_dir_all(&self.scratch_root);
        CampaignReport { seed: campaign.seed, count: campaign.count, passed, failures, digest }
    }

    /// Delta-debugging (ddmin) over the failing plan's events: returns
    /// the smallest sub-plan that still violates an oracle.
    pub fn shrink(&mut self, plan: &FaultPlan) -> FaultPlan {
        let mut events = plan.events.clone();
        let still_fails = |h: &mut Harness, evs: &[FaultEvent]| -> bool {
            let candidate =
                FaultPlan { seed: plan.seed, scenario: plan.scenario, events: evs.to_vec() };
            !h.run_plan(&candidate).is_empty()
        };
        let mut n = 2usize;
        while events.len() >= 2 {
            let chunk = events.len().div_ceil(n);
            let mut reduced = false;
            let mut start = 0usize;
            while start < events.len() {
                let end = (start + chunk).min(events.len());
                let mut candidate = Vec::with_capacity(events.len() - (end - start));
                candidate.extend_from_slice(&events[..start]);
                candidate.extend_from_slice(&events[end..]);
                if !candidate.is_empty() && still_fails(self, &candidate) {
                    events = candidate;
                    n = 2.max(n - 1);
                    reduced = true;
                    break;
                }
                start = end;
            }
            if !reduced {
                if n >= events.len() {
                    break;
                }
                n = (n * 2).min(events.len());
            }
        }
        FaultPlan { seed: plan.seed, scenario: plan.scenario, events }
    }

    // -- store scenario -----------------------------------------------------

    fn run_store_plan(&mut self, plan: &FaultPlan) -> Vec<String> {
        let mut failures = Vec::new();
        let dir = self.scratch("store");
        let store_path = dir.join("chaos.store");
        let ck_path = dir.join("sweep.ckpt");
        let replay_path = dir.join("replay.buf");

        let store = match WarmStore::open(&store_path) {
            Ok(s) => s,
            Err(e) => return vec![format!("store-boot: fault-free open failed: {e}")],
        };

        // The replay fixture (and its fault-free byte image) before arming.
        let replay = ReplayBuffer::new();
        for i in 0..3 {
            let p = problem::codec::from_spec(&format!("GEMM;chaosr{i};B=2,M=8,K=8,N=8"))
                .expect("replay spec parses");
            replay.insert(p, self.donor_mapping.clone());
        }
        let mut replay_image: Vec<u8> = Vec::new();
        replay.save(&mut replay_image).expect("in-memory replay save");

        let fp = WarmStore::arch_fingerprint(&self.arch, None);
        let bug = self.bug;
        let armed = self.session.arm(plan);
        let phase = catch_unwind(AssertUnwindSafe(|| {
            store_phase(&store, &store_path, &ck_path, &replay, &replay_path, fp,
                        &self.donor_mapping, bug)
        }));
        drop(armed);
        let obs = match phase {
            Ok(o) => o,
            Err(payload) => {
                failures.push(format!(
                    "panic-escape: store phase panicked: {}",
                    crate::fault::panic_message(&*payload)
                ));
                let _ = std::fs::remove_dir_all(&dir);
                return failures;
            }
        };

        // Oracle: the store always loads after any fault interleaving.
        match WarmStore::open(&store_path) {
            Err(e) => failures.push(format!("store-load: reopen failed: {e}")),
            Ok(reopened) => {
                let present: HashSet<u64> =
                    reopened.records().iter().map(|r| r.evaluated).collect();
                for id in &obs.claimed {
                    if !present.contains(id) {
                        failures.push(format!(
                            "store-durability: deposit {id} was acknowledged durable but is \
                             missing after reopen"
                        ));
                    }
                }
                for id in &present {
                    if *id >= STORE_DEPOSITS {
                        failures.push(format!(
                            "store-integrity: phantom record {id} present after reopen"
                        ));
                    }
                }
                // Oracle: verify/compact heals any torn tail for good.
                let quarantined = reopened.stats().quarantined;
                if quarantined > 0 {
                    match reopened.compact() {
                        Err(e) => failures
                            .push(format!("store-heal: compaction after damage failed: {e}")),
                        Ok(_) => match WarmStore::verify(&store_path) {
                            Ok(v) if v.quarantined == 0 => {}
                            Ok(v) => failures.push(format!(
                                "store-heal: {} records still quarantined after compaction",
                                v.quarantined
                            )),
                            Err(e) => {
                                failures.push(format!("store-heal: verify failed: {e}"))
                            }
                        },
                    }
                }
            }
        }

        // Oracle: a checkpoint that was ever saved loads (primary or .bak
        // rescue) and equals one of the states that were saved.
        match SweepCheckpoint::load(&ck_path) {
            Ok(loaded) => {
                let j = loaded.canonical().to_json();
                if obs.saved_b {
                    if j != obs.ckpt_b_json {
                        failures.push(
                            "checkpoint-content: loaded state is not the last saved state"
                                .to_string(),
                        );
                    }
                } else if j != obs.ckpt_a_json && j != obs.ckpt_b_json {
                    failures.push(
                        "checkpoint-content: loaded state matches no saved state".to_string(),
                    );
                }
            }
            Err(e) => {
                if obs.saved_a || obs.saved_b {
                    failures.push(format!(
                        "checkpoint-load: a successfully saved checkpoint failed to load: {e}"
                    ));
                }
            }
        }

        // Oracle: the replay file is always a valid prefix of what was
        // saved; a successful save must round-trip completely.
        let fresh = ReplayBuffer::new();
        match fresh.load_from_path(&replay_path) {
            Ok(_) => {
                let mut reloaded_image: Vec<u8> = Vec::new();
                fresh.save(&mut reloaded_image).expect("in-memory replay save");
                if !replay_image.starts_with(&reloaded_image) {
                    failures.push(
                        "replay-prefix: reloaded entries are not a prefix of the saved buffer"
                            .to_string(),
                    );
                } else if obs.replay_saved && reloaded_image != replay_image {
                    failures.push(
                        "replay-durability: a successful save did not round-trip completely"
                            .to_string(),
                    );
                }
            }
            Err(e) => {
                if obs.replay_saved {
                    failures
                        .push(format!("replay-load: a successfully saved buffer failed: {e}"));
                }
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
        failures
    }

    // -- serve scenario -----------------------------------------------------

    fn serve_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            eval: EvalConfig { threads: 1, cache_capacity: 1 << 12 },
            ..ServeConfig::default()
        }
    }

    fn ensure_serve_baseline(&mut self) -> Result<Vec<(String, String)>, String> {
        if let Some(b) = &self.serve_baseline {
            return Ok(b.clone());
        }
        let daemon = serve(Self::serve_config())
            .map_err(|e| format!("serve-boot: baseline daemon failed to bind: {e}"))?;
        let addr = daemon.local_addr();
        let mut baseline = Vec::new();
        for line in SERVE_REQUESTS {
            let v = wire_request(addr, line, 6, Duration::from_secs(30))
                .ok_or("serve-boot: baseline request never answered")?;
            if v.get("ok").and_then(json::Value::as_bool) != Some(true) {
                return Err(format!("serve-boot: baseline request failed: {}", v.to_text()));
            }
            baseline.push(response_identity(&v));
        }
        daemon.drain();
        daemon.join();
        self.serve_baseline = Some(baseline.clone());
        Ok(baseline)
    }

    fn run_serve_plan(&mut self, plan: &FaultPlan) -> Vec<String> {
        let baseline = match self.ensure_serve_baseline() {
            Ok(b) => b,
            Err(e) => return vec![e],
        };
        let mut failures = Vec::new();
        let daemon = match serve(Self::serve_config()) {
            Ok(d) => d,
            Err(e) => return vec![format!("serve-boot: daemon failed to bind: {e}")],
        };
        let addr = daemon.local_addr();
        let armed = self.session.arm(plan);
        let responses: Vec<Option<json::Value>> = SERVE_REQUESTS
            .iter()
            .map(|line| wire_request(addr, line, 12, Duration::from_secs(30)))
            .collect();
        drop(armed);
        daemon.drain();
        let stats = daemon.join();

        if stats.request_panics != 0 {
            failures.push(format!(
                "no-panic: {} request handler panic(s) under fault",
                stats.request_panics
            ));
        }
        if stats.accepted != stats.completed {
            failures.push(format!(
                "exactly-once: accepted {} != completed {}",
                stats.accepted, stats.completed
            ));
        }
        for (i, r) in responses.iter().enumerate() {
            match r {
                None => failures.push(format!(
                    "bounded-recovery: request {i} never got an ok answer within the retry \
                     budget"
                )),
                Some(v) => {
                    let got = response_identity(v);
                    if got != baseline[i] {
                        failures.push(format!(
                            "bit-identical: request {i} diverged from the fault-free run: got \
                             ({}, {}), want ({}, {})",
                            got.0, got.1, baseline[i].0, baseline[i].1
                        ));
                    }
                }
            }
        }
        failures
    }

    // -- fleet scenario -----------------------------------------------------

    fn chaos_fleet() -> FleetConfig {
        FleetConfig {
            heartbeat_ms: 60,
            lease_ms: 400,
            steal_after_ms: 10_000,
            shard_slots: 2,
            reconnect_max_ms: 200,
            shard_retries: 3,
            shard_delay_ms: 0,
        }
    }

    fn coordinator_config(dir: &Path) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            eval: EvalConfig { threads: 1, cache_capacity: 1 << 12 },
            role: ServeRole::Coordinator,
            fleet: Self::chaos_fleet(),
            checkpoint_dir: Some(dir.to_path_buf()),
            ..ServeConfig::default()
        }
    }

    fn worker_config(coordinator: SocketAddr) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            eval: EvalConfig { threads: 1, cache_capacity: 1 << 12 },
            role: ServeRole::Worker { coordinator: coordinator.to_string() },
            // Workers dawdle per shard so kills land mid-sweep, not after
            // the sweep already finished (requires `fault_injection`).
            fault_injection: true,
            fleet: FleetConfig { shard_delay_ms: 80, ..Self::chaos_fleet() },
            ..ServeConfig::default()
        }
    }

    /// The single-process ground truth, mirrored from the fleet tests:
    /// same guard, mapper, seeds, and thread count the daemon shards use.
    fn ensure_fleet_baseline(&mut self) -> Result<String, String> {
        if let Some(b) = &self.fleet_baseline {
            return Ok(b.clone());
        }
        let dir = self.scratch("fleet-ref");
        let problems: Vec<Problem> = fleet_layer_specs()
            .iter()
            .map(|l| problem::codec::from_spec(l).expect("layer spec parses"))
            .collect();
        let arch = self.arch.clone();
        let arch_for_model = arch.clone();
        let make_model = move |p: &Problem| -> Box<dyn CostModel> {
            let dense = DenseModel::new(p.clone(), arch_for_model.clone());
            Box::new(GuardedModel::new(Box::new(dense), GuardConfig::new(GuardPolicy::Reject)))
        };
        let make_mapper = || -> Box<dyn Mapper> { Box::new(RandomMapper::new()) };
        let path = dir.join("reference.ckpt");
        crate::runtime::run_network_checkpointed_parallel(
            &problems,
            &arch,
            &ReplayBuffer::new(),
            InitStrategy::Random,
            Budget::samples(FLEET_SAMPLES),
            FLEET_SEED,
            1,
            make_model,
            make_mapper,
            &path,
            false,
        )
        .map_err(|e| format!("fleet-boot: reference sweep failed: {e}"))?;
        let ckpt = SweepCheckpoint::load(&path)
            .map_err(|e| format!("fleet-boot: reference checkpoint unreadable: {e}"))?;
        let json = ckpt.canonical().to_json();
        let _ = std::fs::remove_dir_all(&dir);
        self.fleet_baseline = Some(json.clone());
        Ok(json)
    }

    fn run_fleet_plan(&mut self, plan: &FaultPlan) -> Vec<String> {
        let baseline = match self.ensure_fleet_baseline() {
            Ok(b) => b,
            Err(e) => return vec![e],
        };
        let mut failures = Vec::new();
        let dir = self.scratch("fleet");
        let layers = fleet_layer_specs();

        let mut coordinator = match serve(Self::coordinator_config(&dir)) {
            Ok(c) => Some(c),
            Err(e) => return vec![format!("fleet-boot: coordinator failed to bind: {e}")],
        };
        let mut addr = coordinator.as_ref().map(ServerHandle::local_addr).expect("addr");
        let mut workers: Vec<ServerHandle> = Vec::new();
        match serve(Self::worker_config(addr)) {
            Ok(w) => workers.push(w),
            Err(e) => {
                failures.push(format!("fleet-boot: worker failed to bind: {e}"));
                if let Some(c) = coordinator.take() {
                    c.kill();
                }
                return failures;
            }
        }
        if !wait_for_workers(addr, 1) {
            failures.push("fleet-boot: worker never registered (fault-free)".to_string());
        }

        let armed = self.session.arm(plan);
        let sweep_line = fleet_sweep_line(1, &layers, false);
        let client = {
            let line = sweep_line.clone();
            std::thread::spawn(move || wire_request(addr, &line, 1, Duration::from_secs(60)))
        };
        let mut coordinator_killed = false;
        match plan.kill_event() {
            Some((Site::KillWorker, delay)) => {
                std::thread::sleep(Duration::from_millis(delay));
                if let Some(w) = workers.pop() {
                    w.kill();
                }
                // Restart: a replacement registers and takes over shards
                // the lease re-dispatches.
                if let Ok(w) = serve(Self::worker_config(addr)) {
                    workers.push(w);
                }
            }
            Some((Site::KillCoordinator, delay)) => {
                std::thread::sleep(Duration::from_millis(delay));
                if let Some(c) = coordinator.take() {
                    c.kill();
                }
                coordinator_killed = true;
            }
            _ => {}
        }
        let first = client.join().unwrap_or(None);

        // Recovery: reboot a killed coordinator on the same checkpoint
        // directory (fresh port), re-point a worker at it, and resume.
        let mut response = first;
        if coordinator_killed {
            for w in workers.drain(..) {
                w.kill();
            }
            match serve(Self::coordinator_config(&dir)) {
                Ok(c) => {
                    addr = c.local_addr();
                    coordinator = Some(c);
                }
                Err(e) => failures.push(format!("bounded-recovery: coordinator reboot: {e}")),
            }
            if coordinator.is_some() {
                if let Ok(w) = serve(Self::worker_config(addr)) {
                    workers.push(w);
                }
                wait_for_workers(addr, 1);
                response = wire_request(
                    addr,
                    &fleet_sweep_line(2, &layers, true),
                    4,
                    Duration::from_secs(60),
                );
            }
        } else if response
            .as_ref()
            .is_none_or(|v| v.get("ok").and_then(json::Value::as_bool) != Some(true))
        {
            // A transient failure (e.g. checkpoint-io under an injected
            // fault) is retried once with resume, like a real client.
            response =
                wire_request(addr, &fleet_sweep_line(3, &layers, true), 4, Duration::from_secs(60));
        }
        drop(armed);

        match &response {
            Some(v) if v.get("ok").and_then(json::Value::as_bool) == Some(true) => {
                let total = v.get("layers_total").and_then(json::Value::as_u64);
                if total != Some(layers.len() as u64) {
                    failures.push(format!(
                        "exactly-once: sweep answered {total:?} layers, want {}",
                        layers.len()
                    ));
                }
            }
            Some(v) => failures.push(format!(
                "bounded-recovery: sweep never succeeded: {}",
                v.to_text()
            )),
            None => failures
                .push("bounded-recovery: sweep got no answer within the retry budget".to_string()),
        }

        // Oracle: the checkpoint on disk is bit-identical to the
        // fault-free single-process run — kills, lease expiries, and
        // re-dispatch never change the result.
        match SweepCheckpoint::load(&dir.join("chaos.ckpt")) {
            Ok(ckpt) => {
                let got = ckpt.canonical().to_json();
                let names: Vec<&str> =
                    ckpt.layers.iter().map(|l| l.name.as_str()).collect();
                let distinct: HashSet<&str> = names.iter().copied().collect();
                if distinct.len() != names.len() {
                    failures.push("exactly-once: duplicate layer in checkpoint".to_string());
                }
                if got != baseline {
                    failures.push(
                        "bit-identical: fleet checkpoint diverged from the fault-free run"
                            .to_string(),
                    );
                }
            }
            Err(e) => failures.push(format!("checkpoint-load: fleet checkpoint: {e}")),
        }

        // The surviving coordinator's accounting (skipped when it was
        // killed: its counters died with it).
        for w in workers.drain(..) {
            w.kill();
        }
        if let Some(c) = coordinator.take() {
            if coordinator_killed {
                c.kill();
            } else {
                c.drain();
                let stats = c.join();
                if stats.request_panics != 0 {
                    failures.push(format!(
                        "no-panic: {} coordinator panic(s) under fault",
                        stats.request_panics
                    ));
                }
                if stats.accepted != stats.completed {
                    failures.push(format!(
                        "exactly-once: coordinator accepted {} != completed {}",
                        stats.accepted, stats.completed
                    ));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        failures
    }
}

/// How many deposits the store scenario attempts (ids `0..STORE_DEPOSITS`).
const STORE_DEPOSITS: u64 = 10;

struct StoreObs {
    /// Ids the harness believes are durable (deposit acked, adjusted for
    /// compaction failures) — the exactly-once "claimed" set.
    claimed: Vec<u64>,
    saved_a: bool,
    saved_b: bool,
    ckpt_a_json: String,
    ckpt_b_json: String,
    replay_saved: bool,
}

/// The armed portion of the store scenario: deposits with a mid-stream
/// compaction, two checkpoint saves, a replay-buffer save, plus armed
/// re-loads of everything (whose *only* obligation is to not panic).
#[allow(clippy::too_many_arguments)]
fn store_phase(
    store: &WarmStore,
    store_path: &Path,
    ck_path: &Path,
    replay: &ReplayBuffer,
    replay_path: &Path,
    fp: u64,
    donor_mapping: &mapping::Mapping,
    bug: Bug,
) -> StoreObs {
    let mut claimed = Vec::new();
    for i in 0..STORE_DEPOSITS {
        let p = problem::codec::from_spec(&format!("GEMM;chaos{i};B=2,M=8,K=8,N=8"))
            .expect("deposit spec parses");
        match store.deposit(fp, &p, donor_mapping, "gamma", 10.0 + i as f64, i) {
            Ok(()) => claimed.push(i),
            Err(_) => {
                if bug == Bug::ClaimFailedDeposit {
                    // The planted accounting bug: acknowledge a deposit
                    // whose write/sync failed as if it were durable.
                    claimed.push(i);
                }
            }
        }
        if i == 5 {
            // All keys are distinct and far under the caps, so a clean
            // compaction drops nothing; a failed one may leave any state,
            // so the harness conservatively un-claims everything.
            if store.compact().is_err() {
                claimed.clear();
            }
            // Armed re-load: exercises open/read faults; must not panic.
            let _ = WarmStore::open(store_path);
        }
    }

    let layer = |n: usize| crate::runtime::LayerCheckpoint {
        name: format!("chaos-l{n}"),
        init_score: 2.0,
        best_score: 1.0 + n as f64,
        converge_sample: 10,
        evaluated: 50,
        elapsed_secs: 0.0,
        mapping: Some(mapping::codec::to_spec(donor_mapping)),
        latency_cycles: 100.0,
        energy_uj: 0.5,
    };
    let mut ckpt_a = SweepCheckpoint::new(7, InitStrategy::Random, Budget::samples(50));
    ckpt_a.layers.push(layer(0));
    let mut ckpt_b = ckpt_a.clone();
    ckpt_b.layers.push(layer(1));
    let saved_a = ckpt_a.save(ck_path).is_ok();
    let saved_b = ckpt_b.save(ck_path).is_ok();
    // Armed re-load: partial reads / torn tails must never panic.
    let _ = SweepCheckpoint::load(ck_path);

    let replay_saved = replay.save_to_path(replay_path).is_ok();
    let _ = ReplayBuffer::new().load_from_path(replay_path);

    StoreObs {
        claimed,
        saved_a,
        saved_b,
        ckpt_a_json: ckpt_a.canonical().to_json(),
        ckpt_b_json: ckpt_b.canonical().to_json(),
        replay_saved,
    }
}

/// `(mapping, score)` as raw response text — the bit-identity fingerprint
/// of a search response.
fn response_identity(v: &json::Value) -> (String, String) {
    (
        v.get("mapping").map_or_else(|| "null".to_string(), json::Value::to_text),
        v.get("score").map_or_else(|| "null".to_string(), json::Value::to_text),
    )
}

/// A retrying JSON-lines client. Chaos-free by construction (client
/// sockets are not shimmed): every fault it observes is daemon-side.
/// Returns the first `ok: true` response, or the last permanent error
/// response, or `None` if every attempt died on the wire.
fn wire_request(
    addr: SocketAddr,
    line: &str,
    attempts: usize,
    timeout: Duration,
) -> Option<json::Value> {
    let mut last: Option<json::Value> = None;
    for attempt in 0..attempts {
        if let Some(v) = wire_request_once(addr, line, timeout) {
            if v.get("ok").and_then(json::Value::as_bool) == Some(true) {
                return Some(v);
            }
            let transient = v
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(json::Value::as_str)
                == Some("transient");
            last = Some(v);
            if !transient {
                return last;
            }
        }
        std::thread::sleep(Duration::from_millis(15 * (attempt as u64 + 1)));
    }
    last
}

fn wire_request_once(addr: SocketAddr, line: &str, timeout: Duration) -> Option<json::Value> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.write_all(line.as_bytes()).and_then(|()| stream.write_all(b"\n")).ok()?;
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).ok()?;
    if resp.trim().is_empty() {
        return None;
    }
    json::parse(&resp).ok()
}

/// Polls `health` until `n` workers are registered. Tolerant of wire
/// faults (each poll is independent). Returns whether it got there.
fn wait_for_workers(addr: SocketAddr, n: u64) -> bool {
    for _ in 0..200 {
        if let Some(v) = wire_request_once(addr, "{\"id\": 0, \"op\": \"health\"}", Duration::from_secs(5))
        {
            if v.get("workers_connected").and_then(json::Value::as_u64) == Some(n) {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

fn fleet_sweep_line(id: usize, layers: &[String], resume: bool) -> String {
    let quoted: Vec<String> = layers.iter().map(|l| json::escape(l)).collect();
    let mut line = format!(
        "{{\"id\": {id}, \"op\": \"sweep\", \"layers\": [{}], \"mapper\": \"random\", \
         \"samples\": {FLEET_SAMPLES}, \"seed\": {FLEET_SEED}, \"checkpoint\": \"chaos.ckpt\"",
        quoted.join(", ")
    );
    if resume {
        line.push_str(", \"resume\": true");
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Pinned so plans can never drift across platforms or releases.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn plans_are_deterministic_and_roundtrip_json() {
        for seed in [0u64, 1, 42, u64::MAX, 0x1234_5678_9abc_def0] {
            for scenario in [Scenario::Store, Scenario::Serve, Scenario::Fleet] {
                let a = FaultPlan::generate(seed, scenario);
                let b = FaultPlan::generate(seed, scenario);
                assert_eq!(a, b, "generation must be pure in (seed, scenario)");
                assert!(!a.events.is_empty() && a.events.len() <= 4);
                let back = FaultPlan::from_json(&a.to_json()).expect("roundtrip");
                assert_eq!(a, back, "JSON codec must be lossless");
                assert!(
                    a.events.iter().filter(|e| e.site.is_process()).count() <= 1,
                    "at most one process event per plan"
                );
            }
        }
    }

    #[test]
    fn hooks_are_passthrough_when_disarmed() {
        assert!(!armed());
        assert!(net_send_fault().is_none());
        assert!(net_recv_fault().is_none());
        assert!(heartbeat_stall().is_none());
    }

    #[test]
    fn events_fire_once_at_their_nth_op() {
        let session = lock();
        let plan = FaultPlan {
            seed: 1,
            scenario: Scenario::Store,
            events: vec![
                FaultEvent { site: Site::FsSync, nth: 2, action: Action::Fail },
                FaultEvent { site: Site::NetSend, nth: 0, action: Action::Reset },
            ],
        };
        let armed_plan = session.arm(&plan);
        assert!(hit(Site::FsSync).is_none(), "op 0 passes");
        assert!(hit(Site::FsSync).is_none(), "op 1 passes");
        assert_eq!(hit(Site::FsSync), Some(Action::Fail), "op 2 fires");
        assert!(hit(Site::FsSync).is_none(), "events are one-shot");
        assert!(matches!(net_send_fault(), Some(NetFault::Reset)));
        assert!(net_send_fault().is_none());
        assert_eq!(armed_plan.fired(), 2);
        drop(armed_plan);
        assert!(hit(Site::FsSync).is_none(), "disarmed after drop");
    }

    #[test]
    fn shrink_finds_the_single_guilty_event() {
        // A synthetic predicate: failure iff the plan still contains the
        // guilty (FsWrite, nth 3) event. ddmin must strip all decoys.
        let guilty = FaultEvent { site: Site::FsWrite, nth: 3, action: Action::Fail };
        let mut events = vec![guilty];
        for i in 0..7u32 {
            events.push(FaultEvent { site: Site::FsSync, nth: i, action: Action::Fail });
        }
        let plan = FaultPlan { seed: 9, scenario: Scenario::Store, events };
        // Reuse the ddmin loop via a local copy of the algorithm to keep
        // the test independent of scenario runtimes.
        let fails = |p: &FaultPlan| p.events.contains(&guilty);
        let mut cur = plan.events.clone();
        let mut n = 2usize;
        while cur.len() >= 2 {
            let chunk = cur.len().div_ceil(n);
            let mut reduced = false;
            let mut start = 0usize;
            while start < cur.len() {
                let end = (start + chunk).min(cur.len());
                let mut cand = Vec::new();
                cand.extend_from_slice(&cur[..start]);
                cand.extend_from_slice(&cur[end..]);
                if !cand.is_empty()
                    && fails(&FaultPlan { seed: 9, scenario: Scenario::Store, events: cand.clone() })
                {
                    cur = cand;
                    n = 2.max(n - 1);
                    reduced = true;
                    break;
                }
                start = end;
            }
            if !reduced {
                if n >= cur.len() {
                    break;
                }
                n = (n * 2).min(cur.len());
            }
        }
        assert_eq!(cur, vec![guilty], "ddmin reduced to exactly the guilty event");
    }
}
