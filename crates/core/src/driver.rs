//! The MSE driver: the outer loop of Fig. 2 binding a workload, an
//! accelerator, a cost model, a mapper, and a budget.

use costmodel::CostModel;
use mappers::{Budget, EdpEvaluator, Evaluator, Mapper, SearchResult};
use mapping::MapSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One map-space exploration run for a single workload.
#[derive(Clone)]
pub struct Mse<'a> {
    model: &'a dyn CostModel,
}

impl<'a> Mse<'a> {
    /// Binds the driver to a cost model (which carries the workload and
    /// accelerator).
    pub fn new(model: &'a dyn CostModel) -> Self {
        Mse { model }
    }

    /// The cost model the driver is bound to.
    pub fn model(&self) -> &'a dyn CostModel {
        self.model
    }

    /// The map space being explored.
    pub fn space(&self) -> MapSpace {
        MapSpace::new(self.model.problem().clone(), self.model.arch().clone())
    }

    /// Runs `mapper` with the default EDP objective.
    pub fn run(&self, mapper: &dyn Mapper, budget: Budget, seed: u64) -> SearchResult {
        let evaluator = EdpEvaluator::new(self.model);
        self.run_with_evaluator(mapper, &evaluator, budget, seed)
    }

    /// Runs `mapper` with a custom objective (e.g. the sparsity-aware
    /// density-sweep evaluator).
    pub fn run_with_evaluator(
        &self,
        mapper: &dyn Mapper,
        evaluator: &dyn Evaluator,
        budget: Budget,
        seed: u64,
    ) -> SearchResult {
        let space = self.space();
        let mut rng = SmallRng::seed_from_u64(seed);
        mapper.search(&space, evaluator, budget, &mut rng)
    }
}

impl Mse<'_> {
    /// Runs a *portfolio* of mappers on the same budget and returns the
    /// results ordered best-first. Different mapper families win on
    /// different workloads (the whole point of §4.3), so production
    /// deployments commonly race a small portfolio and keep the winner.
    pub fn run_portfolio(
        &self,
        mappers: &[&dyn Mapper],
        budget: Budget,
        seed: u64,
    ) -> Vec<(String, SearchResult)> {
        let mut out: Vec<(String, SearchResult)> = mappers
            .iter()
            .map(|m| (m.name().to_string(), self.run(*m, budget, seed)))
            .collect();
        // NaN-safe: a poisoned score sorts last instead of panicking the
        // whole portfolio (see `mappers::score_cmp`).
        out.sort_by(|a, b| mappers::score_cmp(a.1.best_score, b.1.best_score));
        out
    }
}

/// Sample index at which a search reached `frac` (e.g. 0.995) of its total
/// improvement — the paper's time-to-converge metric (§5.1.3: "we define
/// time-to-converge as the time to reach 99.5% of performance
/// improvement"). A flat history (e.g. a warm-started search that opened at
/// its final quality) converges at its first evaluated sample.
pub fn convergence_sample(result: &SearchResult, frac: f64) -> usize {
    let Some(first) = result.history.first() else {
        return result.evaluated;
    };
    let init = first.best_score;
    let fin = result.best_score;
    if !(init.is_finite() && fin.is_finite()) || init <= fin {
        return first.samples;
    }
    let threshold = init - frac * (init - fin);
    result
        .history
        .iter()
        .find(|p| p.best_score <= threshold)
        .map(|p| p.samples)
        .unwrap_or(result.evaluated)
}

/// First sample index at which the search's best-so-far dropped to
/// `target` or below; `None` if it never did. This is the metric behind
/// the paper's warm-start headline ("converge *to a similar performance
/// point* 3.3x-7.3x faster"): pick a common target score and compare how
/// many samples each run needed to reach it.
pub fn samples_to_reach(result: &SearchResult, target: f64) -> Option<usize> {
    result.history.iter().find(|p| p.best_score <= target).map(|p| p.samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use costmodel::DenseModel;
    use mappers::{ConvergencePoint, Gamma, RandomPruned};
    use problem::Problem;

    fn model() -> DenseModel {
        DenseModel::new(Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3), Arch::accel_b())
    }

    #[test]
    fn run_is_reproducible() {
        let m = model();
        let mse = Mse::new(&m);
        let a = mse.run(&RandomPruned::new(), Budget::samples(100), 42).best_score;
        let b = mse.run(&RandomPruned::new(), Budget::samples(100), 42).best_score;
        assert_eq!(a, b);
    }

    #[test]
    fn gamma_run_returns_legal_best() {
        let m = model();
        let mse = Mse::new(&m);
        let r = mse.run(&Gamma::new(), Budget::samples(300), 0);
        let (best, cost) = r.best.unwrap();
        assert!(best.is_legal(m.problem(), m.arch()));
        assert!((cost.edp() - r.best_score).abs() < 1e-9);
    }

    #[test]
    fn portfolio_orders_results_best_first() {
        let m = model();
        let mse = Mse::new(&m);
        let gamma = Gamma::new();
        let random = RandomPruned::new();
        let mappers: Vec<&dyn Mapper> = vec![&random, &gamma];
        let results = mse.run_portfolio(&mappers, Budget::samples(400), 1);
        assert_eq!(results.len(), 2);
        assert!(results[0].1.best_score <= results[1].1.best_score);
        // Each entry carries the mapper's name.
        let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"Gamma") && names.contains(&"Random-Pruned"));
    }

    #[test]
    fn convergence_sample_hits_threshold() {
        let mut r = SearchResult {
            best: None,
            best_score: 10.0,
            history: vec![
                ConvergencePoint { samples: 1, seconds: 0.0, best_score: 1000.0 },
                ConvergencePoint { samples: 10, seconds: 0.0, best_score: 100.0 },
                ConvergencePoint { samples: 50, seconds: 0.0, best_score: 11.0 },
                ConvergencePoint { samples: 200, seconds: 0.0, best_score: 10.0 },
            ],
            samples: vec![],
            pareto: vec![],
            evaluated: 200,
            pruned: 0,
            elapsed: std::time::Duration::ZERO,
            cache: mappers::CacheStats::default(),
        };
        // 99.5% of the 990 improvement → threshold 1000 - 985.05 = 14.95.
        assert_eq!(convergence_sample(&r, 0.995), 50);
        // Flat history converges at its first evaluated sample.
        r.history.truncate(1);
        r.best_score = 1000.0;
        assert_eq!(convergence_sample(&r, 0.995), 1);
        // samples_to_reach uses an absolute target.
        assert_eq!(samples_to_reach(&r, 1000.0), Some(1));
        assert_eq!(samples_to_reach(&r, 10.0), None);
    }
}
