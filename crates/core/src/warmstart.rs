//! Warm-start MSE (§5.1): initialize the mapper with the optimized mapping
//! of the most similar previously seen workload, scaled to the new tensor
//! shape.
//!
//! The replay buffer stores `(workload, optimized mapping)` pairs. For a
//! new workload, similarity is the *editing distance* between dimension
//! vectors ([`problem::Problem::edit_distance`]); the chosen mapping's
//! order and parallelization are inherited and its tile sizes rescaled
//! ([`mapping::Mapping::scale_to`]).

use arch::Arch;
use costmodel::CostModel;
use mappers::{Budget, Mapper, SearchResult};
use mapping::Mapping;
use problem::Problem;
use std::sync::RwLock;

use crate::driver::{convergence_sample, Mse};

/// Schema version written by [`ReplayBuffer::save`]. Bump on any change to
/// the line format; older binaries then skip the file gracefully instead of
/// misparsing it.
pub const REPLAY_FORMAT_VERSION: u32 = 1;
/// Header-line prefix; the version number follows immediately.
const REPLAY_HEADER_PREFIX: &str = "#mapex-replay v";

/// How the mapper is initialized for each new workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Default random initialization.
    Random,
    /// Warm-start from the most recently optimized workload (the paper's
    /// "warm-start by previous layers", Fig. 9 red bars).
    PreviousLayer,
    /// Warm-start from the highest-similarity workload in the replay
    /// buffer (the paper's full proposal, Fig. 9 yellow bars).
    BySimilarity,
}

/// Thread-safe replay buffer of optimized mappings.
#[derive(Debug, Default)]
pub struct ReplayBuffer {
    entries: RwLock<Vec<(Problem, Mapping)>>,
}

impl ReplayBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        ReplayBuffer::default()
    }

    /// Poison-tolerant read guard: a panic in another thread that held the
    /// lock (e.g. an isolated mapper panic, see `mse::runtime`) must not
    /// take the replay buffer down with it — entries are plain data and
    /// every write is a single `push`, so the state is always consistent.
    fn entries_read(&self) -> std::sync::RwLockReadGuard<'_, Vec<(Problem, Mapping)>> {
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Poison-tolerant write guard (see [`ReplayBuffer::entries_read`]).
    fn entries_write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<(Problem, Mapping)>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Stores the optimized mapping for a finished workload.
    pub fn insert(&self, problem: Problem, mapping: Mapping) {
        self.entries_write().push((problem, mapping));
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries_read().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries_read().is_empty()
    }

    /// The most recently stored entry.
    pub fn last(&self) -> Option<(Problem, Mapping)> {
        self.entries_read().last().cloned()
    }

    /// The entry with the smallest editing distance to `p` (ties broken
    /// toward the most recent), with that distance.
    pub fn most_similar(&self, p: &Problem) -> Option<(Problem, Mapping, usize)> {
        let entries = self.entries_read();
        entries
            .iter()
            .enumerate()
            .map(|(i, (q, m))| (q.edit_distance(p), std::cmp::Reverse(i), q, m))
            .min_by_key(|&(d, i, _, _)| (d, i))
            .map(|(d, _, q, m)| (q.clone(), m.clone(), d))
    }

    /// Serializes the buffer, a `#mapex-replay v1` schema header followed by
    /// one `problem-spec<TAB>mapping-spec` line per entry, so a deployment
    /// can persist optimized mappings across runs (the compile-time MSE use
    /// case of §3).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "{}{}", REPLAY_HEADER_PREFIX, REPLAY_FORMAT_VERSION)?;
        for (p, m) in self.entries_read().iter() {
            writeln!(w, "{}\t{}", problem::codec::to_spec(p), mapping::codec::to_spec(m))?;
        }
        Ok(())
    }

    /// Persists the buffer to `path` via the chaos-routed file shims, with
    /// an fsync before returning so a torn write is confined to the tail
    /// (the valid-prefix property [`ReplayBuffer::load`] relies on).
    ///
    /// # Errors
    ///
    /// Propagates I/O (or injected-fault) errors; the file may hold a
    /// partial prefix on error, which the loader tolerates.
    pub fn save_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = crate::chaos::create(path)?;
        let mut buf = Vec::new();
        self.save(&mut buf)?;
        crate::chaos::write_all(&mut f, &buf)?;
        crate::chaos::sync_all(&f)
    }

    /// Loads entries from `path` (written by [`ReplayBuffer::save_to_path`])
    /// through the chaos-routed read shim. Returns the number of entries
    /// appended; malformed lines — including a torn final line — are
    /// skipped, never a panic.
    ///
    /// # Errors
    ///
    /// Propagates I/O (or injected-fault) errors from the read.
    pub fn load_from_path(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let raw = crate::chaos::read_bytes(path)?;
        self.load(raw.as_slice())
    }

    /// Loads entries previously written by [`ReplayBuffer::save`],
    /// appending them to this buffer. Malformed lines are skipped; returns
    /// the number of entries loaded. Versioning: a `#mapex-replay vN` header
    /// with `N` beyond this binary's [`REPLAY_FORMAT_VERSION`] stops the
    /// load gracefully (zero new entries, no error) — a newer format must
    /// not be misparsed line by line. Headerless streams load as the
    /// original v0 format, and other `#` lines are skipped as comments.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `r`.
    pub fn load<R: std::io::BufRead>(&self, r: R) -> std::io::Result<usize> {
        let mut n = 0;
        for line in r.lines() {
            let line = line?;
            if let Some(rest) = line.strip_prefix(REPLAY_HEADER_PREFIX) {
                match rest.trim().parse::<u32>() {
                    Ok(v) if v <= REPLAY_FORMAT_VERSION => continue,
                    _ => return Ok(n),
                }
            }
            if line.starts_with('#') {
                continue;
            }
            let Some((pspec, mspec)) = line.split_once('\t') else { continue };
            let (Ok(p), Ok(m)) =
                (problem::codec::from_spec(pspec), mapping::codec::from_spec(mspec))
            else {
                continue;
            };
            self.insert(p, m);
            n += 1;
        }
        Ok(n)
    }

    /// Produces the warm-start seed for `p` under `strategy`: the selected
    /// stored mapping with inherited order/parallelism and rescaled tiles.
    /// `None` when the buffer is empty, the strategy is
    /// [`InitStrategy::Random`], or scaling fails.
    pub fn seed_for(&self, p: &Problem, arch: &Arch, strategy: InitStrategy) -> Option<Mapping> {
        let (source_problem, source_mapping) = match strategy {
            InitStrategy::Random => return None,
            InitStrategy::PreviousLayer => self.last()?,
            InitStrategy::BySimilarity => {
                let (q, m, _) = self.most_similar(p)?;
                (q, m)
            }
        };
        source_mapping.scale_to(&source_problem, p, arch)
    }
}

/// Per-layer outcome of a warm-start network run.
#[derive(Debug, Clone)]
pub struct LayerOutcome {
    /// Workload name.
    pub name: String,
    /// EDP of the warm-start (or random) initialization point.
    pub init_score: f64,
    /// Full search result.
    pub result: SearchResult,
    /// Sample index reaching 99.5% of the improvement (the paper's
    /// convergence metric, reported as generations in Fig. 11).
    pub converge_sample: usize,
}

/// Runs MSE over a sequence of workloads (the layers of one DNN), feeding
/// each optimized mapping back into `buffer` and seeding each search per
/// `strategy`. `make_model` binds a cost model per layer; `make_mapper`
/// builds a fresh mapper per layer (so seeds do not leak across layers).
#[allow(clippy::too_many_arguments)] // mirrors the sweep's full parameter surface
pub fn run_network<'m, M, F>(
    layers: &[Problem],
    arch: &Arch,
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    make_model: M,
    make_mapper: F,
) -> Vec<LayerOutcome>
where
    M: FnMut(&Problem) -> Box<dyn CostModel + 'm>,
    F: FnMut() -> Box<dyn Mapper>,
{
    match run_network_from(
        0,
        layers,
        arch,
        buffer,
        strategy,
        budget,
        seed,
        make_model,
        make_mapper,
        |_, _| Ok::<(), std::convert::Infallible>(()),
    ) {
        Ok(out) => out,
        Err(e) => match e {},
    }
}

/// The per-layer sweep loop shared by [`run_network`] and the
/// checkpointing runtime (`mse::runtime`): starts at layer `start`
/// (earlier layers are assumed already folded into `buffer`) and calls
/// `on_layer(i, outcome)` after each layer — a fallible hook so a
/// checkpoint write failure can abort the sweep cleanly.
///
/// Seed derivations depend only on the *global* layer index `i`, never on
/// `start`, so resuming at layer `k` reproduces exactly the samples a
/// fresh run would have drawn there.
#[allow(clippy::too_many_arguments)] // mirrors the sweep's full parameter surface
pub(crate) fn run_network_from<'m, M, F, E>(
    start: usize,
    layers: &[Problem],
    arch: &Arch,
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    mut make_model: M,
    mut make_mapper: F,
    mut on_layer: impl FnMut(usize, &LayerOutcome) -> Result<(), E>,
) -> Result<Vec<LayerOutcome>, E>
where
    M: FnMut(&Problem) -> Box<dyn CostModel + 'm>,
    F: FnMut() -> Box<dyn Mapper>,
{
    let mut out = Vec::with_capacity(layers.len().saturating_sub(start));
    for (i, layer) in layers.iter().enumerate().skip(start) {
        let model = make_model(layer);
        let mut mapper = make_mapper();
        let outcome =
            run_layer(i, layer, arch, buffer, strategy, budget, seed, model.as_ref(), &mut mapper);
        if let Some((best, _)) = &outcome.result.best {
            buffer.insert(layer.clone(), best.clone());
        }
        on_layer(i, &outcome)?;
        out.push(outcome);
    }
    Ok(out)
}

/// One layer of a sweep: derives the warm-start (or reference random)
/// init score, seeds the mapper, and searches. Seed derivations depend
/// only on the *global* layer index `i`, so the same layer produces the
/// same outcome regardless of which thread (or resume point) runs it.
///
/// Does **not** insert the winner into the replay buffer — the caller
/// does, so insertion order stays the layer order even when layers finish
/// out of order (see [`run_network_parallel`]).
#[allow(clippy::too_many_arguments)] // mirrors the sweep's full parameter surface
pub(crate) fn run_layer(
    i: usize,
    layer: &Problem,
    arch: &Arch,
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    model: &dyn CostModel,
    mapper: &mut Box<dyn Mapper>,
) -> LayerOutcome {
    let mse = Mse::new(model);
    let warm = buffer.seed_for(layer, arch, strategy);
    let init_score = match &warm {
        Some(m) => model.evaluate(m).map(|c| c.edp()).unwrap_or(f64::INFINITY),
        None => {
            // Reference random-init quality: the first legal random
            // draw, matching how Fig. 9's blue bars are measured.
            let space = mse.space();
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ (i as u64) << 32);
            model.evaluate(&space.random(&mut rng)).map(|c| c.edp()).unwrap_or(f64::INFINITY)
        }
    };
    if let Some(m) = warm {
        mapper.set_seeds(vec![m]);
    }
    let result = mse.run(mapper.as_ref(), budget, seed.wrapping_add(i as u64));
    let converge_sample = convergence_sample(&result, 0.995);
    LayerOutcome { name: layer.name().to_string(), init_score, result, converge_sample }
}

/// Multi-threaded variant of [`run_network`]: layers are claimed by a
/// small pool of scoped worker threads and their outcomes flushed in
/// layer order, so the returned vector, the replay-buffer contents, and
/// every `on_layer` callback are **bit-identical** to the serial sweep.
///
/// Only [`InitStrategy::Random`] layers are independent (warm-start
/// strategies read the replay buffer between layers, which forces the
/// serial chain), so any other strategy — or `threads <= 1` — falls back
/// to the serial path. `threads == 0` means one per available core.
#[allow(clippy::too_many_arguments)] // mirrors the sweep's full parameter surface
pub fn run_network_parallel<'m, M, F>(
    layers: &[Problem],
    arch: &Arch,
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    threads: usize,
    make_model: M,
    make_mapper: F,
) -> Vec<LayerOutcome>
where
    M: Fn(&Problem) -> Box<dyn CostModel + 'm> + Sync,
    F: Fn() -> Box<dyn Mapper> + Sync,
{
    match run_network_parallel_from(
        0,
        layers,
        arch,
        buffer,
        strategy,
        budget,
        seed,
        threads,
        make_model,
        make_mapper,
        |_, _| Ok::<(), std::convert::Infallible>(()),
    ) {
        Ok(out) => out,
        Err(e) => match e {},
    }
}

/// Why the in-order flush stopped early.
enum FlushStop<E> {
    /// The `on_layer` hook failed (e.g. a checkpoint write error).
    Hook(E),
    /// A worker's layer panicked; the payload is re-thrown on the caller.
    Panic(Box<dyn std::any::Any + Send>),
}

/// The parallel counterpart of [`run_network_from`] (same contract, same
/// checkpoint hook), shared by [`run_network_parallel`] and
/// `mse::runtime::run_network_checkpointed_parallel`.
#[allow(clippy::too_many_arguments)] // mirrors the sweep's full parameter surface
pub(crate) fn run_network_parallel_from<'m, M, F, E>(
    start: usize,
    layers: &[Problem],
    arch: &Arch,
    buffer: &ReplayBuffer,
    strategy: InitStrategy,
    budget: Budget,
    seed: u64,
    threads: usize,
    make_model: M,
    make_mapper: F,
    mut on_layer: impl FnMut(usize, &LayerOutcome) -> Result<(), E>,
) -> Result<Vec<LayerOutcome>, E>
where
    M: Fn(&Problem) -> Box<dyn CostModel + 'm> + Sync,
    F: Fn() -> Box<dyn Mapper> + Sync,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    let n = layers.len();
    let remaining = n.saturating_sub(start);
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    };
    let workers = threads.min(remaining);
    if workers <= 1 || strategy != InitStrategy::Random {
        return run_network_from(
            start, layers, arch, buffer, strategy, budget, seed, make_model, make_mapper, on_layer,
        );
    }

    type Slot = Option<Result<LayerOutcome, Box<dyn std::any::Any + Send>>>;
    let cursor = AtomicUsize::new(start);
    let abort = AtomicBool::new(false);
    let slots: Mutex<Vec<Slot>> = Mutex::new((0..remaining).map(|_| None).collect());
    let filled = Condvar::new();

    let (out, stop) = std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if abort.load(Ordering::Acquire) {
                    return;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let layer = &layers[i];
                // Catch panics here so the flusher below (which waits on
                // this slot) never deadlocks on a dead worker; the payload
                // is re-thrown on the calling thread in layer order,
                // matching what the serial sweep would have raised.
                let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let model = make_model(layer);
                    let mut mapper = make_mapper();
                    run_layer(
                        i,
                        layer,
                        arch,
                        buffer,
                        strategy,
                        budget,
                        seed,
                        model.as_ref(),
                        &mut mapper,
                    )
                }));
                let mut st = slots.lock().unwrap_or_else(|e| e.into_inner());
                st[i - start] = Some(done);
                filled.notify_all();
            });
        }
        // Flush strictly in layer order on the calling thread: replay
        // buffer inserts, checkpoint writes, and the returned vector all
        // match the serial sweep exactly.
        let mut out = Vec::with_capacity(remaining);
        let mut stop: Option<FlushStop<E>> = None;
        for i in start..n {
            let slot = {
                let mut st = slots.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(slot) = st[i - start].take() {
                        break slot;
                    }
                    st = filled.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            match slot {
                Ok(outcome) => {
                    if let Some((best, _)) = &outcome.result.best {
                        buffer.insert(layers[i].clone(), best.clone());
                    }
                    if let Err(e) = on_layer(i, &outcome) {
                        stop = Some(FlushStop::Hook(e));
                        break;
                    }
                    out.push(outcome);
                }
                Err(payload) => {
                    stop = Some(FlushStop::Panic(payload));
                    break;
                }
            }
        }
        if stop.is_some() {
            // Workers drain: each finishes its in-flight layer, then sees
            // the flag before claiming another and exits.
            abort.store(true, Ordering::Release);
        }
        (out, stop)
    });
    match stop {
        None => Ok(out),
        Some(FlushStop::Hook(e)) => Err(e),
        Some(FlushStop::Panic(p)) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costmodel::DenseModel;
    use mappers::Gamma;

    #[test]
    fn most_similar_prefers_smaller_distance() {
        let buf = ReplayBuffer::new();
        let a = Problem::conv2d("a", 16, 128, 128, 28, 28, 3, 3);
        let b = Problem::conv2d("b", 16, 256, 256, 14, 14, 3, 3);
        let arch = Arch::accel_b();
        buf.insert(a.clone(), Mapping::trivial(&a, &arch));
        buf.insert(b.clone(), Mapping::trivial(&b, &arch));
        // Query closest to `a` (only K differs).
        let q = Problem::conv2d("q", 16, 64, 128, 28, 28, 3, 3);
        let (found, _, d) = buf.most_similar(&q).unwrap();
        assert_eq!(found.name(), "a");
        assert_eq!(d, 1);
    }

    #[test]
    fn ties_break_toward_most_recent() {
        let buf = ReplayBuffer::new();
        let arch = Arch::accel_b();
        let a = Problem::conv2d("first", 16, 128, 128, 28, 28, 3, 3);
        let b = Problem::conv2d("second", 16, 128, 128, 28, 28, 3, 3);
        buf.insert(a.clone(), Mapping::trivial(&a, &arch));
        buf.insert(b.clone(), Mapping::trivial(&b, &arch));
        let (found, _, d) = buf.most_similar(&a).unwrap();
        assert_eq!(d, 0);
        assert_eq!(found.name(), "second");
    }

    #[test]
    fn seed_for_respects_strategy() {
        let buf = ReplayBuffer::new();
        let arch = Arch::accel_b();
        let p = Problem::conv2d("p", 4, 16, 16, 14, 14, 3, 3);
        assert!(buf.seed_for(&p, &arch, InitStrategy::BySimilarity).is_none());
        buf.insert(p.clone(), Mapping::trivial(&p, &arch));
        assert!(buf.seed_for(&p, &arch, InitStrategy::Random).is_none());
        let s = buf.seed_for(&p, &arch, InitStrategy::PreviousLayer).unwrap();
        assert!(s.is_legal(&p, &arch));
        let s = buf.seed_for(&p, &arch, InitStrategy::BySimilarity).unwrap();
        assert!(s.is_legal(&p, &arch));
    }

    #[test]
    fn warm_start_improves_init_on_regular_network() {
        // Two near-identical layers: the second layer's warm-start init
        // must be better than its random init (Fig. 9's message).
        let arch = Arch::accel_b();
        let layers = vec![
            Problem::conv2d("l1", 4, 32, 16, 14, 14, 3, 3),
            Problem::conv2d("l2", 4, 32, 32, 14, 14, 3, 3),
        ];
        let run = |strategy| {
            let buf = ReplayBuffer::new();
            run_network(
                &layers,
                &arch,
                &buf,
                strategy,
                Budget::samples(400),
                7,
                |p| Box::new(DenseModel::new(p.clone(), Arch::accel_b())),
                || Box::new(Gamma::new()),
            )
        };
        let warm = run(InitStrategy::BySimilarity);
        let cold = run(InitStrategy::Random);
        assert!(
            warm[1].init_score < cold[1].init_score,
            "warm init {:.3e} not better than random init {:.3e}",
            warm[1].init_score,
            cold[1].init_score
        );
        // Final quality comparable (within 2x), per Fig. 11(a).
        let ratio = warm[1].result.best_score / cold[1].result.best_score;
        assert!(ratio < 2.0, "warm-start degraded final quality by {ratio:.2}x");
    }

    #[test]
    fn parallel_network_run_matches_serial() {
        let arch = Arch::accel_b();
        let layers = vec![
            Problem::conv2d("l1", 2, 8, 8, 7, 7, 3, 3),
            Problem::conv2d("l2", 2, 16, 8, 7, 7, 3, 3),
            Problem::conv2d("l3", 2, 16, 16, 7, 7, 3, 3),
            Problem::gemm("l4", 2, 16, 16, 16),
        ];
        let make_model =
            |p: &Problem| -> Box<dyn CostModel> { Box::new(DenseModel::new(p.clone(), Arch::accel_b())) };
        let make_mapper = || -> Box<dyn Mapper> { Box::new(Gamma::new()) };
        let serial_buf = ReplayBuffer::new();
        let serial = run_network(
            &layers,
            &arch,
            &serial_buf,
            InitStrategy::Random,
            Budget::samples(120),
            9,
            make_model,
            make_mapper,
        );
        for threads in [2, 8] {
            let buf = ReplayBuffer::new();
            let par = run_network_parallel(
                &layers,
                &arch,
                &buf,
                InitStrategy::Random,
                Budget::samples(120),
                9,
                threads,
                make_model,
                make_mapper,
            );
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.name, s.name);
                assert_eq!(p.init_score, s.init_score, "init diverged on {}", p.name);
                assert_eq!(p.result.best_score, s.result.best_score, "score diverged on {}", p.name);
                assert_eq!(p.result.best, s.result.best, "mapping diverged on {}", p.name);
                // `seconds` is wall-clock; compare the deterministic fields.
                assert_eq!(p.result.history.len(), s.result.history.len());
                for (hp, hs) in p.result.history.iter().zip(&s.result.history) {
                    assert_eq!((hp.samples, hp.best_score), (hs.samples, hs.best_score));
                }
                assert_eq!(p.converge_sample, s.converge_sample);
            }
            // Replay-buffer contents (and order) match the serial sweep.
            assert_eq!(buf.len(), serial_buf.len());
            let mut a = Vec::new();
            let mut b = Vec::new();
            buf.save(&mut a).unwrap();
            serial_buf.save(&mut b).unwrap();
            assert_eq!(a, b, "replay buffer diverged at {threads} threads");
        }
    }

    #[test]
    fn parallel_network_run_propagates_layer_panics() {
        let arch = Arch::accel_b();
        let layers = vec![
            Problem::conv2d("ok", 2, 8, 8, 7, 7, 3, 3),
            Problem::conv2d("boom", 2, 16, 8, 7, 7, 3, 3),
        ];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_network_parallel(
                &layers,
                &arch,
                &ReplayBuffer::new(),
                InitStrategy::Random,
                Budget::samples(60),
                0,
                4,
                |p: &Problem| -> Box<dyn CostModel> {
                    if p.name() == "boom" {
                        std::panic::panic_any("rigged layer");
                    }
                    Box::new(DenseModel::new(p.clone(), Arch::accel_b()))
                },
                || -> Box<dyn Mapper> { Box::new(Gamma::new()) },
            )
        }));
        let payload = caught.expect_err("rigged panic swallowed");
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "rigged layer");
    }

    #[test]
    fn buffer_save_load_round_trips() {
        let arch = Arch::accel_b();
        let buf = ReplayBuffer::new();
        let p1 = Problem::conv2d("a", 4, 16, 16, 14, 14, 3, 3);
        let p2 = Problem::gemm("b", 2, 8, 8, 8);
        buf.insert(p1.clone(), Mapping::trivial(&p1, &arch));
        buf.insert(p2.clone(), Mapping::trivial(&p2, &arch));
        let mut bytes = Vec::new();
        buf.save(&mut bytes).unwrap();
        let restored = ReplayBuffer::new();
        let n = restored.load(std::io::BufReader::new(&bytes[..])).unwrap();
        assert_eq!(n, 2);
        let (found, m, d) = restored.most_similar(&p2).unwrap();
        assert_eq!(d, 0);
        assert_eq!(found.name(), "b");
        assert!(m.is_legal(&p2, &arch));
        // Malformed lines are skipped, not fatal.
        let garbage = b"not a line\nCONV2D;x;B=1\tbroken\n".to_vec();
        let n = restored.load(std::io::BufReader::new(&garbage[..])).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn buffer_load_handles_schema_versions() {
        let arch = Arch::accel_b();
        let buf = ReplayBuffer::new();
        let p = Problem::gemm("g", 2, 8, 8, 8);
        buf.insert(p.clone(), Mapping::trivial(&p, &arch));
        let mut bytes = Vec::new();
        buf.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(
            text.starts_with(&format!("#mapex-replay v{REPLAY_FORMAT_VERSION}\n")),
            "save must emit the schema header first: {text:?}"
        );
        // Current version: loads normally.
        let restored = ReplayBuffer::new();
        assert_eq!(restored.load(std::io::BufReader::new(&bytes[..])).unwrap(), 1);
        // A future version stops the load gracefully — zero entries, no
        // error — even when the following lines would parse under v1.
        let entry = text.lines().nth(1).unwrap();
        let future = format!("#mapex-replay v{}\n{entry}\n", REPLAY_FORMAT_VERSION + 1);
        let skipping = ReplayBuffer::new();
        assert_eq!(skipping.load(std::io::BufReader::new(future.as_bytes())).unwrap(), 0);
        assert!(skipping.is_empty());
        // A mangled header is likewise a stop, not a misparse.
        let mangled = "#mapex-replay vNaN\n".to_string() + entry + "\n";
        assert_eq!(
            ReplayBuffer::new().load(std::io::BufReader::new(mangled.as_bytes())).unwrap(),
            0
        );
        // Headerless v0 files (pre-versioning) still load, and stray
        // comments are skipped.
        let legacy = format!("# a comment\n{entry}\n");
        let old = ReplayBuffer::new();
        assert_eq!(old.load(std::io::BufReader::new(legacy.as_bytes())).unwrap(), 1);
    }

    #[test]
    fn buffer_grows_during_network_run() {
        let arch = Arch::accel_b();
        let layers = vec![
            Problem::conv2d("l1", 2, 8, 8, 7, 7, 3, 3),
            Problem::conv2d("l2", 2, 16, 8, 7, 7, 3, 3),
            Problem::conv2d("l3", 2, 16, 16, 7, 7, 3, 3),
        ];
        let buf = ReplayBuffer::new();
        let out = run_network(
            &layers,
            &arch,
            &buf,
            InitStrategy::BySimilarity,
            Budget::samples(150),
            0,
            |p| Box::new(DenseModel::new(p.clone(), Arch::accel_b())),
            || Box::new(Gamma::new()),
        );
        assert_eq!(out.len(), 3);
        assert_eq!(buf.len(), 3);
        assert!(out.iter().all(|o| o.converge_sample <= o.result.evaluated));
    }
}
