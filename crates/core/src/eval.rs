//! Parallel evaluation engine: a persistent worker pool and a sharded
//! evaluation cache, both packaged as [`mappers::Evaluator`] decorators.
//!
//! Timeloop-style map-space exploration spends >95% of wall-clock inside
//! `evaluate()` (PAPER.md §IV), so this module is the throughput layer the
//! rest of the runtime sits on. Three design rules keep it safe to enable
//! everywhere:
//!
//! 1. **Determinism.** Mappers submit work through
//!    [`Evaluator::evaluate_batch`] and always receive outcomes in
//!    submission order; the thread count only changes *which worker*
//!    computes each slot, never the values or their order. Cache lookups
//!    and inserts happen on the submitting thread, in submission order, so
//!    the hit/miss sequence is also independent of the thread count.
//!    Parallel runs are therefore bit-identical to serial runs.
//! 2. **Panic transparency.** A panic on a worker is caught, carried back,
//!    and re-raised on the submitting thread *with its original payload*,
//!    so the resilient runtime's classifier (`mse::runtime`) still
//!    downcasts sentinels like `InjectedFault` exactly as it does for
//!    serial evaluation.
//! 3. **No new dependencies.** The pool is std threads + mutex/condvar;
//!    work is claimed item-by-item from a shared atomic cursor, so a slow
//!    mapping (straggler) never idles a whole chunk's worth of threads the
//!    way static partitioning did.

use costmodel::Cost;
use mappers::{CacheStats, Evaluator};
use mapping::Mapping;
use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for the evaluation stack built by `mse::runtime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Worker threads for batch evaluation. `0` means "all cores"
    /// (`std::thread::available_parallelism`); `1` evaluates inline on the
    /// submitting thread with no pool at all.
    pub threads: usize,
    /// Evaluation-cache capacity in entries; `0` disables the cache.
    pub cache_capacity: usize,
}

impl EvalConfig {
    /// Serial, uncached — the historical behavior, and the default for
    /// library callers so existing deterministic tests keep their exact
    /// evaluation counts.
    pub fn serial() -> Self {
        EvalConfig { threads: 1, cache_capacity: 0 }
    }

    /// All cores plus a bounded cache — what the CLI uses by default.
    pub fn full() -> Self {
        EvalConfig { threads: 0, cache_capacity: 1 << 16 }
    }

    /// Resolves `threads == 0` to the machine's core count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::serial()
    }
}

/// Items claimed per cursor bump. Chunked claims let each lane run the
/// evaluator's *batched* path (`Evaluator::evaluate_batch`, SoA costing in
/// the analytical engines) instead of one scalar evaluation per claim,
/// while staying small enough that a straggler chunk cannot idle the other
/// lanes for long.
const DISPATCH_CHUNK: usize = 16;

/// One in-flight batch. The evaluator and mapping slice are smuggled
/// across threads as raw pointers; they are only dereferenced by workers
/// holding a claimed index range, and the submitting thread blocks until
/// every index is accounted for, so both outlive every dereference.
struct Job {
    eval: *const dyn Evaluator,
    batch: *const Mapping,
    len: usize,
    /// Next unclaimed item — claimed in [`DISPATCH_CHUNK`]-sized ranges
    /// from a shared cursor, no static partitioning.
    next: AtomicUsize,
    state: Mutex<JobState>,
    done_cv: Condvar,
}

struct JobState {
    results: Vec<Option<Option<(Cost, f64)>>>,
    done: usize,
    panic: Option<Box<dyn Any + Send>>,
}

// Safety: the raw pointers are only dereferenced while the submitting
// thread is parked inside `EvalPool::evaluate_batch`, which keeps the
// referents alive; `dyn Evaluator` is `Sync` by trait bound and `Mapping`
// is only read.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and evaluates chunks until the batch is drained. Runs on
    /// workers *and* on the submitting thread, so progress never depends
    /// on pool size. Each claim evaluates its chunk through the
    /// evaluator's batched path, so per-lane work benefits from SoA
    /// costing; results land by absolute index, so submission order is
    /// preserved regardless of which lane ran which chunk.
    fn work(&self) {
        loop {
            let start = self.next.fetch_add(DISPATCH_CHUNK, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + DISPATCH_CHUNK).min(self.len);
            // Safety: holding an unfinished claim `start < len` means
            // `done < len`, so the submitting thread is still parked in
            // `evaluate_batch` and the referents are alive. A worker that
            // wakes after the batch drained fails the claim above and
            // never forms these references.
            let (eval, chunk) = unsafe {
                (&*self.eval, std::slice::from_raw_parts(self.batch.add(start), end - start))
            };
            let out = catch_unwind(AssertUnwindSafe(|| eval.evaluate_batch(chunk)));
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            match out {
                Ok(vs) => {
                    for (k, v) in vs.into_iter().enumerate() {
                        st.results[start + k] = Some(v);
                    }
                }
                // Keep the first payload; the submitter re-raises it. The
                // chunk's slots are filled so counters stay exact.
                Err(p) => {
                    if st.panic.is_none() {
                        st.panic = Some(p);
                    }
                    for slot in &mut st.results[start..end] {
                        *slot = Some(None);
                    }
                }
            }
            st.done += end - start;
            if st.done == self.len {
                self.done_cv.notify_all();
            }
        }
    }
}

struct PoolShared {
    slot: Mutex<JobSlot>,
    wake: Condvar,
}

struct JobSlot {
    generation: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

/// A persistent pool of evaluation workers.
///
/// Submitting a batch blocks until every item is evaluated; results come
/// back indexed by submission order. With fewer than two workers the pool
/// holds no threads and batches run inline — the degenerate configuration
/// used to represent "serial" without a second code path.
///
/// Multiple threads may submit concurrently (the service daemon's request
/// workers share one pool): every batch completes correctly because each
/// submitter drains its own batch itself; parked workers simply assist
/// whichever submission most recently occupied the slot.
pub struct EvalPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl EvalPool {
    /// Spawns a pool sized by `config.threads` (`0` = all cores).
    pub fn new(config: EvalConfig) -> Self {
        let threads = config.resolved_threads();
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot { generation: 0, job: None, shutdown: false }),
            wake: Condvar::new(),
        });
        // The submitting thread also works its own batches, so `threads`
        // total lanes means `threads - 1` parked workers.
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        EvalPool { shared, workers }
    }

    /// Total evaluation lanes (workers plus the submitting thread).
    pub fn lanes(&self) -> usize {
        self.workers.len() + 1
    }

    fn worker_loop(shared: &PoolShared) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if slot.shutdown {
                        return;
                    }
                    if slot.generation != seen {
                        seen = slot.generation;
                        if let Some(job) = slot.job.clone() {
                            break job;
                        }
                    }
                    slot = shared.wake.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            };
            job.work();
        }
    }

    /// Evaluates `batch` against `eval`, returning outcomes in submission
    /// order. Blocks until the whole batch is done. A worker panic is
    /// re-raised here with its original payload once the batch has
    /// drained (remaining items still complete, keeping counters exact).
    pub fn evaluate_batch(
        &self,
        eval: &dyn Evaluator,
        batch: &[Mapping],
    ) -> Vec<Option<(Cost, f64)>> {
        if batch.is_empty() {
            return Vec::new();
        }
        if self.workers.is_empty() || batch.len() == 1 {
            // No concurrency to exploit — but still take the evaluator's
            // batched (SoA) path rather than one scalar call per item.
            return eval.evaluate_batch(batch);
        }
        // Safety: erases the borrow's lifetime so the pointer can live in
        // the 'static Job; it is only dereferenced under an unfinished
        // claim, while this call keeps `eval` alive (see `Job::work`).
        let eval_static: &'static dyn Evaluator =
            unsafe { std::mem::transmute::<&dyn Evaluator, &'static dyn Evaluator>(eval) };
        let job = Arc::new(Job {
            eval: eval_static as *const dyn Evaluator,
            batch: batch.as_ptr(),
            len: batch.len(),
            next: AtomicUsize::new(0),
            state: Mutex::new(JobState {
                results: vec![None; batch.len()],
                done: 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
        });
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.generation += 1;
            slot.job = Some(Arc::clone(&job));
        }
        self.shared.wake.notify_all();
        // Work the batch from this thread too, then wait out stragglers.
        job.work();
        let mut st = job.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.done < job.len {
            st = job.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        {
            // Drop our handle from the slot so the batch's borrows end
            // with this call (workers may still hold the Arc briefly, but
            // only touch it to fail a claim). Concurrent submitters are
            // legal (the service daemon's request workers share one pool):
            // a later submission may already occupy the slot, in which
            // case it is not ours to clear — each submitter always drains
            // its own batch itself, so forward progress never depends on
            // winning the slot.
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
                slot.job = None;
            }
        }
        if let Some(p) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(p);
        }
        st.results.drain(..).map(|r| r.expect("all slots filled")).collect()
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.shutdown = true;
        }
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// [`Evaluator`] decorator that routes batches through an [`EvalPool`].
/// Single evaluations stay inline — there is nothing to overlap.
pub struct PoolEvaluator<'a> {
    pool: &'a EvalPool,
    inner: &'a dyn Evaluator,
}

impl<'a> PoolEvaluator<'a> {
    /// Wraps `inner` with pool-backed batch evaluation.
    pub fn new(pool: &'a EvalPool, inner: &'a dyn Evaluator) -> Self {
        PoolEvaluator { pool, inner }
    }
}

impl Evaluator for PoolEvaluator<'_> {
    fn evaluate(&self, m: &Mapping) -> Option<(Cost, f64)> {
        self.inner.evaluate(m)
    }

    fn evaluate_batch(&self, batch: &[Mapping]) -> Vec<Option<(Cost, f64)>> {
        self.pool.evaluate_batch(self.inner, batch)
    }

    fn evaluate_neighbors(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Option<(Cost, f64)>> {
        // Delta re-evaluation amortizes the parent analysis over the whole
        // neighbor set, so it runs inline rather than sliced across lanes.
        self.inner.evaluate_neighbors(parent, neighbors)
    }

    fn score_bound(&self, m: &Mapping) -> Option<f64> {
        self.inner.score_bound(m)
    }
}

const SHARDS: usize = 16;

/// Multiply-xor step of the streamed canonical hash (fxhash-style: one
/// rotate, one xor, one multiply per word — an order of magnitude cheaper
/// than the SipHash rounds `DefaultHasher` pays per word).
#[inline]
fn mix(h: &mut u64, v: u64) {
    *h = (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
}

/// Hash of a mapping's *canonical form* ([`mappers::canonicalize`]: per
/// level, non-unit temporal dims keep their declared order, unit dims sink
/// to the end in ascending order), streamed directly off the raw mapping.
/// Two mappings hash equal iff their canonical forms are equal, without
/// ever materializing those forms — the allocation-per-probe that made the
/// cached stack slower than the serial one on low-hit-rate runs.
fn canonical_hash(m: &Mapping) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for l in m.levels() {
        for &t in &l.temporal {
            mix(&mut h, t);
        }
        for &s in &l.spatial {
            mix(&mut h, s);
        }
        for &d in l.order.iter().filter(|&&d| l.temporal[d] > 1) {
            mix(&mut h, d as u64);
        }
        for d in (0..l.temporal.len()).filter(|&d| l.temporal[d] <= 1) {
            mix(&mut h, d as u64);
        }
    }
    h
}

/// Whether `raw`'s canonical form equals the stored canonical mapping
/// `canon` — the zero-allocation probe paired with [`canonical_hash`].
fn canonical_eq(raw: &Mapping, canon: &Mapping) -> bool {
    let (a, b) = (raw.levels(), canon.levels());
    if a.len() != b.len() {
        return false;
    }
    for (la, lb) in a.iter().zip(b) {
        if la.temporal != lb.temporal || la.spatial != lb.spatial {
            return false;
        }
        let mut it = lb.order.iter();
        let non_unit = la.order.iter().filter(|&&d| la.temporal[d] > 1);
        let unit = (0..la.temporal.len()).filter(|&d| la.temporal[d] <= 1);
        for d in non_unit.copied().chain(unit) {
            if it.next() != Some(&d) {
                return false;
            }
        }
    }
    true
}

/// Pass-through hasher for the pre-hashed `u64` bucket keys: the streamed
/// canonical hash *is* the hash, so the shard map must not SipHash it
/// again.
#[derive(Default)]
struct PassThroughHasher(u64);

impl Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | b as u64;
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type PassThrough = std::hash::BuildHasherDefault<PassThroughHasher>;

/// A sharded, capacity-bounded memo table over canonical mapping forms.
///
/// Keys are canonical-form hashes; each bucket holds the materialized
/// canonical mappings sharing that hash (collision chains — in practice
/// length 1) with their memoized outcomes. Probing hashes and compares
/// against the *raw* mapping with zero allocations; the canonical clone is
/// materialized once, on insert. Values memoize the *outcome*, including
/// `None` (illegal / guard-rejected), so a rejected duplicate costs a
/// lookup rather than a second guarded analysis. Eviction is per-shard
/// FIFO: crude, but bounded and deterministic (bucket entries are in
/// insertion order, so popping the oldest hash and dropping its bucket's
/// head is exact FIFO).
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    /// Lookups actually probed (vs bypassed) — the denominator of the
    /// adaptive pays-for-itself test.
    probes: AtomicU64,
    /// Total lookups submitted through the adaptive gate, probed or not;
    /// positions the recheck windows.
    gate_position: AtomicU64,
}

/// Probe unconditionally for the first this many lookups — enough signal
/// to judge the mapper's revisit rate.
const ADAPTIVE_WARMUP: u64 = 128;
/// A probe (hash + shard lock + compare) costs roughly 1/16 of a dense
/// cost-model evaluation; probing pays while `hits * 16 >= probes`.
const ADAPTIVE_PAY: u64 = 16;
/// While bypassing, re-open a probe window this often…
const ADAPTIVE_SPAN: u64 = 1024;
/// …for this many lookups, so a mapper that *starts* revisiting late
/// (e.g. an annealer converging) can win the cache back.
const ADAPTIVE_RECHECK: u64 = 128;

/// A memoized evaluation outcome; `None` records an illegal or
/// guard-rejected mapping.
type Outcome = Option<(Cost, f64)>;
/// One pre-hashed entry for [`EvalCache::insert_batch`].
type HashedEntry<'a> = (u64, &'a Mapping, Outcome);

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Vec<(Mapping, Outcome)>, PassThrough>,
    fifo: VecDeque<u64>,
    entries: usize,
}

impl Shard {
    fn probe(&self, hash: u64, raw: &Mapping) -> Option<Outcome> {
        self.map
            .get(&hash)?
            .iter()
            .find(|(k, _)| canonical_eq(raw, k))
            .map(|(_, v)| *v)
    }

    /// Returns `(inserted, evictions)`. A re-insert of a resident
    /// canonical form updates the value in place (no FIFO movement),
    /// matching the historical `HashMap::insert` semantics.
    fn insert(&mut self, cap: usize, hash: u64, raw: &Mapping, value: Option<(Cost, f64)>) -> (bool, u64) {
        let bucket = self.map.entry(hash).or_default();
        if let Some(e) = bucket.iter_mut().find(|(k, _)| canonical_eq(raw, k)) {
            e.1 = value;
            return (false, 0);
        }
        bucket.push((mappers::canonicalize(raw), value));
        self.fifo.push_back(hash);
        self.entries += 1;
        let mut evictions = 0u64;
        while self.entries > cap {
            let Some(old) = self.fifo.pop_front() else { break };
            if let Some(b) = self.map.get_mut(&old) {
                if !b.is_empty() {
                    b.remove(0);
                }
                if b.is_empty() {
                    self.map.remove(&old);
                }
            }
            self.entries -= 1;
            evictions += 1;
        }
        (true, evictions)
    }
}

impl EvalCache {
    /// A cache bounded at roughly `capacity` entries (rounded up to the
    /// shard count). `capacity == 0` builds a disabled cache that misses
    /// everything and stores nothing.
    pub fn new(capacity: usize) -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            gate_position: AtomicU64::new(0),
        }
    }

    /// Adaptive bypass gate: advances the position by `n` lookups and
    /// decides — once per batch, from its start position — whether probing
    /// the cache is worth the hashing for a mapper with this observed
    /// revisit rate. Always probes through the warmup; after that, probes
    /// while hits pay for probes, otherwise bypasses except for periodic
    /// recheck windows. Bypassed lookups are still accounted as misses by
    /// the caller, so `stats()` hit rates stay truthful.
    fn admit_probe(&self, n: usize) -> bool {
        let start = self.gate_position.fetch_add(n as u64, Ordering::Relaxed);
        if start < ADAPTIVE_WARMUP {
            return true;
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let probes = self.probes.load(Ordering::Relaxed).max(1);
        if hits.saturating_mul(ADAPTIVE_PAY) >= probes {
            return true;
        }
        start % ADAPTIVE_SPAN < ADAPTIVE_RECHECK
    }

    /// Whether lookups can ever hit.
    pub fn enabled(&self) -> bool {
        self.per_shard_capacity > 0
    }

    fn shard_index(hash: u64) -> usize {
        // The low bits feed the bucket map; shard on high bits.
        (hash >> 48) as usize % SHARDS
    }

    /// Looks up a raw (not canonicalized) mapping, counting the hit or
    /// miss.
    pub fn lookup(&self, m: &Mapping) -> Option<Option<(Cost, f64)>> {
        if !self.enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.probes.fetch_add(1, Ordering::Relaxed);
        let hash = canonical_hash(m);
        let shard =
            self.shards[Self::shard_index(hash)].lock().unwrap_or_else(|e| e.into_inner());
        match shard.probe(hash, m) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an outcome for a raw mapping, evicting FIFO beyond
    /// capacity. The canonical form is materialized here, once.
    pub fn insert(&self, m: &Mapping, value: Option<(Cost, f64)>) {
        if !self.enabled() {
            return;
        }
        let hash = canonical_hash(m);
        let mut shard =
            self.shards[Self::shard_index(hash)].lock().unwrap_or_else(|e| e.into_inner());
        let (inserted, evictions) = shard.insert(self.per_shard_capacity, hash, m, value);
        drop(shard);
        if inserted {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        if evictions > 0 {
            self.evictions.fetch_add(evictions, Ordering::Relaxed);
        }
    }

    /// Records `n` misses without probing — the disabled-cache fast path,
    /// where the probe could never hit but the accounting must still show
    /// every submission as a miss.
    fn count_misses(&self, n: usize) {
        self.misses.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Probes a whole batch of raw mappings, touching each shard's lock at
    /// most once (per-item probes pay one lock round-trip per mapping —
    /// measurably slower than the evaluations they were meant to save on
    /// cache-friendly random-mapper runs). Hit/miss counters are bumped in
    /// bulk; all probes happen before any caller-side insert, preserving
    /// the per-item path's duplicate-within-batch semantics (both copies
    /// miss and are both evaluated). Returns the outcomes alongside each
    /// mapping's canonical hash so the caller's insert pass need not
    /// re-hash.
    pub fn lookup_batch(&self, batch: &[Mapping]) -> (Vec<Option<Outcome>>, Vec<u64>) {
        let hashes: Vec<u64> = batch.iter().map(canonical_hash).collect();
        if !self.enabled() {
            self.count_misses(batch.len());
            return (vec![None; batch.len()], hashes);
        }
        self.probes.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut out: Vec<Option<Outcome>> = vec![None; batch.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
        for (i, &h) in hashes.iter().enumerate() {
            by_shard[Self::shard_index(h)].push(i);
        }
        let mut hits = 0u64;
        for (si, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let shard = self.shards[si].lock().unwrap_or_else(|e| e.into_inner());
            for &i in idxs {
                if let Some(v) = shard.probe(hashes[i], &batch[i]) {
                    out[i] = Some(v);
                    hits += 1;
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(batch.len() as u64 - hits, Ordering::Relaxed);
        (out, hashes)
    }

    /// Inserts a batch of outcomes (pre-hashed by [`EvalCache::lookup_batch`]),
    /// touching each shard's lock at most once. Within a shard, entries
    /// land in submission order, so the per-shard FIFO evicts exactly as
    /// the per-item path would.
    pub fn insert_batch(&self, entries: &[HashedEntry]) {
        if !self.enabled() || entries.is_empty() {
            return;
        }
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
        for (i, &(h, _, _)) in entries.iter().enumerate() {
            by_shard[Self::shard_index(h)].push(i);
        }
        let mut inserts = 0u64;
        let mut evictions = 0u64;
        for (si, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].lock().unwrap_or_else(|e| e.into_inner());
            for &i in idxs {
                let (h, m, value) = entries[i];
                let (ins, ev) = shard.insert(self.per_shard_capacity, h, m, value);
                inserts += ins as u64;
                evictions += ev;
            }
        }
        self.inserts.fetch_add(inserts, Ordering::Relaxed);
        self.evictions.fetch_add(evictions, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// [`Evaluator`] decorator memoizing outcomes in an [`EvalCache`].
///
/// All cache traffic happens on the submitting thread in submission
/// order — misses are forwarded (as one batch) to the inner evaluator and
/// the results merged back by position — so enabling a pool underneath
/// changes nothing about which lookups hit.
pub struct CachedEvaluator<'a> {
    cache: &'a EvalCache,
    inner: &'a dyn Evaluator,
}

impl<'a> CachedEvaluator<'a> {
    /// Wraps `inner` with memoization in `cache`.
    pub fn new(cache: &'a EvalCache, inner: &'a dyn Evaluator) -> Self {
        CachedEvaluator { cache, inner }
    }
}

impl Evaluator for CachedEvaluator<'_> {
    fn evaluate(&self, m: &Mapping) -> Option<(Cost, f64)> {
        if !self.cache.enabled() || !self.cache.admit_probe(1) {
            // Bypass: the mapper's revisit rate hasn't paid for probing.
            // No insert either — the hash is the cost being avoided.
            self.cache.count_misses(1);
            return self.inner.evaluate(m);
        }
        if let Some(hit) = self.cache.lookup(m) {
            return hit;
        }
        let out = self.inner.evaluate(m);
        self.cache.insert(m, out);
        out
    }

    fn evaluate_batch(&self, batch: &[Mapping]) -> Vec<Option<(Cost, f64)>> {
        // A disabled cache can never hit — and a bypassed one shouldn't:
        // skip hashing entirely while still accounting every submission
        // as a miss.
        if !self.cache.enabled() || !self.cache.admit_probe(batch.len()) {
            self.cache.count_misses(batch.len());
            return self.inner.evaluate_batch(batch);
        }
        let (probed, hashes) = self.cache.lookup_batch(batch);
        let n_hits = probed.iter().filter(|p| p.is_some()).count();
        if n_hits == 0 {
            // The common cold-cache case: forward the caller's slice
            // untouched — no per-mapping clones, one inner batch.
            let fresh = self.inner.evaluate_batch(batch);
            let inserts: Vec<HashedEntry> = hashes
                .iter()
                .zip(batch)
                .zip(&fresh)
                .map(|((&h, m), &out)| (h, m, out))
                .collect();
            self.cache.insert_batch(&inserts);
            return fresh;
        }
        let missing: Vec<Mapping> = batch
            .iter()
            .zip(&probed)
            .filter(|(_, p)| p.is_none())
            .map(|(m, _)| m.clone())
            .collect();
        let fresh = self.inner.evaluate_batch(&missing);
        let mut fresh_it = fresh.into_iter();
        let mut inserts: Vec<HashedEntry> = Vec::with_capacity(missing.len());
        let mut results: Vec<Option<(Cost, f64)>> = Vec::with_capacity(batch.len());
        for ((m, &h), p) in batch.iter().zip(&hashes).zip(probed) {
            match p {
                Some(hit) => results.push(hit),
                None => {
                    let out = fresh_it.next().expect("one outcome per miss");
                    inserts.push((h, m, out));
                    results.push(out);
                }
            }
        }
        self.cache.insert_batch(&inserts);
        results
    }

    fn evaluate_neighbors(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Option<(Cost, f64)>> {
        self.inner.evaluate_neighbors(parent, neighbors)
    }

    fn score_bound(&self, m: &Mapping) -> Option<f64> {
        // Bounds are analytical and cheaper than a probe; memoizing them
        // would pollute the outcome cache with a second value shape.
        self.inner.score_bound(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use costmodel::DenseModel;
    use mappers::EdpEvaluator;
    use mapping::MapSpace;
    use problem::Problem;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    fn batch(space: &MapSpace, seed: u64, n: usize) -> Vec<Mapping> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| space.random(&mut rng)).collect()
    }

    #[test]
    fn pool_matches_serial_bit_for_bit() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let b = batch(&space, 0, 100);
        let serial: Vec<_> = b.iter().map(|m| eval.evaluate(m)).collect();
        for threads in [1, 2, 8] {
            let pool = EvalPool::new(EvalConfig { threads, cache_capacity: 0 });
            let pooled = PoolEvaluator::new(&pool, &eval);
            let got = pooled.evaluate_batch(&b);
            assert_eq!(got.len(), serial.len());
            for (g, s) in got.iter().zip(&serial) {
                assert_eq!(
                    g.map(|(c, s)| (c.latency_cycles.to_bits(), c.energy_uj.to_bits(), s.to_bits())),
                    s.map(|(c, s)| (c.latency_cycles.to_bits(), c.energy_uj.to_bits(), s.to_bits())),
                    "thread count changed an outcome"
                );
            }
        }
    }

    #[test]
    fn pool_propagates_original_panic_payload() {
        #[derive(Debug)]
        struct Marker(u64);
        struct Bomb;
        impl Evaluator for Bomb {
            fn evaluate(&self, _m: &Mapping) -> Option<(Cost, f64)> {
                std::panic::panic_any(Marker(42));
            }
        }
        crate::fault::quiet_sentinel_panics();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (space, _) = setup();
        let b = batch(&space, 1, 16);
        let pool = EvalPool::new(EvalConfig { threads: 4, cache_capacity: 0 });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.evaluate_batch(&Bomb, &b);
        }))
        .unwrap_err();
        std::panic::set_hook(prev);
        let m = err.downcast_ref::<Marker>().expect("original payload preserved");
        assert_eq!(m.0, 42);
    }

    #[test]
    fn cache_hits_return_identical_outcomes() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let cache = EvalCache::new(1 << 12);
        let cached = CachedEvaluator::new(&cache, &eval);
        let b = batch(&space, 2, 50);
        let first = cached.evaluate_batch(&b);
        let again = cached.evaluate_batch(&b);
        let s = cache.stats();
        assert_eq!(s.misses, 50);
        assert_eq!(s.hits, 50);
        for (f, a) in first.iter().zip(&again) {
            assert_eq!(
                f.map(|(c, s)| (c.latency_cycles.to_bits(), c.energy_uj.to_bits(), s.to_bits())),
                a.map(|(c, s)| (c.latency_cycles.to_bits(), c.energy_uj.to_bits(), s.to_bits()))
            );
        }
    }

    #[test]
    fn cache_capacity_is_bounded() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let cache = EvalCache::new(SHARDS * 2);
        let cached = CachedEvaluator::new(&cache, &eval);
        let b = batch(&space, 3, 400);
        let _ = cached.evaluate_batch(&b);
        let s = cache.stats();
        assert!(s.evictions > 0, "no evictions despite tiny capacity");
        let live: usize = (0..SHARDS)
            .map(|i| cache.shards[i].lock().unwrap().entries)
            .sum();
        assert!(live <= SHARDS * 2, "cache exceeded its bound: {live}");
        // The entry counter agrees with the buckets' actual contents.
        let bucketed: usize = (0..SHARDS)
            .map(|i| {
                let sh = cache.shards[i].lock().unwrap();
                sh.map.values().map(Vec::len).sum::<usize>()
            })
            .sum();
        assert_eq!(live, bucketed);
    }

    #[test]
    fn unit_loop_permutations_share_an_entry() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let cache = EvalCache::new(1 << 12);
        let cached = CachedEvaluator::new(&cache, &eval);
        let mut rng = SmallRng::seed_from_u64(7);
        let m = space.random(&mut rng);
        // Shuffle unit-bound temporal loops to the front of a level's
        // order: cost-equivalent, canonically identical.
        let mut variant = m.clone();
        for l in variant.levels_mut() {
            let (mut unit, mut non_unit): (Vec<usize>, Vec<usize>) =
                l.order.iter().partition(|&&d| l.temporal[d] <= 1);
            unit.reverse();
            unit.append(&mut non_unit);
            l.order = unit;
        }
        let a = cached.evaluate(&m);
        let b = cached.evaluate(&variant);
        let s = cache.stats();
        assert_eq!(s.misses, 1, "variant should hit the first entry");
        assert_eq!(s.hits, 1);
        assert_eq!(
            a.map(|(c, s)| (c.latency_cycles.to_bits(), c.energy_uj.to_bits(), s.to_bits())),
            b.map(|(c, s)| (c.latency_cycles.to_bits(), c.energy_uj.to_bits(), s.to_bits()))
        );
    }

    #[test]
    fn disabled_cache_never_stores() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let cache = EvalCache::new(0);
        let cached = CachedEvaluator::new(&cache, &eval);
        let b = batch(&space, 4, 10);
        let _ = cached.evaluate_batch(&b);
        let _ = cached.evaluate_batch(&b);
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.inserts, 0);
        assert_eq!(s.misses, 20);
    }
}
