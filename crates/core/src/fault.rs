//! Watchdog budget enforcement and panic classification for the resilient
//! runtime (`mse::runtime`).
//!
//! A [`WatchdogEvaluator`] sits between the mapper and the real evaluator.
//! Because *every* cost-model call funnels through it, it can count
//! evaluations and wall clock no matter how badly the mapper itself
//! ignores its [`Budget`] — and hard-stop a runaway search by raising a
//! [`WatchdogStop`] sentinel panic that the guarded runner catches and
//! converts into a structured outcome. It also keeps a *shadow incumbent*
//! (best mapping seen so far) outside the mapper's own state, so a stopped
//! or panicked run can still be salvaged into a truncated result.

use costmodel::{Cost, InjectedFault};
use mappers::{Budget, CacheStats, ConvergencePoint, Evaluator, SearchResult};
use mapping::Mapping;
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

/// Sentinel panic payload raised by [`WatchdogEvaluator`] when a mapper
/// overruns its budget past the grace window. Carried as a panic so it can
/// cut through mapper code that never returns control voluntarily; the
/// guarded runner downcasts it back into a [`mappers::RunError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogStop {
    /// Evaluations performed when the watchdog fired.
    pub evaluated: usize,
}

impl std::fmt::Display for WatchdogStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "watchdog stop after {} evaluations", self.evaluated)
    }
}

struct Shadow {
    best: Option<(Mapping, Cost)>,
    best_score: f64,
}

/// Evaluator decorator enforcing a [`Budget`] from *inside* the
/// evaluation path.
///
/// Within the budget (plus a grace window sized for mappers that evaluate
/// whole generations at a time) it is a transparent pass-through, so
/// well-behaved mappers produce bit-identical results with or without the
/// watchdog. Past the grace window it panics with [`WatchdogStop`].
pub struct WatchdogEvaluator<'a> {
    inner: &'a dyn Evaluator,
    budget: Budget,
    grace_evals: usize,
    /// Absolute wall-clock point past which evaluation stops *immediately*
    /// (no 2x slack) — the service layer's per-request deadline. `None`
    /// keeps the historical budget-only enforcement.
    deadline: Option<Instant>,
    start: Instant,
    evaluated: AtomicUsize,
    shadow: Mutex<Shadow>,
}

impl<'a> WatchdogEvaluator<'a> {
    /// Wraps `inner`, enforcing `budget` with `grace_evals` of slack on
    /// the sample count (time budgets get 2x the limit plus 100 ms).
    pub fn new(inner: &'a dyn Evaluator, budget: Budget, grace_evals: usize) -> Self {
        Self::with_deadline(inner, budget, grace_evals, None)
    }

    /// [`WatchdogEvaluator::new`] plus a hard absolute deadline: once
    /// `deadline` passes, the next evaluation raises [`WatchdogStop`] with
    /// no grace at all. Budgets describe what the mapper *should* spend;
    /// the deadline is what the caller (e.g. a serving request) can
    /// *afford* — the salvageable shadow incumbent is the answer either
    /// way.
    pub fn with_deadline(
        inner: &'a dyn Evaluator,
        budget: Budget,
        grace_evals: usize,
        deadline: Option<Instant>,
    ) -> Self {
        WatchdogEvaluator {
            inner,
            budget,
            grace_evals,
            deadline,
            start: Instant::now(),
            evaluated: AtomicUsize::new(0),
            shadow: Mutex::new(Shadow { best: None, best_score: f64::INFINITY }),
        }
    }

    /// Evaluations funneled through so far.
    pub fn evaluated(&self) -> usize {
        self.evaluated.load(Ordering::Relaxed)
    }

    /// Best (finite) score seen so far, `INFINITY` if none.
    pub fn best_score(&self) -> f64 {
        self.shadow.lock().unwrap_or_else(|e| e.into_inner()).best_score
    }

    /// Builds a truncated [`SearchResult`] from the shadow incumbent —
    /// what a stopped or panicked run still managed to find. `None` if no
    /// legal finite-scored mapping was ever seen. The history carries a
    /// single point (per-improvement history lives in the mapper's
    /// recorder, which did not survive the unwind).
    pub fn salvage(&self) -> Option<SearchResult> {
        let shadow = self.shadow.lock().unwrap_or_else(|e| e.into_inner());
        let (m, c) = shadow.best.clone()?;
        let evaluated = self.evaluated();
        let elapsed = self.start.elapsed();
        Some(SearchResult {
            best: Some((m.clone(), c)),
            best_score: shadow.best_score,
            history: vec![ConvergencePoint {
                samples: evaluated,
                seconds: elapsed.as_secs_f64(),
                best_score: shadow.best_score,
            }],
            samples: Vec::new(),
            pareto: vec![(m, c)],
            evaluated,
            pruned: 0,
            elapsed,
            cache: CacheStats::default(),
        })
    }

    fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    fn overrun(&self, n: usize) -> bool {
        if self.past_deadline() {
            return true;
        }
        if let Some(max) = self.budget.max_samples {
            if n > max + self.grace_evals {
                return true;
            }
        }
        if let Some(t) = self.budget.max_time {
            if self.start.elapsed() > t * 2 + std::time::Duration::from_millis(100) {
                return true;
            }
        }
        false
    }
}

impl Evaluator for WatchdogEvaluator<'_> {
    fn evaluate(&self, m: &Mapping) -> Option<(Cost, f64)> {
        let n = self.evaluated.fetch_add(1, Ordering::Relaxed) + 1;
        if self.overrun(n) {
            // This call never evaluates; keep the counter honest for
            // `salvage()`.
            self.evaluated.fetch_sub(1, Ordering::Relaxed);
            std::panic::panic_any(WatchdogStop { evaluated: n - 1 });
        }
        let out = self.inner.evaluate(m);
        if let Some((cost, score)) = &out {
            if score.is_finite() {
                let mut shadow = self.shadow.lock().unwrap_or_else(|e| e.into_inner());
                if *score < shadow.best_score {
                    shadow.best_score = *score;
                    shadow.best = Some((m.clone(), *cost));
                }
            }
        }
        out
    }

    /// Batch counterpart with identical enforcement semantics: exactly the
    /// prefix that the serial path would have admitted is forwarded to the
    /// inner evaluator (as one batch, so pooled evaluation stays inside the
    /// watchdog's accounting), then the same [`WatchdogStop`] sentinel
    /// fires at the same evaluation count the per-call path would have
    /// reported.
    fn evaluate_batch(&self, batch: &[Mapping]) -> Vec<Option<(Cost, f64)>> {
        let start = self.evaluated.load(Ordering::Relaxed);
        if self.past_deadline() {
            std::panic::panic_any(WatchdogStop { evaluated: start });
        }
        if let Some(t) = self.budget.max_time {
            if self.start.elapsed() > t * 2 + std::time::Duration::from_millis(100) {
                std::panic::panic_any(WatchdogStop { evaluated: start });
            }
        }
        let allowed = match self.budget.max_samples {
            Some(max) => (max + self.grace_evals).saturating_sub(start).min(batch.len()),
            None => batch.len(),
        };
        // Without a deadline the whole admitted prefix goes to the inner
        // evaluator as one batch (the historical, maximally parallel
        // behavior, bit-identical to serial). With one, it goes in bounded
        // chunks so the stop lands within one chunk's latency of the
        // deadline instead of one whole generation's.
        let chunk_len = if self.deadline.is_some() { 64 } else { allowed.max(1) };
        let mut outs: Vec<Option<(Cost, f64)>> = Vec::with_capacity(allowed);
        let mut deadline_hit = false;
        for chunk in batch[..allowed].chunks(chunk_len) {
            if !outs.is_empty() && self.past_deadline() {
                deadline_hit = true;
                break;
            }
            outs.extend(self.inner.evaluate_batch(chunk));
        }
        let done = outs.len();
        self.evaluated.fetch_add(done, Ordering::Relaxed);
        {
            let mut shadow = self.shadow.lock().unwrap_or_else(|e| e.into_inner());
            for (m, out) in batch[..done].iter().zip(&outs) {
                if let Some((cost, score)) = out {
                    if score.is_finite() && *score < shadow.best_score {
                        shadow.best_score = *score;
                        shadow.best = Some((m.clone(), *cost));
                    }
                }
            }
        }
        if deadline_hit || done < batch.len() {
            std::panic::panic_any(WatchdogStop { evaluated: start + done });
        }
        outs
    }

    fn score_bound(&self, m: &Mapping) -> Option<f64> {
        // Bounds never touch the cost model's hot path and consume no
        // evaluation budget themselves — the *pruned candidate* is charged
        // by the mapper's recorder, which the watchdog sees through the
        // counts reported at the next evaluate call.
        self.inner.score_bound(m)
    }
}

/// Whether a caught panic payload is one of the runtime's own sentinels
/// (an injected test fault or a watchdog stop) rather than a genuine bug.
pub fn is_sentinel(payload: &(dyn Any + Send)) -> bool {
    payload.is::<WatchdogStop>() || payload.is::<InjectedFault>()
}

/// Renders a caught panic payload to text: `&str`/`String` payloads (the
/// `panic!` macro), the runtime's sentinels, and an opaque fallback.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(w) = payload.downcast_ref::<WatchdogStop>() {
        w.to_string()
    } else if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        f.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for the
/// runtime's sentinel payloads. Guarded runs *expect* injected faults and
/// watchdog stops; without this every caught sentinel would still spray a
/// "thread panicked" banner on stderr. Genuine panics keep the previous
/// hook's behavior, including full backtraces.
pub fn quiet_sentinel_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !is_sentinel(info.payload()) {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use costmodel::{CostModel, DenseModel};
    use mappers::EdpEvaluator;
    use mapping::MapSpace;
    use problem::Problem;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn setup() -> (MapSpace, DenseModel) {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        (MapSpace::new(p.clone(), a.clone()), DenseModel::new(p, a))
    }

    #[test]
    fn passes_through_within_budget() {
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let dog = WatchdogEvaluator::new(&eval, Budget::samples(100), 16);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            let m = space.random(&mut rng);
            assert_eq!(
                dog.evaluate(&m).map(|(_, s)| s.to_bits()),
                eval.evaluate(&m).map(|(_, s)| s.to_bits())
            );
        }
        assert_eq!(dog.evaluated(), 50);
    }

    #[test]
    fn stops_sample_overrun_with_sentinel() {
        quiet_sentinel_panics();
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let dog = WatchdogEvaluator::new(&eval, Budget::samples(10), 5);
        let mut rng = SmallRng::seed_from_u64(1);
        let err = catch_unwind(AssertUnwindSafe(|| {
            // A "mapper" that ignores the budget entirely.
            loop {
                dog.evaluate(&space.random(&mut rng));
            }
        }))
        .unwrap_err();
        let stop = err.downcast_ref::<WatchdogStop>().expect("watchdog sentinel");
        assert_eq!(stop.evaluated, 15, "fired exactly at budget + grace");
        assert!(is_sentinel(&*err));
    }

    #[test]
    fn batch_overrun_fires_same_sentinel_as_serial() {
        quiet_sentinel_panics();
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let dog = WatchdogEvaluator::new(&eval, Budget::samples(10), 5);
        let mut rng = SmallRng::seed_from_u64(3);
        let batch: Vec<_> = (0..40).map(|_| space.random(&mut rng)).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = dog.evaluate_batch(&batch);
        }))
        .unwrap_err();
        let stop = err.downcast_ref::<WatchdogStop>().expect("watchdog sentinel");
        assert_eq!(stop.evaluated, 15, "fired exactly at budget + grace");
        assert_eq!(dog.evaluated(), 15, "admitted prefix still counted");
        assert!(dog.best_score().is_finite(), "shadow captured the prefix");
    }

    #[test]
    fn salvage_recovers_shadow_incumbent() {
        quiet_sentinel_panics();
        let (space, model) = setup();
        let eval = EdpEvaluator::new(&model);
        let dog = WatchdogEvaluator::new(&eval, Budget::samples(20), 0);
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = catch_unwind(AssertUnwindSafe(|| loop {
            dog.evaluate(&space.random(&mut rng));
        }));
        let salvaged = dog.salvage().expect("saw legal mappings before the stop");
        assert!(salvaged.best_score.is_finite());
        assert_eq!(salvaged.best_score, dog.best_score());
        assert_eq!(salvaged.evaluated, 20);
        let (m, c) = salvaged.best.unwrap();
        assert!(m.is_legal(model.problem(), model.arch()));
        assert!((c.edp() - salvaged.best_score).abs() < 1e-9);
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let err = catch_unwind(|| panic!("plain {}", "text")).unwrap_err();
        assert_eq!(panic_message(&*err), "plain text");
        assert!(panic_message(&WatchdogStop { evaluated: 3 }).contains("3"));
        assert_eq!(panic_message(&17u32), "non-string panic payload");
    }
}
