//! Integration tests for the resilient runtime: fault-injected portfolio
//! runs, checkpoint/resume identity, retry-with-reseed, and watchdog
//! enforcement against budget-ignoring mappers.

use arch::Arch;
use costmodel::{CostModel, DenseModel, FaultConfig, FaultyModel};
use mappers::{
    Budget, Evaluator, Gamma, Mapper, RandomPruned, RunError, RunStatus, SearchResult,
    SimulatedAnnealing,
};
use mse::runtime::{reseed, run_network_checkpointed};
use mse::{quiet_sentinel_panics, InitStrategy, Mse, ReplayBuffer, RunPolicy};
use problem::Problem;
use rand::rngs::SmallRng;
use std::path::PathBuf;

fn dense() -> DenseModel {
    DenseModel::new(Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3), Arch::accel_b())
}

fn tmp_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mapex-{tag}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// ISSUE scenario (a): a cost model that panics on ~10% of evaluations
/// must not take a 3-mapper portfolio down. Every outcome completes with
/// a structured status, and any result that does come back is healthy —
/// finite score, legal mapping, no NaN leaked through.
#[test]
fn faulty_portfolio_completes_with_healthy_results() {
    quiet_sentinel_panics();
    let model = FaultyModel::new(dense(), FaultConfig::panics(0.10, 13));
    let mse = Mse::new(&model);
    let gamma = Gamma::new();
    let random = RandomPruned::new();
    let annealing = SimulatedAnnealing::new();
    let mappers: Vec<&dyn Mapper> = vec![&random, &gamma, &annealing];

    let outcomes = mse.run_portfolio_resilient(&mappers, Budget::samples(300), 7, RunPolicy::default());

    assert_eq!(outcomes.len(), 3, "every mapper produced an outcome");
    let (panics, _, _) = model.injected();
    assert!(panics > 0, "the fault injector never fired — test is vacuous");
    for o in &outcomes {
        // Structured audit trail: every attempt recorded, panics named.
        assert!(!o.attempts.is_empty());
        for a in &o.attempts {
            if let Some(RunError::MapperPanicked { message }) = &a.error {
                assert!(message.contains("injected fault"), "unexpected panic: {message}");
            }
        }
        // Whatever survived is healthy.
        if let Some(r) = &o.result {
            assert!(r.best_score.is_finite());
            let (best, cost) = r.best.as_ref().expect("result carries a mapping");
            assert!(best.is_legal(model.problem(), model.arch()));
            assert!(cost.edp().is_finite());
        }
    }
    // At 10% fault rate with salvage, at least one mapper must come back
    // with something usable.
    assert!(
        outcomes.iter().any(|o| o.is_usable()),
        "no mapper salvaged anything: {:?}",
        outcomes.iter().map(|o| o.status).collect::<Vec<_>>()
    );
    // Best-first, NaN-safe ordering.
    for w in outcomes.windows(2) {
        assert!(w[0].best_score() <= w[1].best_score() || w[1].best_score().is_nan());
    }
}

/// A NaN-poisoning model: scores are quarantined by the recorder, the run
/// ends with no usable result, and the guarded runner retries then fails
/// with a full audit trail — it must never return a NaN-scored result.
#[test]
fn all_nan_model_fails_cleanly_after_retries() {
    let model = FaultyModel::new(dense(), FaultConfig::nans(1.0, 5));
    let mse = Mse::new(&model);
    let outcome = mse.run_guarded(&RandomPruned::new(), Budget::samples(50), 0, RunPolicy::with_retries(2));
    assert_eq!(outcome.status, RunStatus::Failed);
    assert_eq!(outcome.attempts.len(), 3, "initial attempt + 2 retries");
    assert!(outcome.result.is_none());
    for a in &outcome.attempts {
        assert_eq!(a.error, Some(RunError::NoLegalMapping));
    }
    // Retries used distinct, deterministically derived seeds.
    assert_eq!(outcome.attempts[0].seed, 0);
    assert_eq!(outcome.attempts[1].seed, reseed(0, 1));
    assert_eq!(outcome.attempts[2].seed, reseed(0, 2));
    assert_ne!(outcome.attempts[1].seed, outcome.attempts[2].seed);
}

/// A mapper whose first attempt panics and whose retries succeed: the
/// guarded runner recovers and records both attempts.
struct FlakyOnce {
    inner: RandomPruned,
    failed: std::sync::atomic::AtomicBool,
}

impl FlakyOnce {
    fn new() -> Self {
        FlakyOnce { inner: RandomPruned::new(), failed: std::sync::atomic::AtomicBool::new(false) }
    }
}

impl Mapper for FlakyOnce {
    fn name(&self) -> &str {
        "Flaky-Once"
    }

    fn search(
        &self,
        space: &mapping::MapSpace,
        evaluator: &dyn Evaluator,
        budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        if !self.failed.swap(true, std::sync::atomic::Ordering::SeqCst) {
            panic!("transient failure on the first attempt");
        }
        self.inner.search(space, evaluator, budget, rng)
    }
}

#[test]
fn retry_with_reseed_recovers_from_transient_panic() {
    let model = dense();
    let mse = Mse::new(&model);
    let outcome = mse.run_guarded(&FlakyOnce::new(), Budget::samples(100), 42, RunPolicy::default());
    assert_eq!(outcome.status, RunStatus::Recovered);
    assert_eq!(outcome.attempts.len(), 2);
    assert!(matches!(
        outcome.attempts[0].error,
        Some(RunError::MapperPanicked { ref message }) if message.contains("transient")
    ));
    assert!(outcome.attempts[1].error.is_none());
    assert_eq!(outcome.attempts[1].seed, reseed(42, 1));
    assert!(outcome.is_usable());
}

/// ISSUE scenario (c): a mapper that ignores `Budget` entirely — both the
/// sample and the wall-clock limit — is hard-stopped by the watchdog, and
/// the best point it had found is salvaged.
struct BudgetIgnorer;

impl Mapper for BudgetIgnorer {
    fn name(&self) -> &str {
        "Budget-Ignorer"
    }

    fn search(
        &self,
        space: &mapping::MapSpace,
        evaluator: &dyn Evaluator,
        _budget: Budget,
        rng: &mut SmallRng,
    ) -> SearchResult {
        // Never checks the budget, never returns.
        loop {
            let _ = evaluator.evaluate(&space.random(rng));
        }
    }
}

#[test]
fn watchdog_stops_mapper_ignoring_sample_budget() {
    let model = dense();
    let mse = Mse::new(&model);
    let policy = RunPolicy { retries: 2, grace_evals: 64, ..RunPolicy::default() };
    let outcome = mse.run_guarded(&BudgetIgnorer, Budget::samples(200), 3, policy);
    assert_eq!(outcome.status, RunStatus::WatchdogStopped);
    // No retry for runaway mappers — they would run away again.
    assert_eq!(outcome.attempts.len(), 1);
    assert_eq!(
        outcome.attempts[0].error,
        Some(RunError::BudgetOverrun { evaluated: 200 + 64 })
    );
    // The shadow incumbent salvaged a real result.
    let r = outcome.result.expect("salvaged result");
    assert!(r.best_score.is_finite());
    assert!(r.evaluated <= 200 + 64);
    let (best, _) = r.best.unwrap();
    assert!(best.is_legal(model.problem(), model.arch()));
}

#[test]
fn watchdog_stops_mapper_ignoring_time_budget() {
    let model = dense();
    let mse = Mse::new(&model);
    let start = std::time::Instant::now();
    let outcome =
        mse.run_guarded(&BudgetIgnorer, Budget::seconds(0.2), 3, RunPolicy::default());
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(outcome.status, RunStatus::WatchdogStopped);
    // Hard stop fires at 2x the limit + 100 ms; well under 5 s even on a
    // loaded CI box.
    assert!(elapsed < 5.0, "watchdog too slow: {elapsed:.1}s");
    assert!(outcome.result.is_some());
}

/// ISSUE scenario (b): write checkpoint → kill → resume reproduces the
/// *identical* final sweep result. The "kill" is simulated by running the
/// sweep over a truncated layer list (the checkpoint ends mid-network),
/// then resuming over the full list.
#[test]
fn checkpoint_resume_reproduces_identical_sweep() {
    let arch = Arch::accel_b();
    let layers = vec![
        Problem::conv2d("l1", 2, 8, 8, 7, 7, 3, 3),
        Problem::conv2d("l2", 2, 16, 8, 7, 7, 3, 3),
        Problem::conv2d("l3", 2, 16, 16, 7, 7, 3, 3),
        Problem::conv2d("l4", 2, 32, 16, 7, 7, 3, 3),
    ];
    let budget = Budget::samples(150);
    let seed = 11;
    let make_model =
        |p: &Problem| -> Box<dyn CostModel> { Box::new(DenseModel::new(p.clone(), Arch::accel_b())) };
    let make_mapper = || -> Box<dyn Mapper> { Box::new(Gamma::new()) };

    // Reference: one uninterrupted sweep.
    let reference = mse::run_network(
        &layers,
        &arch,
        &ReplayBuffer::new(),
        InitStrategy::BySimilarity,
        budget,
        seed,
        make_model,
        make_mapper,
    );

    // Interrupted run: only the first two layers complete before the
    // "kill"; the checkpoint survives on disk.
    let ckpt = tmp_path("resume");
    let partial = run_network_checkpointed(
        &layers[..2],
        &arch,
        &ReplayBuffer::new(),
        InitStrategy::BySimilarity,
        budget,
        seed,
        make_model,
        make_mapper,
        &ckpt,
        false,
    )
    .expect("partial sweep");
    assert_eq!(partial.len(), 2);
    assert!(ckpt.exists(), "checkpoint written after every layer");

    // Resume over the full layer list: layers 1-2 come from the file,
    // layers 3-4 run fresh.
    let resumed = run_network_checkpointed(
        &layers,
        &arch,
        &ReplayBuffer::new(),
        InitStrategy::BySimilarity,
        budget,
        seed,
        make_model,
        make_mapper,
        &ckpt,
        true,
    )
    .expect("resumed sweep");

    assert_eq!(resumed.len(), reference.len());
    for (r, full) in resumed.iter().zip(&reference) {
        assert_eq!(r.name, full.name);
        assert_eq!(
            r.result.best_score, full.result.best_score,
            "layer {} diverged after resume",
            r.name
        );
        assert_eq!(r.converge_sample, full.converge_sample);
        let (rm, _) = r.result.best.as_ref().unwrap();
        let (fm, _) = full.result.best.as_ref().unwrap();
        assert_eq!(rm, fm, "layer {} best mapping diverged", r.name);
    }
    let _ = std::fs::remove_file(&ckpt);
}

/// Resuming under different sweep parameters is refused — silently mixing
/// two sweeps would corrupt the warm-start chain.
#[test]
fn resume_rejects_foreign_checkpoint() {
    let arch = Arch::accel_b();
    let layers = vec![Problem::conv2d("l1", 2, 8, 8, 7, 7, 3, 3)];
    let make_model =
        |p: &Problem| -> Box<dyn CostModel> { Box::new(DenseModel::new(p.clone(), Arch::accel_b())) };
    let make_mapper = || -> Box<dyn Mapper> { Box::new(Gamma::new()) };
    let ckpt = tmp_path("foreign");
    run_network_checkpointed(
        &layers,
        &arch,
        &ReplayBuffer::new(),
        InitStrategy::Random,
        Budget::samples(60),
        1,
        make_model,
        make_mapper,
        &ckpt,
        false,
    )
    .expect("seed run");
    // Different seed → mismatch, not silent divergence.
    let err = run_network_checkpointed(
        &layers,
        &arch,
        &ReplayBuffer::new(),
        InitStrategy::Random,
        Budget::samples(60),
        2,
        make_model,
        make_mapper,
        &ckpt,
        true,
    )
    .expect_err("foreign checkpoint accepted");
    assert!(err.to_string().contains("seed"), "unexpected error: {err}");
    let _ = std::fs::remove_file(&ckpt);
}
