//! Acceptance tests for the parallel evaluation engine: thread count must
//! never change results (bit-identical incumbent, history, Pareto archive,
//! and attempt audit trail), and the evaluation cache must never change a
//! reported cost — including under the guard's reject policy, whose
//! quarantine accounting must match between serial and parallel runs.

use arch::Arch;
use costmodel::{DenseModel, FaultConfig, FaultyModel, GuardAudit, GuardPolicy, GuardedModel};
use mappers::{Budget, EdpEvaluator, Gamma, Mapper, RandomMapper, SearchResult, StandardGa};
use mse::{EvalConfig, Mse, RunPolicy};
use problem::Problem;

fn policy(eval: EvalConfig) -> RunPolicy {
    RunPolicy::with_retries(0).with_eval(eval)
}

/// Field-by-field equality, skipping only wall-clock times.
fn assert_identical(a: &SearchResult, b: &SearchResult, what: &str) {
    assert_eq!(a.best, b.best, "{what}: incumbent diverged");
    assert_eq!(a.best_score, b.best_score, "{what}: best score diverged");
    assert_eq!(a.evaluated, b.evaluated, "{what}: evaluation count diverged");
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length diverged");
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(
            (x.samples, x.best_score),
            (y.samples, y.best_score),
            "{what}: history diverged"
        );
    }
    assert_eq!(a.pareto, b.pareto, "{what}: pareto archive diverged");
    assert_eq!(a.samples, b.samples, "{what}: sample log diverged");
}

#[test]
fn parallel_runs_bit_identical_across_thread_counts() {
    let problems =
        [Problem::conv2d("c", 2, 16, 16, 14, 14, 3, 3), Problem::gemm("g", 2, 32, 32, 32)];
    let archs = [Arch::accel_a(), Arch::accel_b()];
    let mappers: Vec<Box<dyn Mapper>> =
        vec![Box::new(Gamma::new()), Box::new(StandardGa::new()), Box::new(RandomMapper::new())];
    for p in &problems {
        for a in &archs {
            let model = DenseModel::new(p.clone(), a.clone());
            let mse = Mse::new(&model);
            for mapper in &mappers {
                let tag = format!("{}/{}/{}", mapper.name(), p.name(), a.name());
                let serial = mse.run_guarded(
                    mapper.as_ref(),
                    Budget::samples(300),
                    7,
                    policy(EvalConfig::serial()),
                );
                let sres = serial.result.as_ref().expect("serial search produced a result");
                for threads in [1usize, 2, 8] {
                    let par = mse.run_guarded(
                        mapper.as_ref(),
                        Budget::samples(300),
                        7,
                        policy(EvalConfig { threads, cache_capacity: 0 }),
                    );
                    // Attempt audit trail matches: same seeds, same
                    // accept/reject outcomes, same per-attempt counts.
                    assert_eq!(par.attempts.len(), serial.attempts.len(), "{tag}");
                    for (x, y) in par.attempts.iter().zip(&serial.attempts) {
                        assert_eq!(x.seed, y.seed, "{tag}: attempt seed diverged");
                        assert_eq!(x.evaluated, y.evaluated, "{tag}: attempt count diverged");
                        assert_eq!(x.best_score, y.best_score, "{tag}: attempt score diverged");
                        assert_eq!(x.quarantined, y.quarantined, "{tag}: quarantine diverged");
                    }
                    let pres = par.result.as_ref().expect("parallel search produced a result");
                    assert_identical(pres, sres, &format!("{tag} @ {threads} threads"));
                }
            }
        }
    }
}

/// An evaluator that hides the admissible score bound — reproducing the
/// pre-pruning engine exactly — while forwarding everything else.
struct NoBound<'a>(EdpEvaluator<'a>);

impl mappers::Evaluator for NoBound<'_> {
    fn evaluate(&self, m: &mapping::Mapping) -> Option<(costmodel::Cost, f64)> {
        self.0.evaluate(m)
    }

    fn evaluate_batch(&self, batch: &[mapping::Mapping]) -> Vec<Option<(costmodel::Cost, f64)>> {
        self.0.evaluate_batch(batch)
    }
    // `score_bound` stays the default `None`: pruning disabled.
}

/// Admissible-bound pruning must never change what a search finds: the
/// bound-blind evaluator above (the pre-pruning engine) and the default
/// bound-aware stack must agree on the incumbent, its score, and the
/// sample count at every thread count — while the bound-aware runs
/// actually skip work (`pruned > 0` somewhere across the matrix).
#[test]
fn bound_pruning_preserves_results_and_fires() {
    let p = Problem::conv2d("c", 2, 16, 16, 14, 14, 3, 3);
    let model = DenseModel::new(p, Arch::accel_b());
    let mse = Mse::new(&model);
    let mappers_under_test: Vec<Box<dyn Mapper>> =
        vec![Box::new(Gamma::new()), Box::new(RandomMapper::new())];
    let mut total_pruned = 0usize;
    for mapper in &mappers_under_test {
        let blind = NoBound(EdpEvaluator::new(&model));
        let base = mse.run_guarded_with_evaluator(
            mapper.as_ref(),
            &blind,
            Budget::samples(400),
            11,
            policy(EvalConfig::serial()),
        );
        let bres = base.result.as_ref().expect("bound-blind run produced a result");
        assert_eq!(bres.pruned, 0, "{}: blind evaluator must never prune", mapper.name());
        for threads in [1usize, 2, 8] {
            let pruned_run = mse.run_guarded(
                mapper.as_ref(),
                Budget::samples(400),
                11,
                policy(EvalConfig { threads, cache_capacity: 0 }),
            );
            let pres = pruned_run.result.as_ref().expect("bound-aware run produced a result");
            let tag = format!("{} @ {threads} threads", mapper.name());
            assert_eq!(pres.best, bres.best, "{tag}: pruning changed the incumbent");
            assert_eq!(pres.best_score, bres.best_score, "{tag}: pruning changed the score");
            assert_eq!(pres.evaluated, bres.evaluated, "{tag}: pruning changed the budget walk");
            total_pruned += pres.pruned;
        }
    }
    assert!(total_pruned > 0, "bound pruning never fired across the test matrix");
}

/// One guarded+faulty run: a deterministic per-mapping NaN injector under
/// the reject policy, so a fixed subset of mappings is quarantined no
/// matter which thread (or cache shard) handles them.
fn guarded_run(eval: EvalConfig) -> (mappers::RunOutcome, costmodel::GuardReport) {
    let p = Problem::conv2d("c", 2, 16, 16, 14, 14, 3, 3);
    let faulty =
        FaultyModel::new(DenseModel::new(p, Arch::accel_b()), FaultConfig::nans(0.2, 3));
    let guarded = GuardedModel::dense(faulty, GuardPolicy::Reject);
    let evaluator = EdpEvaluator::new(&guarded);
    let mse = Mse::new(&guarded);
    let outcome = mse.run_guarded_audited(
        &Gamma::new(),
        &evaluator,
        Budget::samples(400),
        5,
        policy(eval),
        &guarded,
    );
    let report = guarded.report();
    (outcome, report)
}

#[test]
fn cache_and_pool_preserve_guard_quarantine_semantics() {
    let (serial, serial_report) = guarded_run(EvalConfig::serial());
    let sres = serial.result.as_ref().expect("serial guarded run produced a result");
    assert!(serial_report.rejections > 0, "fault injector produced no quarantines");

    // Parallel, uncached: identical results AND identical quarantine
    // accounting — the pool must not change what the guard sees.
    let (par, par_report) = guarded_run(EvalConfig { threads: 4, cache_capacity: 0 });
    assert_identical(par.result.as_ref().unwrap(), sres, "guarded parallel");
    assert_eq!(par_report.violations, serial_report.violations);
    assert_eq!(par_report.rejections, serial_report.rejections);
    assert_eq!(
        par.attempts.iter().map(|at| at.quarantined).collect::<Vec<_>>(),
        serial.attempts.iter().map(|at| at.quarantined).collect::<Vec<_>>()
    );

    // Cached: identical search results (a hit must return exactly what a
    // fresh evaluation would, including "rejected"), >0 hits, and *fewer*
    // model calls — dedup is the whole point.
    let (cached, cached_report) = guarded_run(EvalConfig { threads: 4, cache_capacity: 1 << 16 });
    let cres = cached.result.as_ref().expect("cached guarded run produced a result");
    assert_identical(cres, sres, "guarded cached");
    assert!(cres.cache.hits > 0, "gamma run produced no cache hits");
    assert_eq!(cres.cache.hits + cres.cache.misses, cres.evaluated as u64);
    assert!(
        cached_report.evaluations < serial_report.evaluations,
        "cache did not reduce model evaluations ({} vs {})",
        cached_report.evaluations,
        serial_report.evaluations
    );
}
