//! Integration tests for the `mapex serve` daemon, over real TCP.
//!
//! The acceptance bar: with a small queue bound and many concurrent
//! clients, every accepted request gets exactly one response and every
//! excess request gets a structured overload response (never a hang or a
//! dropped connection); a deadline-expired request returns its best-so-far
//! incumbent flagged degraded; a panicking mapper yields a structured
//! error while the daemon keeps serving; and a drain answers everything
//! admitted, exactly once.

use mse::json;
use mse::{serve, ServeConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const PROBLEM: &str = "GEMM;g;B=2,M=32,K=32,N=32";

fn start(cfg: ServeConfig) -> ServerHandle {
    serve(cfg).expect("bind daemon")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        fault_injection: true,
        eval: mse::EvalConfig { threads: 1, cache_capacity: 1 << 12 },
        ..ServeConfig::default()
    }
}

/// One request → one response line, with a generous timeout so a daemon
/// bug shows up as a test failure, not a CI hang.
fn request(addr: SocketAddr, line: &str) -> json::Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    stream.write_all(line.as_bytes()).and_then(|()| stream.write_all(b"\n")).expect("send");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("receive");
    assert!(!resp.trim().is_empty(), "connection closed without a response to: {line}");
    json::parse(&resp).unwrap_or_else(|e| panic!("bad response JSON ({e}): {resp}"))
}

fn assert_ok(v: &json::Value) {
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true), "{}", v.to_text());
}

fn error_code(v: &json::Value) -> String {
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(false), "{}", v.to_text());
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(json::Value::as_str)
        .unwrap_or_else(|| panic!("no error code: {}", v.to_text()))
        .to_string()
}

fn search_line(id: usize, samples: usize, extra: &str) -> String {
    format!(
        "{{\"id\": {id}, \"op\": \"search\", \"problem\": \"{PROBLEM}\", \
         \"samples\": {samples}, \"mapper\": \"random\"{extra}}}"
    )
}

#[test]
fn ping_stats_validate_evaluate_roundtrip() {
    let h = start(test_config());
    let addr = h.local_addr();
    let pong = request(addr, "{\"id\": \"p1\", \"op\": \"ping\"}");
    assert_ok(&pong);
    assert_eq!(pong.get("id").and_then(json::Value::as_str), Some("p1"), "id echoed verbatim");

    // A search, then an evaluate of the mapping it returns.
    let found = request(addr, &search_line(2, 300, ""));
    assert_ok(&found);
    assert_eq!(found.get("degraded").and_then(json::Value::as_bool), Some(false));
    let mapping = found.get("mapping").and_then(json::Value::as_str).expect("mapping").to_string();
    let evald = request(
        addr,
        &format!(
            "{{\"id\": 3, \"op\": \"evaluate\", \"problem\": \"{PROBLEM}\", \
             \"mapping\": {}}}",
            json::escape(&mapping)
        ),
    );
    assert_ok(&evald);
    let score = evald.get("score").and_then(json::Value::as_f64).expect("score");
    let search_score = found.get("score").and_then(json::Value::as_f64).expect("score");
    assert!((score - search_score).abs() <= 1e-9 * score.abs(), "evaluate agrees with search");

    // validate: a good spec and a broken one.
    let ok = request(
        addr,
        "{\"id\": 4, \"op\": \"validate\", \"spec\": \"kind = \\\"problem\\\"\\nname = \\\"g\\\"\\nop = \\\"GEMM\\\"\\n[dims]\\nB = 2\\nM = 8\\nK = 8\\nN = 8\\n\"}",
    );
    assert_ok(&ok);
    assert_eq!(ok.get("kind").and_then(json::Value::as_str), Some("problem"));
    let bad = request(addr, "{\"id\": 5, \"op\": \"validate\", \"spec\": \"kind = \\\"nope\\\"\"}");
    assert_eq!(error_code(&bad), "bad-spec");
    let kind = bad.get("error").and_then(|e| e.get("kind")).and_then(json::Value::as_str);
    assert_eq!(kind, Some("permanent"), "spec errors are not retryable");

    let stats = request(addr, "{\"id\": 6, \"op\": \"stats\"}");
    assert_ok(&stats);
    assert!(stats.get("uptime_ms").and_then(json::Value::as_u64).is_some());
    assert_eq!(stats.get("queue_capacity").and_then(json::Value::as_u64), Some(64));
    assert!(stats.get("cache").and_then(|c| c.get("misses")).is_some());
    assert!(stats.get("guard").and_then(|g| g.get("violations")).is_some());

    h.drain();
    let stats = h.join();
    assert_eq!(stats.accepted, stats.completed, "every admitted request was answered");
}

#[test]
fn malformed_requests_get_structured_permanent_errors() {
    let h = start(test_config());
    let addr = h.local_addr();
    assert_eq!(error_code(&request(addr, "{not json")), "bad-json");
    assert_eq!(error_code(&request(addr, "{\"id\": 1}")), "bad-request");
    assert_eq!(error_code(&request(addr, "{\"id\": 1, \"op\": \"dance\"}")), "bad-request");
    assert_eq!(
        error_code(&request(
            addr,
            "{\"id\": 1, \"op\": \"search\", \"problem\": \"GEMM;bad spec\"}"
        )),
        "bad-spec"
    );
    assert_eq!(
        error_code(&request(
            addr,
            &format!(
                "{{\"id\": 1, \"op\": \"search\", \"problem\": \"{PROBLEM}\", \
                 \"mapper\": \"nope\"}}"
            )
        )),
        "bad-request"
    );
    // All of the above are client mistakes: kind must say so.
    let v = request(addr, "{oops");
    let kind = v.get("error").and_then(|e| e.get("kind")).and_then(json::Value::as_str);
    assert_eq!(kind, Some("permanent"));
    // The daemon is still healthy after a parade of garbage.
    assert_ok(&request(addr, "{\"id\": 9, \"op\": \"ping\"}"));
    h.drain();
    h.join();
}

/// Queue bound Q=2, N=16 concurrent clients: every request is answered
/// exactly once — accepted ones with a result, excess ones with a
/// structured overload response carrying a retry hint. No hangs, no
/// dropped connections.
#[test]
fn sixteen_clients_against_queue_of_two_all_answered_exactly_once() {
    let cfg = ServeConfig { queue_capacity: 2, ..test_config() };
    let h = start(cfg);
    let addr = h.local_addr();
    let n = 16;
    let handles: Vec<_> = (0..n)
        .map(|i| {
            std::thread::spawn(move || {
                // Enough work per request that the single worker is busy
                // while later clients arrive.
                request(addr, &search_line(i, 4_000, ", \"seed\": 1"))
            })
        })
        .collect();
    let responses: Vec<json::Value> =
        handles.into_iter().map(|t| t.join().expect("client thread")).collect();
    assert_eq!(responses.len(), n, "one response per client");

    let mut seen_ids = std::collections::BTreeSet::new();
    let mut ok_count = 0u64;
    let mut overloaded = 0u64;
    for v in &responses {
        let id = v.get("id").and_then(json::Value::as_u64).expect("numeric id echoed");
        assert!(seen_ids.insert(id), "duplicate response for id {id}");
        if v.get("ok").and_then(json::Value::as_bool) == Some(true) {
            assert!(v.get("mapping").and_then(json::Value::as_str).is_some());
            ok_count += 1;
        } else {
            assert_eq!(error_code(v), "overloaded");
            let err = v.get("error").expect("error object");
            assert_eq!(err.get("kind").and_then(json::Value::as_str), Some("transient"));
            let hint = err.get("retry_after_ms").and_then(json::Value::as_u64);
            assert!(hint.is_some_and(|ms| ms > 0), "overload carries a retry hint");
            overloaded += 1;
        }
    }
    assert_eq!(seen_ids.len(), n, "all ids answered");
    assert_eq!(ok_count + overloaded, n as u64);
    assert!(ok_count >= 1, "at least the first request is admitted");
    assert!(overloaded >= 1, "queue of 2 must shed some of 16 bursty clients");

    h.drain();
    let stats = h.join();
    assert_eq!(stats.accepted, stats.completed, "exactly-once: admitted == answered");
    assert_eq!(stats.accepted, ok_count);
    assert_eq!(stats.rejected_overload, overloaded);
}

/// A request whose deadline expires mid-search comes back `ok` with the
/// best-so-far incumbent and `"degraded": true` — a salvage, not an error.
#[test]
fn expired_deadline_salvages_best_so_far_flagged_degraded() {
    let h = start(test_config());
    let addr = h.local_addr();
    let v = request(
        addr,
        &format!(
            "{{\"id\": 1, \"op\": \"search\", \"problem\": \"{PROBLEM}\", \
             \"mapper\": \"deadline-ignorer\", \"samples\": 100000000, \
             \"deadline_ms\": 400}}"
        ),
    );
    assert_ok(&v);
    assert_eq!(v.get("degraded").and_then(json::Value::as_bool), Some(true), "{}", v.to_text());
    assert_eq!(v.get("status").and_then(json::Value::as_str), Some("watchdog-stopped"));
    assert!(v.get("mapping").and_then(json::Value::as_str).is_some(), "incumbent salvaged");
    let score = v.get("score").and_then(json::Value::as_f64).expect("score");
    assert!(score.is_finite());

    h.drain();
    let stats = h.join();
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.accepted, stats.completed);
}

/// A mapper that panics produces a structured transient error; the daemon
/// keeps serving afterwards.
#[test]
fn panicking_mapper_is_isolated_and_daemon_keeps_serving() {
    let h = start(test_config());
    let addr = h.local_addr();
    let v = request(
        addr,
        &format!(
            "{{\"id\": 1, \"op\": \"search\", \"problem\": \"{PROBLEM}\", \
             \"mapper\": \"panic-injector\", \"retries\": 1}}"
        ),
    );
    assert_eq!(error_code(&v), "mapper-panicked");
    let err = v.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(json::Value::as_str), Some("transient"));
    assert!(
        err.get("message").and_then(json::Value::as_str).is_some_and(|m| m.contains("injected")),
        "panic payload preserved: {}",
        v.to_text()
    );
    // Same daemon, next request: unharmed.
    let after = request(addr, &search_line(2, 200, ""));
    assert_ok(&after);
    h.drain();
    let stats = h.join();
    assert_eq!(stats.accepted, stats.completed, "panicked request still answered exactly once");
}

/// The per-model cache persists across requests: re-running the same
/// search hits it.
#[test]
fn repeat_searches_share_the_model_cache() {
    let h = start(test_config());
    let addr = h.local_addr();
    let first = request(addr, &search_line(1, 500, ", \"seed\": 7"));
    assert_ok(&first);
    let second = request(addr, &search_line(2, 500, ", \"seed\": 7"));
    assert_ok(&second);
    let hits = second.get("cache_hits").and_then(json::Value::as_u64).expect("cache_hits");
    assert!(hits > 0, "identical search must hit the shared cache: {}", second.to_text());
    // Scores are deterministic across the cache boundary.
    assert_eq!(
        first.get("score").and_then(json::Value::as_f64),
        second.get("score").and_then(json::Value::as_f64)
    );
    h.drain();
    h.join();
}

/// Drain with work in flight: the admitted request is finished and
/// answered, a request arriving during the drain gets a structured
/// `draining` rejection, and join() accounts for everything.
#[test]
fn drain_finishes_in_flight_work_and_rejects_new_requests() {
    let cfg = ServeConfig { queue_capacity: 8, ..test_config() };
    let h = start(cfg);
    let addr = h.local_addr();
    // Slow request: deadline-ignorer runs the full 1.5s deadline.
    let in_flight = std::thread::spawn(move || {
        request(
            addr,
            &format!(
                "{{\"id\": 1, \"op\": \"search\", \"problem\": \"{PROBLEM}\", \
                 \"mapper\": \"deadline-ignorer\", \"samples\": 100000000, \
                 \"deadline_ms\": 1500}}"
            ),
        )
    });
    // Let it get admitted, then drain.
    std::thread::sleep(Duration::from_millis(400));
    h.drain();
    // A client arriving mid-drain is refused in a structured way (the
    // connection was accepted before the drain started, so the reader
    // still answers it).
    let late = TcpStream::connect(addr);
    if let Ok(mut s) = late {
        s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        if s.write_all(search_line(2, 100, "").as_bytes()).and_then(|()| s.write_all(b"\n")).is_ok()
        {
            let mut resp = String::new();
            let _ = BufReader::new(s).read_line(&mut resp);
            if !resp.trim().is_empty() {
                let v = json::parse(&resp).expect("response parses");
                assert_eq!(error_code(&v), "draining");
            }
        }
    }
    let v = in_flight.join().expect("in-flight client");
    assert_ok(&v);
    assert_eq!(v.get("degraded").and_then(json::Value::as_bool), Some(true));
    let stats = h.join();
    assert_eq!(stats.accepted, stats.completed, "drain answered the backlog exactly once");
}

/// `health` answers on a standalone daemon — role, draining flag, queue
/// depth, zero workers — and a sweep without any fleet runs inline with
/// the same response shape a coordinator produces.
#[test]
fn health_and_standalone_sweep_roundtrip() {
    let h = start(test_config());
    let addr = h.local_addr();
    let v = request(addr, "{\"id\": 1, \"op\": \"health\"}");
    assert_ok(&v);
    assert_eq!(v.get("role").and_then(json::Value::as_str), Some("standalone"));
    assert_eq!(v.get("draining").and_then(json::Value::as_bool), Some(false));
    assert_eq!(v.get("workers_connected").and_then(json::Value::as_u64), Some(0));
    assert_eq!(v.get("queue_depth").and_then(json::Value::as_u64), Some(0));
    assert!(v.get("uptime_ms").and_then(json::Value::as_u64).is_some());

    let sweep = request(
        addr,
        &format!(
            "{{\"id\": 2, \"op\": \"sweep\", \"layers\": [\"{PROBLEM}\", \
             \"GEMM;h;B=2,M=16,K=16,N=16\"], \"mapper\": \"random\", \"samples\": 150}}"
        ),
    );
    assert_ok(&sweep);
    assert_eq!(sweep.get("layers_total").and_then(json::Value::as_u64), Some(2));
    assert_eq!(sweep.get("layers_from_checkpoint").and_then(json::Value::as_u64), Some(0));
    assert!(matches!(sweep.get("fleet"), Some(json::Value::Null)), "{}", sweep.to_text());
    let layers = sweep.get("layers").and_then(json::Value::as_array).expect("layers array");
    assert_eq!(layers.len(), 2);
    for l in layers {
        assert!(l.get("best_score").and_then(json::Value::as_f64).is_some_and(f64::is_finite));
        assert!(l.get("mapping").and_then(json::Value::as_str).is_some());
    }

    // A named checkpoint needs --checkpoint-dir; without one the request
    // is refused up front, not after hours of sweeping.
    let bad = request(
        addr,
        &format!(
            "{{\"id\": 3, \"op\": \"sweep\", \"layers\": [\"{PROBLEM}\"], \
             \"checkpoint\": \"s.ckpt\"}}"
        ),
    );
    assert_eq!(error_code(&bad), "bad-request");
    // Checkpoint names that escape the directory or collide with the
    // writer's own staging suffixes are permanent errors.
    for name in ["../escape.ckpt", ".hidden", "x.ckpt.bak", "x.ckpt.tmp", ""] {
        let v = request(
            addr,
            &format!(
                "{{\"id\": 4, \"op\": \"sweep\", \"layers\": [\"{PROBLEM}\"], \
                 \"checkpoint\": {}}}",
                json::escape(name)
            ),
        );
        assert_eq!(error_code(&v), "bad-request", "checkpoint name {name:?}");
    }
    h.drain();
    let stats = h.join();
    assert_eq!(stats.accepted, stats.completed);
}

/// Oversized request lines are refused with a structured response before
/// the daemon buffers unbounded input.
#[test]
fn oversized_request_is_refused_not_buffered() {
    let cfg = ServeConfig { max_request_bytes: 1024, ..test_config() };
    let h = start(cfg);
    let addr = h.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let huge = format!("{{\"id\": 1, \"op\": \"ping\", \"pad\": \"{}\"}}", "x".repeat(4096));
    stream.write_all(huge.as_bytes()).and_then(|()| stream.write_all(b"\n")).expect("send");
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).expect("receive");
    let v = json::parse(&resp).expect("response parses");
    assert_eq!(error_code(&v), "request-too-large");
    // The daemon survives and serves the next connection.
    assert_ok(&request(addr, "{\"id\": 2, \"op\": \"ping\"}"));
    h.drain();
    h.join();
}
