//! Checkpoint-corruption robustness: a torn or bit-rotted checkpoint file
//! must surface as [`CheckpointError::Corrupt`] (or parse as a valid
//! prefix of the sweep) — never a panic — and the rolling `.bak` written
//! by [`SweepCheckpoint::save`] must rescue a corrupted primary.

use mse::{CheckpointError, LayerCheckpoint, SweepCheckpoint};
use std::fs;
use std::path::{Path, PathBuf};

fn sample_checkpoint() -> SweepCheckpoint {
    SweepCheckpoint {
        seed: 42,
        strategy: "by-similarity".to_string(),
        budget_samples: Some(500),
        budget_seconds: None,
        layers: vec![
            LayerCheckpoint {
                name: "conv1".to_string(),
                init_score: 125.5,
                best_score: 17.25,
                converge_sample: 210,
                evaluated: 500,
                elapsed_secs: 0.75,
                mapping: Some("o:0,1,2,3;t:1,2,1,4;s:1,1,1,1".to_string()),
                latency_cycles: 64.0,
                energy_uj: 0.224,
            },
            LayerCheckpoint {
                name: "conv2".to_string(),
                init_score: 90.0,
                best_score: f64::INFINITY,
                converge_sample: 0,
                evaluated: 500,
                elapsed_secs: 1.5,
                mapping: None,
                latency_cycles: f64::INFINITY,
                energy_uj: f64::INFINITY,
            },
        ],
    }
}

/// A scratch directory unique per test (no tempdir dependency).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mse-ckpt-corruption-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_primary_only(dir: &Path, bytes: &[u8]) -> PathBuf {
    let path = dir.join("sweep.ckpt");
    fs::write(&path, bytes).expect("write checkpoint bytes");
    // These tests target the *parser*; drop the backup so `load` cannot
    // rescue the corruption.
    let _ = fs::remove_file(SweepCheckpoint::backup_path(&path));
    path
}

/// Truncation at *every* byte offset: a torn write can stop anywhere, and
/// wherever it stops the loader must answer Corrupt (or, for a lucky
/// prefix that still parses, a checkpoint whose layers are a prefix of
/// the original) — and must never panic.
#[test]
fn truncation_at_every_offset_is_corrupt_or_valid_prefix() {
    let dir = scratch("truncate");
    let ckpt = sample_checkpoint();
    let full = ckpt.to_json();
    let bytes = full.as_bytes();
    for cut in 0..bytes.len() {
        let path = write_primary_only(&dir, &bytes[..cut]);
        match SweepCheckpoint::load(&path) {
            Err(CheckpointError::Corrupt(msg)) => {
                assert!(!msg.is_empty(), "cut at {cut}: Corrupt must carry a diagnostic");
            }
            Ok(parsed) => {
                // A truncated JSON document virtually never reparses, but
                // if it does, it must describe a prefix of the real sweep
                // under the same identity — resuming from it is safe.
                assert_eq!(parsed.seed, ckpt.seed, "cut at {cut}");
                assert_eq!(parsed.strategy, ckpt.strategy, "cut at {cut}");
                assert!(parsed.layers.len() <= ckpt.layers.len(), "cut at {cut}");
                for (got, want) in parsed.layers.iter().zip(&ckpt.layers) {
                    assert_eq!(got.name, want.name, "cut at {cut}");
                }
            }
            Err(e) => panic!("cut at {cut}: unexpected error class: {e}"),
        }
    }
    // The untruncated file round-trips exactly.
    let path = write_primary_only(&dir, bytes);
    let parsed = SweepCheckpoint::load(&path).expect("full file parses");
    assert_eq!(parsed.layers.len(), ckpt.layers.len());
    assert_eq!(parsed.layers[0].mapping, ckpt.layers[0].mapping);
    let _ = fs::remove_dir_all(&dir);
}

/// Bit rot: flipping a single bit anywhere in the file must never panic
/// the loader. (Many flips land in numeric or string payloads and still
/// parse; those must at least preserve the layer-list shape invariant.)
#[test]
fn single_bit_flips_never_panic() {
    let dir = scratch("bitflip");
    let ckpt = sample_checkpoint();
    let clean = ckpt.to_json().into_bytes();
    for byte_idx in 0..clean.len() {
        for bit in 0..8 {
            let mut rotted = clean.clone();
            rotted[byte_idx] ^= 1 << bit;
            let path = write_primary_only(&dir, &rotted);
            match SweepCheckpoint::load(&path) {
                Ok(parsed) => assert!(
                    parsed.layers.len() <= ckpt.layers.len() + 1,
                    "byte {byte_idx} bit {bit}: shape exploded"
                ),
                Err(CheckpointError::Corrupt(_) | CheckpointError::Io(_)) => {}
                Err(e) => {
                    panic!("byte {byte_idx} bit {bit}: unexpected error class: {e}")
                }
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Long-running sweeps save after every layer; the scratch directory must
/// not grow with the number of saves. Exactly one rolling `.bak` per
/// checkpoint path, no stranded `.tmp` staging files, and the backup is
/// always exactly one generation behind the primary.
#[test]
fn repeated_saves_keep_exactly_one_backup_and_no_strays() {
    let dir = scratch("rolling");
    let path = dir.join("sweep.ckpt");
    let mut ckpt = sample_checkpoint();
    ckpt.layers.clear();
    for generation in 0..12 {
        let mut layer = sample_checkpoint().layers[0].clone();
        layer.name = format!("layer{generation}");
        ckpt.layers.push(layer);
        ckpt.save(&path).expect("save");

        let mut names: Vec<String> = fs::read_dir(&dir)
            .expect("read scratch dir")
            .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        let expected: &[&str] =
            if generation == 0 { &["sweep.ckpt"] } else { &["sweep.ckpt", "sweep.ckpt.bak"] };
        assert_eq!(names, expected, "after save #{}", generation + 1);

        let primary = SweepCheckpoint::load(&path).expect("primary parses");
        assert_eq!(primary.layers.len(), generation + 1);
        if generation > 0 {
            let bak = SweepCheckpoint::load(&SweepCheckpoint::backup_path(&path))
                .expect("backup parses");
            assert_eq!(bak.layers.len(), generation, ".bak is exactly one save behind");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The durability contract of `save`: the previous checkpoint survives as
/// `.bak`, and `load` falls back to it when the primary is corrupted.
#[test]
fn backup_rescues_corrupted_primary() {
    let dir = scratch("backup");
    let path = dir.join("sweep.ckpt");
    let mut ckpt = sample_checkpoint();
    ckpt.layers.truncate(1);
    ckpt.save(&path).expect("first save");
    let newer = sample_checkpoint();
    newer.save(&path).expect("second save");
    let bak = SweepCheckpoint::backup_path(&path);
    assert!(bak.exists(), "second save must keep the previous file as .bak");
    let bak_parsed = SweepCheckpoint::load(&bak).expect("backup parses");
    assert_eq!(bak_parsed.layers.len(), 1, ".bak is the previous generation");

    // Corrupt the primary: load() must rescue via the backup, handing the
    // sweep its last good (one-layer-behind) state.
    fs::write(&path, b"{\"seed\": 42, \"str").expect("corrupt primary");
    let rescued = SweepCheckpoint::load(&path).expect("backup fallback");
    assert_eq!(rescued.layers.len(), 1);
    assert_eq!(rescued.layers[0].name, "conv1");

    // Delete the primary outright (crash between save's two renames):
    // the backup still resumes the sweep.
    fs::remove_file(&path).expect("drop primary");
    let rescued = SweepCheckpoint::load(&path).expect("missing-primary fallback");
    assert_eq!(rescued.layers.len(), 1);

    // Both corrupt: the diagnostic says the backup was tried too.
    fs::write(&path, b"not json").expect("re-corrupt primary");
    fs::write(&bak, b"also not json").expect("corrupt backup");
    match SweepCheckpoint::load(&path) {
        Err(CheckpointError::Corrupt(msg)) => {
            assert!(msg.contains("backup"), "diagnostic should mention the backup: {msg}")
        }
        Ok(_) => panic!("expected Corrupt, got a parsed checkpoint"),
        Err(e) => panic!("expected Corrupt, got {e}"),
    }
    // Backup missing entirely: still a structured Corrupt, never a panic.
    fs::remove_file(&bak).expect("drop backup");
    assert!(matches!(SweepCheckpoint::load(&path), Err(CheckpointError::Corrupt(_))));
    let _ = fs::remove_dir_all(&dir);
}
