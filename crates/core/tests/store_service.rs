//! Integration tests for the warm-start store wired through the daemon.
//!
//! The acceptance bar: a completed search deposits its incumbent and a
//! later similar search reports a warm hit; a corrupt (even adversarial)
//! store can lower the hit rate but never changes search results or
//! crashes the daemon; `"auto"` resolves to a concrete bandit arm
//! deterministically; island searches with warm seeds merge to the same
//! incumbent on every fleet topology; and sweeps deposit into the store
//! without perturbing their byte-identical checkpoints.

use arch::Arch;
use costmodel::{DenseModel, GuardConfig, GuardPolicy, GuardedModel};
use mappers::{Budget, Gamma, Mapper};
use mse::json;
use mse::{samples_to_reach, Mse};
use mse::{serve, FleetConfig, ServeConfig, ServeRole, ServerHandle, SweepCheckpoint, WarmStore};
use problem::Problem;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

const PROBLEM: &str = "GEMM;g;B=2,M=32,K=32,N=32";
/// One dim bound away from [`PROBLEM`]: edit distance 1, well inside the
/// recall radius, so it warm-starts from `PROBLEM`'s incumbent.
const NEIGHBOR: &str = "GEMM;h;B=2,M=48,K=32,N=32";

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mse-store-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn config(store: Option<&Path>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        fault_injection: true,
        eval: mse::EvalConfig { threads: 1, cache_capacity: 1 << 12 },
        store: store.map(Path::to_path_buf),
        ..ServeConfig::default()
    }
}

fn request(addr: SocketAddr, line: &str) -> json::Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
    stream.write_all(line.as_bytes()).and_then(|()| stream.write_all(b"\n")).expect("send");
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).expect("receive");
    assert!(!resp.trim().is_empty(), "connection closed without a response to: {line}");
    json::parse(&resp).unwrap_or_else(|e| panic!("bad response JSON ({e}): {resp}"))
}

fn assert_ok(v: &json::Value) {
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true), "{}", v.to_text());
}

fn search_line(id: usize, problem: &str, mapper: &str, samples: usize, seed: u64) -> String {
    format!(
        "{{\"id\": {id}, \"op\": \"search\", \"problem\": \"{problem}\", \
         \"mapper\": \"{mapper}\", \"samples\": {samples}, \"seed\": {seed}}}"
    )
}

fn store_stat(v: &json::Value, key: &str) -> u64 {
    v.get("store")
        .and_then(|s| s.get(key))
        .and_then(json::Value::as_u64)
        .unwrap_or_else(|| panic!("missing store.{key}: {}", v.to_text()))
}

/// Deposit → similar search warm-starts; `stats` and `health` surface the
/// store counters end to end.
#[test]
fn deposit_then_similar_search_reports_warm_hit() {
    let dir = scratch("warmhit");
    let store_path = dir.join("warm.store");
    let h = serve(config(Some(&store_path))).expect("bind daemon");
    let addr = h.local_addr();

    // Cold: the store is empty, so no warm start — and the response says so.
    let first = request(addr, &search_line(1, PROBLEM, "gamma", 300, 7));
    assert_ok(&first);
    assert_eq!(
        first.get("warm_start").and_then(json::Value::as_bool),
        Some(false),
        "{}",
        first.to_text()
    );

    // The finished search deposited; a neighbor layer now warm-starts.
    let second = request(addr, &search_line(2, NEIGHBOR, "gamma", 300, 7));
    assert_ok(&second);
    assert_eq!(
        second.get("warm_start").and_then(json::Value::as_bool),
        Some(true),
        "{}",
        second.to_text()
    );
    assert_eq!(
        second.get("warm_distance").and_then(json::Value::as_u64),
        Some(1),
        "one dim bound differs: {}",
        second.to_text()
    );

    // stats carries the full store block; health the same.
    let stats = request(addr, "{\"id\": 3, \"op\": \"stats\"}");
    assert_ok(&stats);
    assert_eq!(store_stat(&stats, "deposits"), 2, "{}", stats.to_text());
    assert_eq!(store_stat(&stats, "hits"), 1, "{}", stats.to_text());
    assert_eq!(store_stat(&stats, "misses"), 1, "{}", stats.to_text());
    assert_eq!(store_stat(&stats, "quarantined"), 0, "{}", stats.to_text());
    let rate = stats
        .get("store")
        .and_then(|s| s.get("hit_rate"))
        .and_then(json::Value::as_f64)
        .expect("hit_rate");
    assert!((rate - 0.5).abs() < 1e-9, "1 hit / 2 recalls: {}", stats.to_text());
    let health = request(addr, "{\"id\": 4, \"op\": \"health\"}");
    assert_ok(&health);
    assert!(store_stat(&health, "entries") >= 2, "{}", health.to_text());

    h.drain();
    h.join();
    // The store survives the daemon: a fresh process sees both deposits.
    assert_eq!(WarmStore::open(&store_path).expect("reopen").len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store full of garbage — or of adversarially crafted valid-looking
/// records — never changes what a search returns: results are bit-identical
/// to a daemon with no store at all, and damage is quarantined, not fatal.
#[test]
fn corrupt_store_never_changes_search_results() {
    // Ground truth: no store at all.
    let bare = serve(config(None)).expect("bind bare daemon");
    let baseline = request(bare.local_addr(), &search_line(1, PROBLEM, "gamma", 300, 11));
    assert_ok(&baseline);
    bare.kill();

    let dir = scratch("corrupt");
    // Case 1: pure garbage bytes.
    let garbage = dir.join("garbage.store");
    std::fs::write(&garbage, b"\x00\xffnot a store\nws1 deadbeef half a rec").unwrap();
    // Case 2: a CRC-clean, parseable record whose mapping cannot be made
    // legal for this arch — one memory level where the arch has several.
    // Tile inflation would be healed by `scale_to`'s capacity repair, but a
    // wrong level count survives rescaling and must be quarantined at the
    // re-validation gate.
    let poisoned = dir.join("poisoned.store");
    {
        let arch = Arch::accel_b();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        let store = WarmStore::open(&poisoned).unwrap();
        let donor = problem::codec::from_spec("GEMM;d;B=2,M=32,K=32,N=32").unwrap();
        let m = mapping::Mapping::new(vec![mapping::LevelMapping::unit(donor.num_dims())]);
        store.deposit(fp, &donor, &m, "gamma", 1.0, 1).unwrap();
    }

    for (label, path) in [("garbage", &garbage), ("poisoned", &poisoned)] {
        let h = serve(config(Some(path))).expect("bind daemon with damaged store");
        let addr = h.local_addr();
        let v = request(addr, &search_line(1, PROBLEM, "gamma", 300, 11));
        assert_ok(&v);
        assert_eq!(
            v.get("warm_start").and_then(json::Value::as_bool),
            Some(false),
            "{label}: nothing in this store may seed a search: {}",
            v.to_text()
        );
        assert_eq!(
            v.get("score").and_then(json::Value::as_f64),
            baseline.get("score").and_then(json::Value::as_f64),
            "{label} store changed the score"
        );
        assert_eq!(
            v.get("mapping").and_then(json::Value::as_str),
            baseline.get("mapping").and_then(json::Value::as_str),
            "{label} store changed the mapping"
        );
        let stats = request(addr, "{\"id\": 2, \"op\": \"stats\"}");
        assert!(
            store_stat(&stats, "quarantined") >= 1,
            "{label}: damage is counted, never silent: {}",
            stats.to_text()
        );
        h.drain();
        h.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `"auto"` is a virtual mapper: the daemon resolves it through the bandit
/// (deterministically — an empty store always yields the first arm) and
/// reports the resolved name. Sweeps refuse it: their checkpoints must be
/// replayable without consulting a store.
#[test]
fn auto_mapper_resolves_deterministically() {
    let dir = scratch("auto");
    let h = serve(config(Some(&dir.join("warm.store")))).expect("bind daemon");
    let addr = h.local_addr();
    let v = request(addr, &search_line(1, PROBLEM, "auto", 200, 3));
    assert_ok(&v);
    let resolved = v.get("mapper").and_then(json::Value::as_str).expect("resolved mapper");
    assert_eq!(resolved, mse::BANDIT_ARMS[0], "empty store explores the first arm");

    // With history, the choice is still a pure function of store contents:
    // the same request resolves to some arm, never an error.
    let again = request(addr, &search_line(2, PROBLEM, "auto", 200, 3));
    assert_ok(&again);
    let arm = again.get("mapper").and_then(json::Value::as_str).expect("resolved mapper");
    assert!(mse::BANDIT_ARMS.contains(&arm), "unknown arm {arm}");

    let sweep = request(
        addr,
        &format!(
            "{{\"id\": 3, \"op\": \"sweep\", \"layers\": [\"{PROBLEM}\"], \
             \"mapper\": \"auto\", \"samples\": 100}}"
        ),
    );
    assert_eq!(sweep.get("ok").and_then(json::Value::as_bool), Some(false), "{}", sweep.to_text());

    h.drain();
    h.join();
    let _ = std::fs::remove_dir_all(&dir);

    // Without a store, "auto" still works (fixed fallback arm) rather than
    // failing requests that worked yesterday.
    let bare = serve(config(None)).expect("bind bare daemon");
    let v = request(bare.local_addr(), &search_line(4, PROBLEM, "auto", 200, 3));
    assert_ok(&v);
    assert_eq!(v.get("mapper").and_then(json::Value::as_str), Some(mse::BANDIT_ARMS[0]));
    bare.kill();
}

// ---------------------------------------------------------------------------
// Fleet topology invariance with the store enabled
// ---------------------------------------------------------------------------

fn fast_fleet() -> FleetConfig {
    FleetConfig {
        heartbeat_ms: 100,
        lease_ms: 500,
        steal_after_ms: 10_000,
        shard_slots: 2,
        reconnect_max_ms: 300,
        shard_retries: 2,
        shard_delay_ms: 0,
    }
}

fn boot_fleet(store: &Path, workers: usize) -> (ServerHandle, SocketAddr, Vec<ServerHandle>) {
    let coordinator = serve(ServeConfig {
        role: ServeRole::Coordinator,
        fleet: fast_fleet(),
        ..config(Some(store))
    })
    .expect("bind coordinator");
    let addr = coordinator.local_addr();
    let workers: Vec<ServerHandle> = (0..workers)
        .map(|_| {
            serve(ServeConfig {
                role: ServeRole::Worker { coordinator: addr.to_string() },
                fleet: fast_fleet(),
                ..config(None) // workers never open a store
            })
            .expect("bind worker")
        })
        .collect();
    for _ in 0..400 {
        let v = request(addr, "{\"id\": 0, \"op\": \"health\"}");
        if v.get("workers_connected").and_then(json::Value::as_u64) == Some(workers.len() as u64)
        {
            return (coordinator, addr, workers);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("workers never registered");
}

/// Island search with a warm seed riding the shard payload: the same
/// pre-populated store yields the same incumbent, score, and evaluation
/// count on every topology — standalone, 1 worker, 2 workers. The warm
/// seed is resolved once, coordinator-side, so resharding cannot lose or
/// change it.
#[test]
fn island_search_with_warm_seed_is_topology_invariant() {
    let dir = scratch("islands");
    // One canonical store, copied per run so every topology queries (and
    // deposits into) identical bytes.
    let canonical = dir.join("canonical.store");
    {
        let arch = Arch::accel_b();
        let fp = WarmStore::arch_fingerprint(&arch, None);
        let store = WarmStore::open(&canonical).unwrap();
        let donor = problem::codec::from_spec(PROBLEM).unwrap();
        let m = mapping::Mapping::trivial(&donor, &arch);
        store.deposit(fp, &donor, &m, "gamma", 500.0, 10).unwrap();
    }
    let line = format!(
        "{{\"id\": 1, \"op\": \"search\", \"problem\": \"{NEIGHBOR}\", \
         \"mapper\": \"gamma\", \"samples\": 240, \"seed\": 5, \"islands\": 4}}"
    );

    let run = |tag: &str, workers: usize| -> json::Value {
        let store = dir.join(format!("{tag}.store"));
        std::fs::copy(&canonical, &store).expect("copy store");
        if workers == 0 {
            let h = serve(config(Some(&store))).expect("bind standalone");
            let v = request(h.local_addr(), &line);
            h.kill();
            v
        } else {
            let (coordinator, addr, worker_handles) = boot_fleet(&store, workers);
            let v = request(addr, &line);
            for w in worker_handles {
                w.kill();
            }
            coordinator.kill();
            v
        }
    };

    let standalone = run("standalone", 0);
    let one = run("one", 1);
    let two = run("two", 2);
    for v in [&standalone, &one, &two] {
        assert_ok(v);
        assert_eq!(
            v.get("warm_start").and_then(json::Value::as_bool),
            Some(true),
            "{}",
            v.to_text()
        );
    }
    for (label, v) in [("1 worker", &one), ("2 workers", &two)] {
        assert_eq!(
            standalone.get("score").and_then(json::Value::as_f64),
            v.get("score").and_then(json::Value::as_f64),
            "score diverged on {label}"
        );
        assert_eq!(
            standalone.get("mapping").and_then(json::Value::as_str),
            v.get("mapping").and_then(json::Value::as_str),
            "mapping diverged on {label}"
        );
        assert_eq!(
            standalone.get("evaluated").and_then(json::Value::as_u64),
            v.get("evaluated").and_then(json::Value::as_u64),
            "evaluation accounting diverged on {label}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sweeps deposit their per-layer incumbents but never *read* the store
/// (resume must re-derive the exact original shards), so a sweep's
/// checkpoint is byte-identical with and without a store.
#[test]
fn sweep_deposits_without_perturbing_checkpoints() {
    let layers: Vec<String> =
        (0..3).map(|i| format!("GEMM;l{i};B=2,M=16,K={},N=16", 16 + 8 * i)).collect();
    let quoted: Vec<String> = layers.iter().map(|l| json::escape(l)).collect();
    let line = format!(
        "{{\"id\": 1, \"op\": \"sweep\", \"layers\": [{}], \"mapper\": \"random\", \
         \"samples\": 120, \"seed\": 9, \"checkpoint\": \"sweep.ckpt\"}}",
        quoted.join(", ")
    );

    let run = |store: Option<&Path>, tag: &str| -> (Vec<u8>, PathBuf) {
        let dir = scratch(tag);
        let h = serve(ServeConfig {
            checkpoint_dir: Some(dir.clone()),
            ..config(store)
        })
        .expect("bind daemon");
        let v = request(h.local_addr(), &line);
        assert_ok(&v);
        h.drain();
        h.join();
        (std::fs::read(dir.join("sweep.ckpt")).expect("checkpoint"), dir)
    };

    let (cold_bytes, cold_dir) = run(None, "sweep-cold");
    let store_dir = scratch("sweep-store");
    let store_path = store_dir.join("warm.store");
    let (warm_bytes, warm_dir) = run(Some(&store_path), "sweep-warm");
    assert_eq!(cold_bytes, warm_bytes, "store changed the sweep checkpoint");

    // ...and every layer's incumbent was deposited for future searches.
    let store = WarmStore::open(&store_path).expect("reopen store");
    assert_eq!(store.len(), layers.len(), "one deposit per layer");
    // Sanity: the checkpoint both runs wrote parses.
    SweepCheckpoint::load(&cold_dir.join("sweep.ckpt")).expect("checkpoint parses");
    for d in [cold_dir, warm_dir, store_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

// ---------------------------------------------------------------------------
// Measured warm-start win (the number EXPERIMENTS.md reports)
// ---------------------------------------------------------------------------

/// The paper's §5.1 claim, replayed through the store's exact recall path:
/// seeding a neighbor layer's search with a rescaled prior reaches the cold
/// run's incumbent cost in fewer evaluations. Printed ratio feeds
/// EXPERIMENTS.md (run with `--nocapture` to see it).
#[test]
fn warm_start_reaches_cold_incumbent_in_fewer_samples() {
    let arch = Arch::accel_b();
    let donor = problem::codec::from_spec(PROBLEM).unwrap();
    let target_problem = problem::codec::from_spec(NEIGHBOR).unwrap();
    let guarded = |p: &Problem| {
        GuardedModel::new(
            Box::new(DenseModel::new(p.clone(), arch.clone())),
            GuardConfig::new(GuardPolicy::Reject),
        )
    };

    // The prior: a finished search on the donor layer (what a deposit holds).
    let donor_model = guarded(&donor);
    let donor_result =
        Mse::new(&donor_model).run(&Gamma::new(), Budget::samples(400), 17);
    let (prior, _) = donor_result.best.clone().expect("donor incumbent");

    // Cold vs warm on the neighbor, same seed and budget.
    let model = guarded(&target_problem);
    let mse = Mse::new(&model);
    let cold = mse.run(&Gamma::new(), Budget::samples(400), 23);
    let scaled = prior
        .scale_to(&donor, &target_problem, &arch)
        .expect("prior rescales to the neighbor");
    assert!(scaled.is_legal(&target_problem, &arch), "rescaled prior is legal");
    let mut warm_mapper = Gamma::new();
    warm_mapper.set_seeds(vec![scaled]);
    let warm = mse.run(&warm_mapper, Budget::samples(400), 23);

    // Common target both runs reached: the worse of the two finals.
    let target = cold.best_score.max(warm.best_score);
    let cold_samples = samples_to_reach(&cold, target).expect("cold reaches its own final");
    let warm_samples = samples_to_reach(&warm, target).expect("warm reaches the target");
    assert!(
        warm_samples <= cold_samples,
        "warm start took more samples ({warm_samples}) than cold ({cold_samples})"
    );
    assert!(
        warm.best_score <= cold.best_score * (1.0 + 1e-9),
        "warm start degraded final quality: {} vs {}",
        warm.best_score,
        cold.best_score
    );
    println!(
        "warm-start speedup: cold {cold_samples} samples vs warm {warm_samples} \
         to reach EDP {target:.4e} — {:.1}x fewer evaluations",
        cold_samples as f64 / warm_samples as f64
    );
}
