//! Fuzz-lite property tests for `mse::json::parse`: every byte sequence a
//! client, worker, or warm store can throw at the daemon must either parse
//! or return `Err` — never panic, never overflow the stack. This backstops
//! every message path (service requests, fleet shard dispatch/results) and
//! the store/checkpoint loaders built on top of the parser.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `parse` is a total function over arbitrary bytes: seeded random garbage
/// never panics.
#[test]
fn random_bytes_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x6a5f_0001);
    for round in 0..2_000 {
        let len = rng.gen_range(0usize..200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = mse::json::parse(&text); // Ok or Err, both fine; a panic fails the test.
        let _ = round;
    }
}

/// Random garbage rarely exercises the deeper grammar, so also mutate and
/// truncate *valid* documents: structurally plausible damage is what torn
/// writes and bit rot actually produce.
#[test]
fn mutated_valid_documents_never_panic() {
    let docs = [
        r#"{"op": "search", "problem": "GEMM;g;B=1,M=64,K=64,N=64", "arch": "accel-a", "samples": 500, "seed": "18446744073709551615", "deadline_ms": null}"#,
        r#"{"id": 7, "ok": true, "score": 1.25e9, "mapping": "o:0,1,2,3;t:1,2,1,4;s:1,1,1,1", "nested": {"a": [1, -2.5, "x", false, null]}}"#,
        r#"[[{"k": "v \"quoted\" \\ é"}, [], {}], 0.0, -0]"#,
    ];
    let mut rng = SmallRng::seed_from_u64(0x6a5f_0002);
    for doc in docs {
        assert!(mse::json::parse(doc).is_ok(), "fixture must be valid: {doc}");
        // Every truncation point.
        for cut in 0..doc.len() {
            if doc.is_char_boundary(cut) {
                let _ = mse::json::parse(&doc[..cut]);
            }
        }
        // Random single- and multi-byte mutations.
        for _ in 0..500 {
            let mut bytes = doc.as_bytes().to_vec();
            for _ in 0..rng.gen_range(1usize..4) {
                let i = rng.gen_range(0usize..bytes.len());
                bytes[i] = rng.gen_range(0u8..=255);
            }
            let text = String::from_utf8_lossy(&bytes);
            let _ = mse::json::parse(&text);
        }
    }
}

/// Deep nesting is attacker-controlled recursion: the parser must refuse it
/// with an error long before the stack gives out.
#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
        let deep = format!("{}null{}", open.repeat(10_000), close.repeat(10_000));
        let err = mse::json::parse(&deep).expect_err("10k-deep nesting must be rejected");
        assert!(err.contains("nesting"), "diagnostic names the cause: {err}");
    }
    // Unclosed nesting (truncation of the above) is also an error.
    let unclosed = "[".repeat(10_000);
    assert!(mse::json::parse(&unclosed).is_err());
    // Reasonable nesting still parses.
    let shallow = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    assert!(mse::json::parse(&shallow).is_ok(), "64 levels is within the cap");
}
