//! Deterministic chaos campaigns as regression tests: seeded fault plans
//! against the real store / serve / fleet stacks, checked by the invariant
//! oracles (exactly-once accounting, bit-identical results, always-loads
//! durability, no panic escapes, bounded recovery).
//!
//! Each [`mse::Harness`] owns the process-wide chaos plane for its
//! lifetime, so these tests serialize among themselves no matter how the
//! test runner schedules them.

use mse::{Bug, Campaign, FaultPlan, Harness, Scenario};

/// The three scenario campaigns below together run 200 seeded plans — the
/// coverage bar ISSUE 10 sets — split so the cheap store plans dominate
/// wall-clock the same way `mixed_scenario` weights them.
const STORE_PLANS: usize = 180;
const SERVE_PLANS: usize = 12;
const FLEET_PLANS: usize = 8;

fn run(seed: u64, count: usize, scenario: Scenario, bug: Bug) -> mse::CampaignReport {
    let campaign = Campaign { seed, count, scenario: Some(scenario), bug };
    Harness::new(bug).run_campaign(&campaign, &mut |_| {})
}

fn assert_all_passed(report: &mse::CampaignReport) {
    assert_eq!(
        report.passed,
        report.count,
        "oracle violations: {:?}",
        report
            .failures
            .iter()
            .map(|f| format!("plan {} ({}): {}", f.index, f.plan.to_json(), f.failures.join("; ")))
            .collect::<Vec<_>>()
    );
}

#[test]
fn store_campaign_passes_and_is_bit_reproducible() {
    let first = run(11, STORE_PLANS, Scenario::Store, Bug::None);
    assert_all_passed(&first);
    // Same seed → same fault events, same verdicts, same digest, bit for
    // bit — the property that makes a chaos failure a reproducer.
    let second = run(11, STORE_PLANS, Scenario::Store, Bug::None);
    assert_eq!(first.digest, second.digest);
}

#[test]
fn serve_campaign_passes_all_oracles() {
    assert_all_passed(&run(12, SERVE_PLANS, Scenario::Serve, Bug::None));
}

#[test]
fn fleet_campaign_passes_all_oracles() {
    assert_all_passed(&run(13, FLEET_PLANS, Scenario::Fleet, Bug::None));
}

#[test]
fn planted_accounting_bug_is_caught_and_shrinks_small() {
    // `ClaimFailedDeposit` acknowledges a failed deposit as durable — the
    // classic ack-before-fsync accounting bug. The durability oracle must
    // catch it under fault injection…
    let campaign = Campaign {
        seed: 1,
        count: 40,
        scenario: Some(Scenario::Store),
        bug: Bug::ClaimFailedDeposit,
    };
    let mut harness = Harness::new(Bug::ClaimFailedDeposit);
    let report = harness.run_campaign(&campaign, &mut |_| {});
    assert!(!report.failures.is_empty(), "the planted bug went undetected");

    // …and ddmin must shrink the failing plan to a tiny reproducer.
    let minimal = harness.shrink(&report.failures[0].plan);
    assert!(
        !minimal.events.is_empty() && minimal.events.len() <= 5,
        "shrunk reproducer has {} events: {}",
        minimal.events.len(),
        minimal.to_json()
    );
    assert!(!harness.run_plan(&minimal).is_empty(), "shrunk plan no longer fails");

    // The reproducer survives a JSON round trip unchanged.
    let json = minimal.to_json();
    let back = FaultPlan::from_json(&json).expect("reproducer JSON parses");
    assert_eq!(back.to_json(), json);
}

#[test]
fn checked_in_reproducer_pins_the_durability_oracle() {
    // A shrunk reproducer from a real campaign run, checked in as the
    // regression artifact `mapex chaos --replay` consumes.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/chaos/store-ack-before-fsync.json"
    );
    let text = std::fs::read_to_string(path).expect("reproducer file exists");
    let plan = FaultPlan::from_json(&text).expect("reproducer parses");
    assert_eq!(plan.scenario, Scenario::Store);
    assert!(plan.events.len() <= 5);
    // With the planted bug the oracles flag it; against the fixed store
    // the very same fault plan passes.
    assert!(!Harness::new(Bug::ClaimFailedDeposit).run_plan(&plan).is_empty());
    assert!(Harness::new(Bug::None).run_plan(&plan).is_empty());
}
