//! Integration tests for guarded evaluation inside the resilient runtime:
//! a corrupted cost model is caught by `GuardedModel`, the offending
//! mappings are quarantined (never the incumbent), and the attempt log
//! names the violated invariant.

use arch::Arch;
use costmodel::{
    CostModel, DenseModel, FaultConfig, FaultyModel, GuardAudit, GuardConfig, GuardPolicy,
    GuardedModel,
};
use mappers::{Budget, EdpEvaluator, RandomPruned, RunError, RunStatus};
use mse::{Mse, RunPolicy};
use problem::Problem;

fn dense() -> DenseModel {
    DenseModel::new(Problem::conv2d("t", 2, 16, 16, 14, 14, 3, 3), Arch::accel_b())
}

/// The ISSUE acceptance scenario: a deliberately corrupted model (NaN
/// faults on every evaluation) is caught by `GuardedModel` with a named
/// `InvariantViolation` instead of propagating a bad score into a
/// `RunOutcome` incumbent.
#[test]
fn fully_corrupted_model_yields_named_invariant_violation() {
    let faulty = FaultyModel::new(dense(), FaultConfig::nans(1.0, 21));
    let guarded = GuardedModel::dense(faulty, GuardPolicy::Reject);
    let mse = Mse::new(&guarded);
    let evaluator = EdpEvaluator::new(&guarded);

    let outcome = mse.run_guarded_audited(
        &RandomPruned::new(),
        &evaluator,
        Budget::samples(50),
        3,
        RunPolicy::with_retries(1),
        &guarded,
    );

    assert_eq!(outcome.status, RunStatus::Failed);
    assert!(outcome.result.is_none(), "a poisoned score must never become an incumbent");
    assert_eq!(outcome.attempts.len(), 2);
    for a in &outcome.attempts {
        assert!(a.quarantined > 0, "guard saw no rejections");
        match &a.error {
            Some(RunError::InvariantViolation { invariant, quarantined, .. }) => {
                assert_eq!(invariant, "finite-cost");
                assert_eq!(*quarantined, a.quarantined);
            }
            other => panic!("expected InvariantViolation, got {other:?}"),
        }
    }
}

/// Partial corruption: the guard quarantines the poisoned evaluations but
/// the run still succeeds, and the incumbent it returns re-verifies
/// against a clean model — the bad scores never leaked into the result.
#[test]
fn partially_corrupted_model_recovers_with_clean_incumbent() {
    let faulty = FaultyModel::new(dense(), FaultConfig::nans(0.3, 8));
    let guarded = GuardedModel::dense(faulty, GuardPolicy::Reject);
    let mse = Mse::new(&guarded);
    let evaluator = EdpEvaluator::new(&guarded);

    let outcome = mse.run_guarded_audited(
        &RandomPruned::new(),
        &evaluator,
        Budget::samples(200),
        5,
        RunPolicy::default(),
        &guarded,
    );

    assert_eq!(outcome.status, RunStatus::Succeeded);
    assert!(outcome.attempts[0].quarantined > 0, "fault injector never fired");
    let result = outcome.result.expect("usable result");
    let (best, cost) = result.best.expect("incumbent mapping");
    let clean = dense();
    let truth = clean.evaluate(&best).expect("incumbent is legal");
    assert_eq!(truth, cost, "incumbent cost must match a clean evaluation");
    assert!(result.best_score.is_finite());
}

/// A healthy model under Reject guarding produces the same search result
/// as the same model unguarded: guards never reject a legal,
/// correctly-costed mapping, so they are invisible on the happy path.
#[test]
fn guard_is_transparent_for_healthy_model() {
    let clean = dense();
    let guarded = GuardedModel::dense(dense(), GuardPolicy::Reject);

    let plain = Mse::new(&clean).run_guarded(
        &RandomPruned::new(),
        Budget::samples(150),
        11,
        RunPolicy::default(),
    );
    let mse = Mse::new(&guarded);
    let evaluator = EdpEvaluator::new(&guarded);
    let audited = mse.run_guarded_audited(
        &RandomPruned::new(),
        &evaluator,
        Budget::samples(150),
        11,
        RunPolicy::default(),
        &guarded,
    );

    assert_eq!(audited.status, RunStatus::Succeeded);
    assert_eq!(audited.best_score(), plain.best_score());
    assert_eq!(audited.attempts[0].quarantined, 0);
    assert_eq!(guarded.report().violations, 0);
}

/// Warn policy: violations are logged for the audit trail but results pass
/// through — the run keeps the model's (poisoned) numbers, which the
/// recorder's own NaN quarantine then handles.
#[test]
fn warn_policy_logs_without_rejecting() {
    let faulty = FaultyModel::new(dense(), FaultConfig::nans(1.0, 2));
    let guarded = GuardedModel::new(faulty, GuardConfig::new(GuardPolicy::Warn));
    let mse = Mse::new(&guarded);
    let evaluator = EdpEvaluator::new(&guarded);

    let outcome = mse.run_guarded_audited(
        &RandomPruned::new(),
        &evaluator,
        Budget::samples(30),
        9,
        RunPolicy::with_retries(0),
        &guarded,
    );

    // Warn never converts evaluations into errors, so the guard records
    // violations but quarantines nothing; the NaN scores are instead
    // dropped by the recorder and the attempt ends with NoLegalMapping.
    assert_eq!(outcome.status, RunStatus::Failed);
    assert_eq!(outcome.attempts[0].quarantined, 0);
    assert!(matches!(outcome.attempts[0].error, Some(RunError::NoLegalMapping)));
    assert!(guarded.report().violations > 0, "warn policy must still log violations");
}
