//! Exhaustive-offset fault injection against the durable formats: the
//! replay buffer, the warm store (deposits and compaction), and the sweep
//! checkpoint. At every byte offset a write can tear — and at every
//! syscall a sync, open, or rename can fail — the loaders must come back
//! with a valid prefix, never a panic, and never lose data that was
//! acknowledged durable.

use mse::chaos::{self, Action, FaultEvent, FaultPlan, Scenario, Site};
use mse::{InitStrategy, ReplayBuffer, SweepCheckpoint, WarmStore};
use mappers::Budget;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mse-faultdur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn plan(events: Vec<FaultEvent>) -> FaultPlan {
    FaultPlan { seed: 0, scenario: Scenario::Store, events }
}

fn one(site: Site, nth: u32, action: Action) -> FaultPlan {
    plan(vec![FaultEvent { site, nth, action }])
}

fn gemm(name: &str) -> problem::Problem {
    problem::codec::from_spec(&format!("GEMM;{name};B=2,M=8,K=8,N=8")).expect("spec parses")
}

fn donor() -> (arch::Arch, mapping::Mapping) {
    let arch = arch::Arch::accel_b();
    let m = mapping::Mapping::trivial(&gemm("donor"), &arch);
    (arch, m)
}

#[test]
fn replay_buffer_torn_at_every_offset_loads_a_valid_prefix() {
    let session = chaos::lock();
    let dir = scratch("replay");
    let path = dir.join("replay.buf");
    let (_, mapping) = donor();
    let buffer = ReplayBuffer::new();
    for i in 0..3 {
        buffer.insert(gemm(&format!("r{i}")), mapping.clone());
    }
    let mut image = Vec::new();
    buffer.save(&mut image).expect("in-memory save");
    let full_lines: Vec<&[u8]> =
        image.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();

    // Tear the single buffer write at every byte offset from the tail.
    for lost in 1..=image.len() {
        let armed = session.arm(&one(Site::FsWrite, 0, Action::Short(lost as u32)));
        let saved = buffer.save_to_path(&path);
        drop(armed);
        assert!(saved.is_err(), "a torn write must be reported");

        let fresh = ReplayBuffer::new();
        let n = fresh.load_from_path(&path).expect("torn file still loads");
        assert!(n <= 3, "lost {lost}: loaded {n} entries from a torn file");
        // Valid prefix: every loaded entry except possibly the last must
        // re-serialize to a line of the original image. (Only the final
        // kept line can be torn, and a torn spec may still parse — e.g.
        // `N=16` cut to `N=1` — which this CRC-less v1 format cannot
        // detect; what it does guarantee is that damage never reaches
        // entries before the tear.)
        let mut reloaded = Vec::new();
        fresh.save(&mut reloaded).expect("in-memory save");
        let lines: Vec<&[u8]> =
            reloaded.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        for line in lines.iter().take(lines.len().saturating_sub(1)) {
            assert!(
                full_lines.contains(line),
                "lost {lost}: a pre-tear entry was mutated"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_deposit_torn_at_every_offset_confines_damage_to_one_record() {
    let session = chaos::lock();
    let (arch, mapping) = donor();
    let fp = WarmStore::arch_fingerprint(&arch, None);

    // Measure one record line's on-disk footprint, fault-free.
    let dir = scratch("deposit-measure");
    let probe_path = dir.join("probe.store");
    let probe = WarmStore::open(&probe_path).expect("open probe store");
    probe.deposit(fp, &gemm("p1"), &mapping, "gamma", 10.0, 1).expect("probe deposit");
    let line_len = std::fs::metadata(&probe_path).expect("probe metadata").len() as usize;
    drop(probe);
    let _ = std::fs::remove_dir_all(&dir);

    for lost in 1..=line_len {
        let dir = scratch(&format!("deposit-{lost}"));
        let path = dir.join("chaos.store");
        let store = WarmStore::open(&path).expect("open store");
        store.deposit(fp, &gemm("p0"), &mapping, "gamma", 10.0, 0).expect("deposit p0");

        let armed = session.arm(&one(Site::FsWrite, 0, Action::Short(lost as u32)));
        let torn = store.deposit(fp, &gemm("p1"), &mapping, "gamma", 11.0, 1);
        drop(armed);
        assert!(torn.is_err(), "lost {lost}: a torn deposit must be reported");

        // The next deposit must go through and stay framed (the torn tail
        // is confined to its own line, not concatenated onto ours).
        store.deposit(fp, &gemm("p2"), &mapping, "gamma", 12.0, 2).expect("deposit p2");
        drop(store);

        let reopened = WarmStore::open(&path).expect("torn store still opens");
        let names: Vec<String> = reopened
            .records()
            .iter()
            .map(|r| r.problem_spec.clone())
            .collect();
        for wanted in ["GEMM;p0;", "GEMM;p2;"] {
            assert!(
                names.iter().any(|n| n.starts_with(wanted)),
                "lost {lost}: acknowledged record {wanted} missing after reopen ({names:?})"
            );
        }
        assert!(reopened.stats().quarantined <= 1, "lost {lost}: torn tail not confined");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn store_compaction_faults_never_lose_acknowledged_records() {
    let session = chaos::lock();
    let (arch, mapping) = donor();
    let fp = WarmStore::arch_fingerprint(&arch, None);
    let dir = scratch("compact");
    let path = dir.join("chaos.store");
    let store = WarmStore::open(&path).expect("open store");
    for i in 0..6u64 {
        store.deposit(fp, &gemm(&format!("c{i}")), &mapping, "gamma", 10.0 + i as f64, i)
            .expect("seed deposit");
    }
    let check_all_present = |tag: &str| {
        let reopened = WarmStore::open(&path).expect("store always opens");
        let names: Vec<String> =
            reopened.records().iter().map(|r| r.problem_spec.clone()).collect();
        for i in 0..6 {
            assert!(
                names.iter().any(|n| n.starts_with(&format!("GEMM;c{i};"))),
                "{tag}: record c{i} lost ({names:?})"
            );
        }
    };

    // Hard-fail every syscall compaction makes, one at a time.
    for site in [Site::FsOpen, Site::FsWrite, Site::FsSync, Site::FsRename] {
        for nth in 0..4u32 {
            let armed = session.arm(&one(site, nth, Action::Fail));
            let _ = store.compact();
            drop(armed);
            check_all_present(&format!("{}@{nth}", site.name()));
            // Deposits after a failed compaction must still be durable
            // (the store reopens its append handle if the old inode was
            // renamed away) — then remove the probe to keep the set fixed.
            store.deposit(fp, &gemm("probe"), &mapping, "gamma", 99.0, 99)
                .expect("deposit after failed compaction");
            store.compact().expect("fault-free compaction heals");
            check_all_present("post-heal");
        }
    }

    // Tear the compaction's image write at a spread of byte offsets.
    let bytes = std::fs::metadata(&path).expect("metadata").len() as usize;
    for lost in (1..=bytes).step_by(13) {
        let armed = session.arm(&one(Site::FsWrite, 0, Action::Short(lost as u32)));
        let torn = store.compact();
        drop(armed);
        assert!(torn.is_err(), "lost {lost}: a torn compaction must be reported");
        check_all_present(&format!("torn-compact-{lost}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_save_faults_always_leave_a_loadable_version() {
    let session = chaos::lock();
    let (_, mapping) = donor();
    let layer = |n: usize| mse::LayerCheckpoint {
        name: format!("l{n}"),
        init_score: 2.0,
        best_score: 1.0 + n as f64,
        converge_sample: 10,
        evaluated: 50,
        elapsed_secs: 0.0,
        mapping: Some(mapping::codec::to_spec(&mapping)),
        latency_cycles: 100.0,
        energy_uj: 0.5,
    };
    let mut v1 = SweepCheckpoint::new(7, InitStrategy::Random, Budget::samples(50));
    v1.layers.push(layer(0));
    let mut v2 = v1.clone();
    v2.layers.push(layer(1));
    let (v1_json, v2_json) = (v1.canonical().to_json(), v2.canonical().to_json());

    for site in [Site::FsOpen, Site::FsWrite, Site::FsSync, Site::FsRename] {
        for nth in 0..3u32 {
            let dir = scratch(&format!("ckpt-{}-{nth}", site.name()));
            let path = dir.join("sweep.ckpt");
            v1.save(&path).expect("fault-free save of v1");
            let armed = session.arm(&one(site, nth, Action::Fail));
            let _ = v2.save(&path);
            drop(armed);
            let loaded = SweepCheckpoint::load(&path)
                .unwrap_or_else(|e| panic!("{}@{nth}: checkpoint unloadable: {e}", site.name()));
            let got = loaded.canonical().to_json();
            assert!(
                got == v1_json || got == v2_json,
                "{}@{nth}: loaded checkpoint is neither saved version",
                site.name()
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // Tear the checkpoint image itself at a spread of offsets: the `.bak`
    // must rescue the previous version every time.
    let dir = scratch("ckpt-torn");
    let path = dir.join("sweep.ckpt");
    let bytes = v2_json.len();
    for lost in (1..=bytes).step_by(17) {
        v1.save(&path).expect("fault-free save of v1");
        let armed = session.arm(&one(Site::FsWrite, 0, Action::Short(lost as u32)));
        let _ = v2.save(&path);
        drop(armed);
        let loaded = SweepCheckpoint::load(&path)
            .unwrap_or_else(|e| panic!("torn at {lost}: checkpoint unloadable: {e}"));
        let got = loaded.canonical().to_json();
        assert!(got == v1_json || got == v2_json, "torn at {lost}: loaded neither version");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
