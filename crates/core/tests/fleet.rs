//! Chaos tests for the coordinator/worker fleet, over real TCP.
//!
//! The acceptance bar: a sweep sharded across 1, 2, or 4 workers writes a
//! checkpoint byte-identical to the single-process run; killing any single
//! worker mid-sweep (lost connection, expired lease, or straggling shard)
//! re-dispatches its shards and still yields the bit-identical result with
//! every layer accounted exactly once; and a coordinator killed mid-sweep
//! resumes from its fsync'd checkpoint on a fresh port bit-identically.

use costmodel::{CostModel, DenseModel, GuardConfig, GuardPolicy, GuardedModel};
use mappers::{Budget, Mapper, RandomMapper};
use mse::json;
use mse::{
    run_network_checkpointed_parallel, serve, FleetConfig, InitStrategy, ReplayBuffer,
    ServeConfig, ServeRole, ServerHandle, SweepCheckpoint,
};
use problem::Problem;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Fast timings so lease expiry / stealing / reconnect all happen within a
/// test's patience, not production's.
fn fast_fleet() -> FleetConfig {
    FleetConfig {
        heartbeat_ms: 100,
        lease_ms: 500,
        steal_after_ms: 10_000, // stealing off unless a test turns it on
        shard_slots: 2,
        reconnect_max_ms: 300,
        shard_retries: 2,
        shard_delay_ms: 0,
    }
}

fn coordinator_config(checkpoint_dir: Option<&Path>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        fault_injection: true,
        eval: mse::EvalConfig { threads: 1, cache_capacity: 1 << 12 },
        role: ServeRole::Coordinator,
        fleet: fast_fleet(),
        checkpoint_dir: checkpoint_dir.map(Path::to_path_buf),
        ..ServeConfig::default()
    }
}

/// `shard_delay_ms` is the straggler-injection hook: the worker sleeps
/// that long before executing each shard (requires `fault_injection`).
fn worker_config(coordinator: SocketAddr, shard_delay_ms: u64) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        fault_injection: true,
        eval: mse::EvalConfig { threads: 1, cache_capacity: 1 << 12 },
        role: ServeRole::Worker { coordinator: coordinator.to_string() },
        fleet: FleetConfig { shard_delay_ms, ..fast_fleet() },
        ..ServeConfig::default()
    }
}

fn request(addr: SocketAddr, line: &str) -> json::Value {
    try_request(addr, line).unwrap_or_else(|e| panic!("{e}: {line}"))
}

/// Like `request`, but a cut connection (coordinator killed mid-request)
/// is an `Err`, not a panic.
fn try_request(addr: SocketAddr, line: &str) -> Result<json::Value, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).map_err(|e| format!("receive: {e}"))?;
    if resp.trim().is_empty() {
        return Err("connection closed without a response".to_string());
    }
    json::parse(&resp).map_err(|e| format!("bad response JSON ({e}): {resp}"))
}

fn assert_ok(v: &json::Value) {
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true), "{}", v.to_text());
}

fn u64_field(v: &json::Value, key: &str) -> u64 {
    v.get(key)
        .and_then(json::Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 `{key}`: {}", v.to_text()))
}

/// Boots a coordinator plus `n` workers and waits until all have
/// registered (heartbeat-visible), so a sweep submitted immediately after
/// really is sharded across all of them.
fn boot_fleet(
    checkpoint_dir: Option<&Path>,
    worker_delays_ms: &[u64],
) -> (ServerHandle, SocketAddr, Vec<ServerHandle>) {
    let coordinator = serve(coordinator_config(checkpoint_dir)).expect("bind coordinator");
    let addr = coordinator.local_addr();
    let workers: Vec<ServerHandle> = worker_delays_ms
        .iter()
        .map(|&delay| serve(worker_config(addr, delay)).expect("bind worker"))
        .collect();
    wait_for_workers(addr, workers.len() as u64);
    (coordinator, addr, workers)
}

fn wait_for_workers(addr: SocketAddr, n: u64) {
    for _ in 0..400 {
        let v = request(addr, "{\"id\": 0, \"op\": \"health\"}");
        assert_ok(&v);
        if u64_field(&v, "workers_connected") == n {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("{n} worker(s) never registered with the coordinator");
}

/// A scratch directory unique per test (no tempdir dependency).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mse-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The test network: small distinct GEMMs, enough of them that shards are
/// outstanding on every worker when chaos strikes.
fn layer_specs(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("GEMM;l{i};B=2,M=16,K={},N=16", 16 + 8 * (i % 3))).collect()
}

const SWEEP_SAMPLES: usize = 120;
const SWEEP_SEED: u64 = 9;

fn sweep_line(id: usize, layers: &[String], checkpoint: Option<&str>, resume: bool) -> String {
    let quoted: Vec<String> = layers.iter().map(|l| json::escape(l)).collect();
    let mut line = format!(
        "{{\"id\": {id}, \"op\": \"sweep\", \"layers\": [{}], \"mapper\": \"random\", \
         \"samples\": {SWEEP_SAMPLES}, \"seed\": {SWEEP_SEED}",
        quoted.join(", ")
    );
    if let Some(name) = checkpoint {
        line.push_str(&format!(", \"checkpoint\": {}", json::escape(name)));
    }
    if resume {
        line.push_str(", \"resume\": true");
    }
    line.push('}');
    line
}

/// The single-process ground truth, built exactly the way the daemon
/// builds its shard executors: dense model wrapped in a reject-guard
/// (`ServeConfig::default().guard`), random-init, gamma replaced by the
/// deterministic `random` mapper, one thread.
fn reference_checkpoint(layers: &[String], dir: &Path) -> SweepCheckpoint {
    let problems: Vec<Problem> =
        layers.iter().map(|l| problem::codec::from_spec(l).expect("layer spec")).collect();
    let arch = arch::Arch::accel_b();
    let arch_for_model = arch.clone();
    let make_model = move |p: &Problem| -> Box<dyn CostModel> {
        let dense = DenseModel::new(p.clone(), arch_for_model.clone());
        Box::new(GuardedModel::new(Box::new(dense), GuardConfig::new(GuardPolicy::Reject)))
    };
    let make_mapper = || -> Box<dyn Mapper> { Box::new(RandomMapper::new()) };
    let path = dir.join("reference.ckpt");
    run_network_checkpointed_parallel(
        &problems,
        &arch,
        &ReplayBuffer::new(),
        InitStrategy::Random,
        Budget::samples(SWEEP_SAMPLES),
        SWEEP_SEED,
        1,
        make_model,
        make_mapper,
        &path,
        false,
    )
    .expect("reference sweep");
    SweepCheckpoint::load(&path).expect("reference checkpoint")
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// `health` reports the topology from both sides of the fleet and, like
/// `ping`, keeps answering while draining.
#[test]
fn health_reports_fleet_topology() {
    let (coordinator, addr, workers) = boot_fleet(None, &[0]);
    let v = request(addr, "{\"id\": 1, \"op\": \"health\"}");
    assert_ok(&v);
    assert_eq!(v.get("role").and_then(json::Value::as_str), Some("coordinator"));
    assert_eq!(v.get("draining").and_then(json::Value::as_bool), Some(false));
    assert_eq!(u64_field(&v, "workers_connected"), 1);
    assert!(v.get("queue_depth").is_some() && v.get("queue_capacity").is_some());

    let w = request(workers[0].local_addr(), "{\"id\": 2, \"op\": \"health\"}");
    assert_ok(&w);
    assert_eq!(w.get("role").and_then(json::Value::as_str), Some("worker"));
    assert_eq!(
        w.get("coordinator_connected").and_then(json::Value::as_bool),
        Some(true),
        "{}",
        w.to_text()
    );

    // stats gained the same topology block.
    let s = request(addr, "{\"id\": 3, \"op\": \"stats\"}");
    assert_ok(&s);
    let fleet = s.get("fleet").expect("coordinator stats carry a fleet block");
    assert_eq!(fleet.get("workers_connected").and_then(json::Value::as_u64), Some(1));

    // health bypasses admission: a probe that lands mid-drain (the race
    // with connection teardown is the client's, like `ping`) is answered
    // with the draining flag up, never queued behind the backlog.
    coordinator.drain();
    if let Ok(d) = try_request(addr, "{\"id\": 4, \"op\": \"health\"}") {
        assert_ok(&d);
        assert_eq!(d.get("draining").and_then(json::Value::as_bool), Some(true));
    }

    for w in workers {
        w.kill();
    }
    coordinator.join();
}

/// The determinism tentpole: the same sweep sharded across 1, 2, and 4
/// workers writes byte-identical checkpoint files, and their canonical
/// form equals the single-process reference exactly.
#[test]
fn sweep_is_bit_identical_across_1_2_and_4_workers() {
    let layers = layer_specs(5);
    let reference_dir = scratch("ref");
    let reference = reference_checkpoint(&layers, &reference_dir).canonical();

    let mut checkpoint_bytes: Vec<Vec<u8>> = Vec::new();
    for &count in &[1usize, 2, 4] {
        let dir = scratch(&format!("fan{count}"));
        let (coordinator, addr, workers) = boot_fleet(Some(&dir), &vec![0; count]);
        let v = request(addr, &sweep_line(count, &layers, Some("sweep.ckpt"), false));
        assert_ok(&v);
        assert_eq!(u64_field(&v, "layers_total"), layers.len() as u64);
        assert_eq!(u64_field(&v, "layers_from_checkpoint"), 0);
        let fleet = v.get("fleet").expect("fleet block");
        assert!(
            fleet.get("dispatched").and_then(json::Value::as_u64).is_some_and(|d| d > 0),
            "shards went over the wire: {}",
            v.to_text()
        );

        let bytes = std::fs::read(dir.join("sweep.ckpt")).expect("fleet checkpoint");
        let parsed = SweepCheckpoint::load(&dir.join("sweep.ckpt")).expect("parses");
        assert_eq!(
            parsed.canonical(),
            reference,
            "{count}-worker sweep diverged from the single-process run"
        );
        checkpoint_bytes.push(bytes);

        for w in workers {
            w.kill();
        }
        coordinator.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(checkpoint_bytes[0], checkpoint_bytes[1], "1 vs 2 workers: bytes differ");
    assert_eq!(checkpoint_bytes[0], checkpoint_bytes[2], "1 vs 4 workers: bytes differ");
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// Kill a worker (severed TCP link) while its shards are in flight: the
/// coordinator re-dispatches them and the sweep result is bit-identical,
/// every layer accounted exactly once.
#[test]
fn worker_death_mid_sweep_redispatches_bit_identically() {
    let layers = layer_specs(6);
    let reference_dir = scratch("death-ref");
    let reference = reference_checkpoint(&layers, &reference_dir).canonical();

    let dir = scratch("death");
    // Both workers dawdle 150ms per shard so the kill lands mid-shard.
    let (coordinator, addr, workers) = boot_fleet(Some(&dir), &[150, 150]);
    let sweep = {
        let layers = layers.clone();
        std::thread::spawn(move || request(addr, &sweep_line(1, &layers, Some("sweep.ckpt"), false)))
    };
    std::thread::sleep(Duration::from_millis(100));
    workers[0].chaos_sever_fleet_link();

    let v = sweep.join().expect("sweep client");
    assert_ok(&v);
    assert_eq!(u64_field(&v, "layers_total"), layers.len() as u64);
    let fleet = v.get("fleet").expect("fleet block");
    assert!(
        fleet.get("redispatched").and_then(json::Value::as_u64).is_some_and(|n| n > 0),
        "severed worker's shards were re-dispatched: {}",
        v.to_text()
    );
    let parsed = SweepCheckpoint::load(&dir.join("sweep.ckpt")).expect("checkpoint");
    assert_eq!(parsed.canonical(), reference, "worker death changed the result");

    for w in workers {
        w.kill();
    }
    coordinator.kill();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// A straggling shard (injected 1s delay) is re-issued to the idle fast
/// worker; the first answer wins and the straggler's late result is
/// discarded by shard id — and the result is still bit-identical.
#[test]
fn straggler_shard_is_stolen_by_idle_worker() {
    let layers = layer_specs(4);
    let reference_dir = scratch("steal-ref");
    let reference = reference_checkpoint(&layers, &reference_dir).canonical();

    let dir = scratch("steal");
    let coordinator_cfg = ServeConfig {
        fleet: FleetConfig { steal_after_ms: 300, ..fast_fleet() },
        ..coordinator_config(Some(&dir))
    };
    let coordinator = serve(coordinator_cfg).expect("bind coordinator");
    let addr = coordinator.local_addr();
    // One straggler (1s per shard), one fast worker.
    let straggler = serve(worker_config(addr, 1_000)).expect("bind straggler");
    let fast = serve(worker_config(addr, 0)).expect("bind fast worker");
    wait_for_workers(addr, 2);

    let v = request(addr, &sweep_line(1, &layers, Some("sweep.ckpt"), false));
    assert_ok(&v);
    let fleet = v.get("fleet").expect("fleet block");
    assert!(
        fleet.get("stolen").and_then(json::Value::as_u64).is_some_and(|n| n > 0),
        "idle worker stole from the straggler: {}",
        v.to_text()
    );
    let parsed = SweepCheckpoint::load(&dir.join("sweep.ckpt")).expect("checkpoint");
    assert_eq!(parsed.canonical(), reference, "stealing changed the result");

    straggler.kill();
    fast.kill();
    coordinator.kill();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// Mute a worker's heartbeats while it keeps executing: its lease expires,
/// its shards are re-dispatched, and its late answers are discarded as
/// duplicates (or counted stale after the job closes) — never double
/// counted into the sweep.
#[test]
fn muted_worker_lease_expires_and_late_results_are_discarded() {
    let layers = layer_specs(4);
    let reference_dir = scratch("mute-ref");
    let reference = reference_checkpoint(&layers, &reference_dir).canonical();

    let dir = scratch("mute");
    // The muted worker takes 700ms per shard — longer than the 500ms
    // lease, so silence is what expires it, and its results arrive late.
    let (coordinator, addr, workers) = boot_fleet(Some(&dir), &[700, 0]);
    let sweep = {
        let layers = layers.clone();
        std::thread::spawn(move || request(addr, &sweep_line(1, &layers, Some("sweep.ckpt"), false)))
    };
    std::thread::sleep(Duration::from_millis(50));
    workers[0].chaos_mute_fleet_link();

    let v = sweep.join().expect("sweep client");
    assert_ok(&v);
    let parsed = SweepCheckpoint::load(&dir.join("sweep.ckpt")).expect("checkpoint");
    assert_eq!(parsed.canonical(), reference, "lease expiry changed the result");

    // Give the muted worker time to finish its orphaned shards and send
    // the late answers, then check they were discarded, not re-counted.
    std::thread::sleep(Duration::from_millis(900));
    let s = request(addr, "{\"id\": 2, \"op\": \"stats\"}");
    let fleet = s.get("fleet").expect("fleet block");
    let lost = fleet.get("workers_lost").and_then(json::Value::as_u64).unwrap_or(0);
    assert!(lost > 0, "muted worker's lease expired: {}", s.to_text());
    let discarded = fleet.get("duplicates_discarded").and_then(json::Value::as_u64).unwrap_or(0)
        + fleet.get("stale_results").and_then(json::Value::as_u64).unwrap_or(0);
    assert!(discarded > 0, "late results discarded, not double-counted: {}", s.to_text());

    for w in workers {
        w.kill();
    }
    coordinator.kill();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// Kill the coordinator mid-sweep, then restart it (fresh port — the old
/// one sits in TIME_WAIT — same checkpoint directory) with fresh workers
/// and `resume: true`: the sweep completes bit-identically to an
/// uninterrupted run, completed layers replayed from the checkpoint.
#[test]
fn coordinator_restart_resumes_bit_identically() {
    let layers = layer_specs(5);
    let reference_dir = scratch("restart-ref");
    let reference = reference_checkpoint(&layers, &reference_dir).canonical();

    let dir = scratch("restart");
    // 250ms per shard: the kill at ~600ms lands with layers both flushed
    // and outstanding.
    let (coordinator, addr, workers) = boot_fleet(Some(&dir), &[250]);
    let sweep = {
        let layers = layers.clone();
        std::thread::spawn(move || {
            try_request(addr, &sweep_line(1, &layers, Some("sweep.ckpt"), false))
        })
    };
    std::thread::sleep(Duration::from_millis(600));
    coordinator.kill();
    // The client either got cut mid-request or (rarely, on a fast
    // machine) a complete answer; both are fine — the checkpoint decides.
    let _ = sweep.join().expect("sweep client");
    for w in workers {
        w.kill();
    }
    let partial = SweepCheckpoint::load(&dir.join("sweep.ckpt")).expect("partial checkpoint");
    assert!(
        !partial.layers.is_empty(),
        "kill at 600ms with 250ms shards: at least one layer flushed"
    );

    // Restart: new port (serve binds port 0), same checkpoint directory.
    let (coordinator, addr, workers) = boot_fleet(Some(&dir), &[0]);
    let v = request(addr, &sweep_line(2, &layers, Some("sweep.ckpt"), true));
    assert_ok(&v);
    assert_eq!(u64_field(&v, "layers_total"), layers.len() as u64);
    assert_eq!(
        u64_field(&v, "layers_from_checkpoint"),
        partial.layers.len() as u64,
        "resume replayed exactly the flushed prefix: {}",
        v.to_text()
    );
    let parsed = SweepCheckpoint::load(&dir.join("sweep.ckpt")).expect("final checkpoint");
    assert_eq!(parsed.canonical(), reference, "coordinator restart changed the result");

    for w in workers {
        w.kill();
    }
    coordinator.kill();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// Island search: `islands: 4` fans the sample budget out across workers
/// and merges incumbents deterministically — the same score, mapping, and
/// evaluation count on every topology, including standalone.
#[test]
fn island_search_fans_out_and_merges_deterministically() {
    let line = "{\"id\": 1, \"op\": \"search\", \"problem\": \"GEMM;g;B=2,M=32,K=32,N=32\", \
                \"mapper\": \"random\", \"samples\": 400, \"seed\": 5, \"islands\": 4}";

    let run_fleet = |worker_count: usize| -> json::Value {
        let (coordinator, addr, workers) = boot_fleet(None, &vec![0; worker_count]);
        let v = request(addr, line);
        for w in workers {
            w.kill();
        }
        coordinator.kill();
        v
    };
    let two_workers = run_fleet(2);
    let three_workers = run_fleet(3);

    let standalone_daemon = serve(ServeConfig {
        role: ServeRole::Standalone,
        ..coordinator_config(None)
    })
    .expect("bind standalone");
    let standalone = request(standalone_daemon.local_addr(), line);
    standalone_daemon.kill();

    for v in [&two_workers, &three_workers, &standalone] {
        assert_ok(v);
        assert_eq!(u64_field(v, "islands"), 4);
        assert!(v.get("mapping").and_then(json::Value::as_str).is_some());
    }
    for (label, v) in [("3 workers", &three_workers), ("standalone", &standalone)] {
        assert_eq!(
            two_workers.get("score").and_then(json::Value::as_f64),
            v.get("score").and_then(json::Value::as_f64),
            "score diverged on {label}"
        );
        assert_eq!(
            two_workers.get("mapping").and_then(json::Value::as_str),
            v.get("mapping").and_then(json::Value::as_str),
            "mapping diverged on {label}"
        );
        assert_eq!(
            u64_field(&two_workers, "evaluated"),
            u64_field(v, "evaluated"),
            "evaluation accounting diverged on {label}"
        );
    }
}
