//! Warm-store corruption robustness: the store file torn at *every* byte
//! offset and bit-flipped at *every* bit position must load without panic,
//! quarantine exactly the damaged records, and keep every intact one. The
//! per-line CRC framing means damage can never propagate: a valid prefix
//! always survives truncation, and valid records on both sides of a flipped
//! bit survive bit rot.

use arch::Arch;
use mapping::Mapping;
use mse::WarmStore;
use std::fs;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mse-store-corruption-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A store file with three deposits under one arch fingerprint.
fn populated(dir: &std::path::Path) -> (PathBuf, u64, usize) {
    let path = dir.join("warm.store");
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(WarmStore::backup_path(&path));
    let arch = Arch::accel_a();
    let fp = WarmStore::arch_fingerprint(&arch, None);
    let store = WarmStore::open(&path).expect("open fresh store");
    for (i, name) in ["conv1", "conv2", "fc"].iter().enumerate() {
        let p = problem::codec::from_spec(&format!(
            "GEMM;{name};B=1,M={},K=64,N=64",
            32 << i
        ))
        .expect("problem spec");
        let m = Mapping::trivial(&p, &arch);
        store.deposit(fp, &p, &m, "gamma", 100.0 + i as f64, 50).expect("deposit");
    }
    (path, fp, 3)
}

/// Truncation at every byte offset: the loader keeps exactly the complete
/// undamaged lines (a valid prefix), quarantines at most the one torn line,
/// and never panics.
#[test]
fn truncation_at_every_offset_recovers_valid_prefix() {
    let dir = scratch("truncate");
    let (path, fp, n) = populated(&dir);
    let clean = fs::read(&path).expect("read clean store");
    let query = problem::codec::from_spec("GEMM;q;B=1,M=32,K=64,N=64").unwrap();
    for cut in 0..clean.len() {
        fs::write(&path, &clean[..cut]).expect("write truncated");
        let store = WarmStore::open(&path).expect("open must tolerate truncation");
        let stats = store.stats();
        // Complete lines before the cut survive. The torn tail is either
        // quarantined or — when the cut removed only the trailing newline —
        // still a complete record, which rightly loads too.
        let full_lines = clean[..cut].iter().filter(|&&b| b == b'\n').count();
        let torn = cut > 0 && clean[cut - 1] != b'\n';
        assert!(
            stats.entries == full_lines || (torn && stats.entries == full_lines + 1),
            "cut at {cut}: {} entries from {full_lines} full lines",
            stats.entries
        );
        assert_eq!(
            stats.quarantined,
            u64::from(torn && stats.entries == full_lines),
            "cut at {cut}"
        );
        assert_eq!(stats.skipped_future, 0, "cut at {cut}");
        // Whatever survived is still queryable without panicking.
        let recalled = store.recall(&query, fp);
        assert_eq!(recalled.is_some(), stats.entries > 0, "cut at {cut}");
    }
    // The untruncated file round-trips all records.
    fs::write(&path, &clean).unwrap();
    assert_eq!(WarmStore::open(&path).unwrap().len(), n);
    let _ = fs::remove_dir_all(&dir);
}

/// Bit rot at every position: each record is CRC-framed, so a flip costs at
/// most the records whose line it touched (two when the flip lands on the
/// newline between them) — every other record survives, and nothing panics.
#[test]
fn single_bit_flips_quarantine_only_the_damaged_record() {
    let dir = scratch("bitflip");
    let (path, fp, n) = populated(&dir);
    let clean = fs::read(&path).expect("read clean store");
    let query = problem::codec::from_spec("GEMM;q;B=1,M=32,K=64,N=64").unwrap();
    for byte_idx in 0..clean.len() {
        for bit in 0..8 {
            let mut rotted = clean.clone();
            rotted[byte_idx] ^= 1 << bit;
            fs::write(&path, &rotted).expect("write rotted");
            let store = WarmStore::open(&path).expect("open must tolerate bit rot");
            let stats = store.stats();
            assert!(
                stats.entries >= n - 2,
                "byte {byte_idx} bit {bit}: one flip lost {} records",
                n - stats.entries
            );
            // Loss is never silent: anything short of a full load leaves a
            // quarantine mark (or a future-version skip when the flip lands
            // in the magic's version digit). A flipped newline merges two
            // records into one damaged line, so counts are >= 1, not == lost.
            assert!(
                stats.entries == n || stats.quarantined + stats.skipped_future >= 1,
                "byte {byte_idx} bit {bit}: silent record loss"
            );
            // The survivors remain queryable.
            if stats.entries > 0 {
                assert!(store.recall(&query, fp).is_some(), "byte {byte_idx} bit {bit}");
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// `verify` agrees with `open` on every truncation, and compaction heals the
/// damage out of the file while keeping the damaged original as `.bak`.
#[test]
fn verify_matches_open_and_compaction_heals() {
    let dir = scratch("heal");
    let (path, _fp, _n) = populated(&dir);
    let clean = fs::read(&path).expect("read clean store");
    // Tear mid-record.
    fs::write(&path, &clean[..clean.len() - 10]).unwrap();
    let report = WarmStore::verify(&path).expect("verify");
    let store = WarmStore::open(&path).expect("open");
    assert_eq!(report.valid, store.len());
    assert_eq!(report.quarantined, 1);

    let compacted = store.compact().expect("compact");
    assert_eq!(compacted.kept, report.valid);
    // Healed: the rewritten file has zero quarantined bytes...
    let healed = WarmStore::verify(&path).expect("verify healed");
    assert_eq!(healed.quarantined, 0);
    assert_eq!(healed.valid, report.valid);
    // ...and the damaged original survives one generation as .bak.
    let bak = WarmStore::verify(&WarmStore::backup_path(&path)).expect("verify .bak");
    assert_eq!(bak.quarantined, 1);
    let _ = fs::remove_dir_all(&dir);
}
